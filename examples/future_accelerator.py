"""Hardware-software co-design: sizing a future accelerator.

AMPeD's headline purpose is co-design: "exposes ... the accelerator as
well as system architecture specifications as tunable knobs".  This
example plays accelerator architect: starting from the H100, it asks
how much of a hypothetical 2x-compute successor's gain actually reaches
end-to-end training time, depending on whether the off-chip bandwidth
scales with it — then uses the sensitivity profile to name the
bottleneck at each design point.

Run:  python examples/future_accelerator.py
"""

import dataclasses

from repro import AMPeD
from repro.hardware import H100, NVLINK4, IB_NDR, NodeSpec, SystemSpec
from repro.parallelism import CASE_STUDY_EFFICIENCY, spec_from_totals
from repro.reporting import render_table
from repro.sensitivity import dominant_bottleneck
from repro.transformer import MEGATRON_310B

BATCH = 4096
N_NODES = 64


def build_system(accelerator, intra_scale: float,
                 inter_scale: float) -> SystemSpec:
    node = NodeSpec(
        accelerator=accelerator,
        n_accelerators=8,
        intra_link=NVLINK4.scaled(intra_scale),
        inter_link=IB_NDR.scaled(inter_scale),
        n_nics=8,
    )
    return SystemSpec(node=node, n_nodes=N_NODES)


def doubled_compute(accelerator):
    """A successor with 2x MAC throughput (wider units), same clocks."""
    return dataclasses.replace(
        accelerator,
        name="2x-compute successor",
        fu_width=accelerator.fu_width * 2,
    )


def main() -> None:
    designs = [
        ("H100 baseline", H100, 1.0, 1.0),
        ("2x compute only", doubled_compute(H100), 1.0, 1.0),
        ("2x compute + 2x fabric", doubled_compute(H100), 2.0, 2.0),
        ("2x compute + 4x fabric", doubled_compute(H100), 4.0, 4.0),
    ]

    rows = []
    baseline_time = None
    for label, accelerator, intra, inter in designs:
        system = build_system(accelerator, intra, inter)
        amped = AMPeD(
            model=MEGATRON_310B,
            system=system,
            parallelism=spec_from_totals(system, tp=8, dp=N_NODES),
            efficiency=CASE_STUDY_EFFICIENCY,
        )
        batch_time = amped.estimate_batch(BATCH).total
        if baseline_time is None:
            baseline_time = batch_time
        rows.append((
            label,
            f"{accelerator.peak_mac_flops_per_s / 1e12:.0f}",
            f"{batch_time:.1f}",
            f"x{baseline_time / batch_time:.2f}",
            dominant_bottleneck(amped, BATCH),
        ))

    print(f"{MEGATRON_310B.name} on {N_NODES * 8} accelerators, "
          f"TP=8 intra / DP={N_NODES} inter, batch {BATCH}\n")
    print(render_table(
        ["design", "peak TFLOP/s", "s/batch", "speedup",
         "dominant knob"],
        rows, title="what a 2x-compute successor actually buys"))
    print(
        "\nDoubling compute alone forfeits part of its gain to "
        "communication; scaling the fabric with it recovers the rest. "
        "The 'dominant knob' column is the sensitivity profile's "
        "one-word co-design answer at each point.")


if __name__ == "__main__":
    main()
