"""Design-space exploration: find the best parallelism mapping.

Reproduces Case Study I's workflow on a configurable slice of the
platform: enumerate every legal (intra-node, inter-node) factorization
of DP/TP/PP, tune the microbatch count for each, drop mappings that
overflow accelerator memory, and rank by predicted training time.
Also shows the paper's conclusions distilled into the one-step
heuristic recommendation.

Run:  python examples/parallelism_explorer.py [n_nodes]
"""

import sys

from repro import AMPeD
from repro.hardware import megatron_a100_cluster
from repro.parallelism import CASE_STUDY_EFFICIENCY
from repro.reporting import render_table
from repro.search import explore, recommend_mapping
from repro.transformer import MEGATRON_145B
from repro.units import format_duration

GLOBAL_BATCH = 4096


def main(n_nodes: int = 32) -> None:
    system = megatron_a100_cluster(n_nodes=n_nodes)
    print(f"exploring {MEGATRON_145B.name} on {system.describe()}")
    print(f"global batch: {GLOBAL_BATCH}\n")

    template = AMPeD.for_mapping(
        MEGATRON_145B, system, tp=8, dp=n_nodes,
        efficiency=CASE_STUDY_EFFICIENCY)
    results = explore(template, GLOBAL_BATCH, enforce_memory=True,
                      max_results=12)

    rows = [(rank + 1, r.label, format_duration(r.batch_time_s),
             f"{r.microbatch_size:g}",
             f"{r.microbatch_efficiency:.0%}",
             format_duration(r.breakdown.comm_time),
             format_duration(r.breakdown.bubble))
            for rank, r in enumerate(results)]
    print(render_table(
        ["#", "mapping", "batch time", "ub", "eff", "comm", "bubble"],
        rows, title="top mappings (memory-feasible, tuned microbatches)"))

    print("\nheuristic recommendation (paper's conclusions 1-5):")
    recommendation = recommend_mapping(MEGATRON_145B, system)
    print(f"  {recommendation.parallelism.describe()}")
    print(recommendation.explain())

    best = results[0]
    agrees = (best.parallelism.tp_intra
              == recommendation.parallelism.tp_intra)
    print(f"\nexhaustive search "
          f"{'agrees' if agrees else 'disagrees'} with the heuristic "
          f"on the intra-node choice.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 32)
