"""Cost, energy and carbon planning for a training campaign.

The paper's introduction motivates performance prediction with budget
and sustainability arguments ("billed per hour", "$4.6 million",
"equivalent CO2 emissions").  This example closes that loop: for the
Case Study I platform it compares the best and a mediocre parallelism
mapping not in days but in dollars and tonnes of CO2, and shows how an
oversubscribed (cheaper) network fabric shifts the trade-off.

Run:  python examples/cost_planner.py
"""

from repro import AMPeD
from repro.cost import (
    EU_AVERAGE_GRID,
    ON_DEMAND_A100,
    estimate_carbon,
    estimate_cost,
)
from repro.energy import PowerModel, estimate_energy
from repro.hardware import megatron_a100_cluster
from repro.network import apply_fabric, two_level_fat_tree
from repro.parallelism import CASE_STUDY_EFFICIENCY, spec_from_totals
from repro.reporting import render_table
from repro.transformer import MEGATRON_145B

BATCH = 8192
TOKENS = 300e9


def evaluate(label, system, spec):
    amped = AMPeD(model=MEGATRON_145B, system=system, parallelism=spec,
                  efficiency=CASE_STUDY_EFFICIENCY, validate=False)
    estimate = amped.estimate(BATCH, total_tokens=TOKENS)
    power = PowerModel.for_accelerator(system.accelerator)
    energy = estimate_energy(estimate.breakdown, power,
                             system.n_accelerators)
    cost = estimate_cost(estimate, system.n_accelerators,
                         ON_DEMAND_A100)
    carbon = estimate_carbon(energy, EU_AVERAGE_GRID)
    return (label, f"{estimate.total_time_days:.1f}",
            f"{cost.gpu_hours / 1e6:.2f}M", f"${cost.usd / 1e6:.2f}M",
            f"{energy.total_kwh / 1e6:.2f} GWh",
            f"{carbon.tonnes_co2:,.0f} t")


def main() -> None:
    system = megatron_a100_cluster()
    good = spec_from_totals(system, tp=8, dp=128)
    bad = spec_from_totals(system, tp=64, dp=16)

    fabric = two_level_fat_tree(
        port_bandwidth_bits_per_s=2e11, nodes_per_leaf=16, n_leaves=8,
        oversubscription=8.0)
    cheap_network = apply_fabric(system, fabric)

    rows = [
        evaluate("TP=8 intra, DP=128 inter (best)", system, good),
        evaluate("TP=64 across nodes (anti-pattern)", system, bad),
        evaluate("best mapping, 8:1 oversubscribed fabric",
                 cheap_network, good),
    ]
    print(f"{MEGATRON_145B.name}, batch {BATCH}, {TOKENS:.0e} tokens, "
          f"1024 A100s @ ${ON_DEMAND_A100.effective_rate:.2f}/GPU-h, "
          f"{EU_AVERAGE_GRID.name} grid\n")
    print(render_table(
        ["scenario", "days", "GPU-hours", "cost", "energy", "CO2"],
        rows))
    print("\nThe anti-pattern mapping costs millions more for the same "
          "model — the paper's case for predicting before launching. "
          "The cheap fabric trades a modest slowdown for lower capex; "
          "AMPeD quantifies whether the opex increase eats the saving.")


if __name__ == "__main__":
    main()
