"""Calibration workflow: from measured points to trusted predictions.

Mirrors the paper's method statement — "AMPeD can use empirically
derived efficiency factors to accurately predict the training time" —
end to end:

1. fit the efficiency curve ``eff(ub) = a*ub/(b+ub)`` from measured
   (microbatch, efficiency) points (the paper's declared future work);
2. anchor the fitted model on one measured throughput with one-knob
   calibration;
3. use the calibrated model to answer a question the measurements never
   covered: where is the leverage (sensitivity profile), and which
   mapping should we run?

Run:  python examples/calibrate_and_sweep.py
"""

from repro import AMPeD
from repro.fitting import (
    calibrate_efficiency_to_tflops,
    fit_efficiency,
    interleaving_overlap_model,
    measure_overlap_ratio,
)
from repro.hardware import megatron_a100_cluster
from repro.parallelism import spec_from_totals
from repro.reporting import render_table
from repro.search import best_mapping
from repro.sensitivity import sensitivity_profile
from repro.transformer import MEGATRON_145B

#: Pretend-measured efficiency points (microbatch, efficiency), the
#: kind a profiling run of the target kernel produces.
MEASURED_POINTS = [(2, 0.11), (8, 0.30), (32, 0.55), (128, 0.74)]

#: Pretend-measured anchor throughput at the reference mapping.
MEASURED_TFLOPS = 135.0


def main() -> None:
    print("step 1: fit eff(ub) from measurements")
    fit = fit_efficiency(MEASURED_POINTS, floor=0.05)
    print(f"  eff(ub) = {fit.a:.3f} * ub / ({fit.b:.1f} + ub), "
          f"R^2 = {fit.r_squared:.4f}, RMSE = {fit.rmse:.4f}\n")

    system = megatron_a100_cluster(n_nodes=32)
    template = AMPeD(
        model=MEGATRON_145B, system=system,
        parallelism=spec_from_totals(system, tp=8, dp=32),
        efficiency=fit.efficiency)

    print("step 2: calibrate on one measured throughput")
    calibrated = calibrate_efficiency_to_tflops(template, 4096,
                                                MEASURED_TFLOPS)
    print(f"  anchor {MEASURED_TFLOPS} TFLOP/s/GPU -> "
          f"a = {calibrated.efficiency.a:.3f} "
          f"(residual {calibrated.anchor_error:.2e})\n")

    print("step 3a: overlap ratio for interleaved pipelining")
    simulated = measure_overlap_ratio(8, 32, n_chunks=2)
    print(f"  simulator: R = {simulated:.2f}; closed form 1/v = "
          f"{interleaving_overlap_model(2):.2f}\n")

    print("step 3b: sensitivity of the calibrated configuration")
    profile = sensitivity_profile(calibrated.amped, 4096)
    print(render_table(
        ["knob", "elasticity"],
        [(e.knob, f"{e.elasticity:+.4f}") for e in profile]))

    print("\nstep 3c: best mapping under the calibrated model")
    best = best_mapping(calibrated.amped, 4096)
    print(f"  {best.label}: {best.batch_time_s:.1f} s/batch "
          f"(ub {best.microbatch_size:g}, "
          f"eff {best.microbatch_efficiency:.0%})")


if __name__ == "__main__":
    main()
