"""Quickstart: estimate the training time of one configuration.

Builds the paper's Case Study I scenario — Megatron 145B on 1024 A100s
(128 nodes x 8, NVLink + HDR InfiniBand) — maps TP=8 inside each node
and DP=128 across nodes, and prints the per-batch breakdown plus the
projected wall-clock for a 300B-token run.

Run:  python examples/quickstart.py
"""

from repro import AMPeD
from repro.hardware import megatron_a100_cluster
from repro.parallelism import CASE_STUDY_EFFICIENCY, spec_from_totals
from repro.transformer import MEGATRON_145B

GLOBAL_BATCH = 8192
CORPUS_TOKENS = 300e9


def main() -> None:
    system = megatron_a100_cluster()
    print(f"system:  {system.describe()}")
    print(f"model:   {MEGATRON_145B.name} "
          f"({MEGATRON_145B.n_layers} layers, "
          f"hidden {MEGATRON_145B.hidden_size})")

    mapping = spec_from_totals(system, tp=8, dp=128)
    print(f"mapping: {mapping.describe()}")

    amped = AMPeD(
        model=MEGATRON_145B,
        system=system,
        parallelism=mapping,
        efficiency=CASE_STUDY_EFFICIENCY,
    )

    microbatch = amped.microbatch(GLOBAL_BATCH)
    print(f"microbatch: {microbatch:g} sequences "
          f"(efficiency {amped.microbatch_efficiency(GLOBAL_BATCH):.0%})")
    print()

    breakdown = amped.estimate_batch(GLOBAL_BATCH)
    print(breakdown.format_table(
        title=f"one batch of {GLOBAL_BATCH} sequences"))
    print()

    estimate = amped.estimate(GLOBAL_BATCH, total_tokens=CORPUS_TOKENS)
    print(f"training {CORPUS_TOKENS:.0e} tokens: "
          f"{estimate.total_time_days:.1f} days "
          f"({estimate.n_batches} batches, "
          f"{amped.achieved_tflops_per_gpu(GLOBAL_BATCH):.0f} "
          f"TFLOP/s/GPU achieved)")


if __name__ == "__main__":
    main()
