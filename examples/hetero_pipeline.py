"""Heterogeneous pipelines: mixing accelerator generations.

The paper's conclusion notes AMPeD "can be easily extended for
heterogeneous accelerators"; this example exercises that extension.
Scenario: an organization owns four 8xA100 nodes and four older 8xV100
nodes and wants to pipeline GPT-3 175B across all eight.  Questions:

1. How bad is the naive even layer split?  (The V100 stages pace the
   whole pipeline.)
2. How much does speed-proportional layer balancing recover?
3. Do the analytical estimate and the discrete-event simulation agree?

Run:  python examples/hetero_pipeline.py
"""

from repro.hardware import A100, IB_HDR, NVLINK2, NVLINK3, V100_SXM3
from repro.hetero import (
    HeterogeneousPipeline,
    StagePlatform,
    balancing_gain,
    bottleneck_stage,
    even_assignment,
    estimate_batch_time,
    rebalance,
    simulate_batch,
)
from repro.reporting import render_table
from repro.transformer import GPT3_175B

N_MICROBATCHES = 64
MICROBATCH = 2


def main() -> None:
    fast = StagePlatform(A100, tp_degree=8, intra_link=NVLINK3)
    slow = StagePlatform(V100_SXM3, tp_degree=8, intra_link=NVLINK2)
    stages = (fast, fast, fast, fast, slow, slow, slow, slow)
    pipeline = HeterogeneousPipeline(
        model=GPT3_175B,
        stages=stages,
        inter_stage_link=IB_HDR,
        layer_assignment=even_assignment(GPT3_175B.n_layers,
                                         len(stages)),
    )
    print(f"{GPT3_175B.name} over 4x(8xA100) + 4x(8xV100), "
          f"{N_MICROBATCHES} microbatches of {MICROBATCH}\n")

    naive_time = estimate_batch_time(pipeline, N_MICROBATCHES,
                                     MICROBATCH)
    naive_sim = simulate_batch(pipeline, N_MICROBATCHES, MICROBATCH)
    index, times = bottleneck_stage(pipeline, MICROBATCH)
    print(f"even split {pipeline.layer_assignment}: "
          f"{naive_time:.1f} s/batch analytical, "
          f"{naive_sim.makespan_s:.1f} s simulated; "
          f"bottleneck = stage {index} "
          f"({stages[index].accelerator.name}, "
          f"{times.step_s:.2f} s/step)")

    balanced = rebalance(pipeline, microbatch_size=MICROBATCH)
    balanced_time = estimate_batch_time(balanced, N_MICROBATCHES,
                                        MICROBATCH)
    balanced_sim = simulate_batch(balanced, N_MICROBATCHES, MICROBATCH)
    print(f"balanced split {balanced.layer_assignment}: "
          f"{balanced_time:.1f} s/batch analytical, "
          f"{balanced_sim.makespan_s:.1f} s simulated")

    gain = balancing_gain(pipeline, N_MICROBATCHES, MICROBATCH)
    print(f"\nspeed-proportional balancing recovers x{gain:.2f}\n")

    rows = []
    for label, pipe in (("even", pipeline), ("balanced", balanced)):
        from repro.hetero import stage_step_times
        for stage_index, stage_times in enumerate(
                stage_step_times(pipe, MICROBATCH)):
            rows.append((label, stage_index,
                         pipe.stages[stage_index].accelerator.name,
                         pipe.layer_assignment[stage_index],
                         f"{stage_times.step_s:.3f}"))
    print(render_table(
        ["split", "stage", "accelerator", "layers", "step (s)"],
        rows, title="per-stage step times"))


if __name__ == "__main__":
    main()
