"""Case Study II walkthrough: choosing DP vs PP on low-end clusters.

Cloud providers usually rent small nodes (1-4 accelerators, one NIC
each) rather than 8-GPU NVLink monsters.  This example sweeps the node
shape while holding the accelerator pool at 1024 A100s, compares
inter-node data parallelism against pipeline parallelism for each
shape, and runs the energy break-even analysis the paper sketches:
a slightly-slower PP run can still win on energy because accelerators
idle (at reduced power) inside pipeline bubbles.

Run:  python examples/lowend_cluster.py
"""

from repro.experiments.casestudy2 import (
    FIG10_GLOBAL_BATCH,
    energy_comparison,
    reproduce_fig10,
)
from repro.reporting import render_table


def main() -> None:
    print(f"Megatron 145B, batch {FIG10_GLOBAL_BATCH}, 1024 A100s "
          f"regrouped into low-end nodes (EDR NIC per accelerator)\n")

    results = reproduce_fig10()
    rows = []
    for node_size, point in sorted(results.items()):
        breakeven = point.energy_breakeven_idle_fraction
        rows.append((
            node_size,
            f"{point.dp_days:.1f}",
            f"{point.pp_days:.1f}",
            point.winner,
            f"x{point.advantage:.2f}",
            f"{point.pp_bubble_share:.1%}",
            "-" if breakeven is None else f"{breakeven:.2f}",
        ))
    print(render_table(
        ["accel+NICs/node", "DP days", "PP days", "winner", "margin",
         "PP bubble", "break-even idle fraction"],
        rows, title="Fig. 10: inter-node DP vs PP by node shape"))

    print("\nenergy at the crossover (4 accelerators/node, idle power "
          "30% of TDP):")
    energy = energy_comparison(node_size=4, idle_fraction=0.3)
    print(f"  DP: {energy['dp_days']:.1f} days, "
          f"{energy['dp_kwh']:,.0f} kWh")
    print(f"  PP: {energy['pp_days']:.1f} days, "
          f"{energy['pp_kwh']:,.0f} kWh")
    print("\nTakeaway: with a single NIC per node, PP's point-to-point "
          "traffic beats DP's all-reduce; once NICs multiply, DP wins "
          "on time — but PP's idle bubbles can still make it the "
          "cheaper run in energy when idle power is low.")


if __name__ == "__main__":
    main()
