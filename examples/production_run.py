"""From model estimate to campaign plan: ramps, checkpoints, failures.

AMPeD predicts the *clean* training time; a real 1024-GPU campaign also
pays for the batch-size warm-up ramp, periodic checkpoints, and
failure/restart cycles (a thousand-GPU cluster is interrupted every
couple of days).  This example stacks all three on the Case Study I
scenario and reports the realistic wall-clock a capacity planner should
actually book.

Run:  python examples/production_run.py
"""

from repro import AMPeD
from repro.hardware import MIXED_FP16, megatron_a100_cluster
from repro.parallelism import CASE_STUDY_EFFICIENCY, spec_from_totals
from repro.runtime import (
    BatchSizeRamp,
    CheckpointSpec,
    FailureModel,
    campaign_estimate,
    checkpoint_bytes,
    checkpoint_write_seconds,
    ramp_overhead,
    ramped_training_time,
)
from repro.transformer import MEGATRON_145B
from repro.units import format_bytes, format_duration, seconds_to_days

FULL_BATCH = 8192
TOKENS = 300e9

#: Aggregate parallel-filesystem write bandwidth (bits/s).
STORAGE_BW = 4e12

#: Per-device MTBF (hours) — a mid-range operator number.
DEVICE_MTBF_HOURS = 50_000


def main() -> None:
    system = megatron_a100_cluster()
    amped = AMPeD(
        model=MEGATRON_145B,
        system=system,
        parallelism=spec_from_totals(system, tp=8, dp=128),
        efficiency=CASE_STUDY_EFFICIENCY,
    )

    clean = amped.estimate(FULL_BATCH, total_tokens=TOKENS)
    print(f"clean AMPeD estimate: {clean.total_time_days:.1f} days\n")

    ramp = BatchSizeRamp(initial_batch=512, full_batch=FULL_BATCH,
                         ramp_tokens=12e9)
    ramped_seconds = ramped_training_time(amped, ramp, TOKENS)
    overhead = ramp_overhead(amped, ramp, TOKENS)
    print(f"1. batch ramp (512 -> {FULL_BATCH} over 12B tokens): "
          f"{seconds_to_days(ramped_seconds):.1f} days "
          f"(+{overhead:.1%})")

    size = checkpoint_bytes(MEGATRON_145B, MIXED_FP16)
    write = checkpoint_write_seconds(MEGATRON_145B, MIXED_FP16,
                                     STORAGE_BW)
    print(f"2. checkpoints: {format_bytes(size)} each, "
          f"{format_duration(write)} per write at "
          f"{STORAGE_BW / 8e9:.0f} GB/s aggregate")

    checkpoint = CheckpointSpec(write_seconds=write,
                                restart_seconds=900.0)
    failures = FailureModel(device_mtbf_hours=DEVICE_MTBF_HOURS,
                            n_devices=system.n_accelerators)
    campaign = campaign_estimate(ramped_seconds, checkpoint, failures)
    print(f"3. failures: system MTBF "
          f"{failures.system_mtbf_seconds / 86400:.1f} days -> "
          f"~{campaign.expected_failures:.0f} interruptions; "
          f"Young/Daly interval "
          f"{format_duration(campaign.checkpoint_interval_s)}")

    print(f"\ncampaign plan: {campaign.expected_days:.1f} days "
          f"(checkpoints +{campaign.checkpoint_overhead:.1%}, "
          f"failures +{campaign.failure_overhead:.1%}, "
          f"ramp +{overhead:.1%} — "
          f"{campaign.expected_days - clean.total_time_days:.1f} days "
          f"over the clean estimate)")


if __name__ == "__main__":
    main()
