"""Memory planning: which mappings can physically run?

The paper folds memory limits into its empirical efficiency fit and
leaves explicit modeling as future work; this library implements it.
The example sizes the per-accelerator footprint of Megatron 145B under
different mappings and ZeRO stages, finds the largest feasible
microbatch for each, and shows how ZeRO-3 turns an impossible
configuration into a runnable one.

Run:  python examples/memory_planner.py
"""

from repro import ZeroConfig
from repro.hardware import A100, MIXED_FP16, megatron_a100_cluster
from repro.memory import estimate_footprint, max_feasible_microbatch
from repro.parallelism import spec_from_totals
from repro.reporting import render_table
from repro.transformer import MEGATRON_145B
from repro.units import format_bytes


def main() -> None:
    system = megatron_a100_cluster()
    print(f"planning {MEGATRON_145B.name} on {A100.name} "
          f"({format_bytes(A100.memory_bytes)} HBM each)\n")

    scenarios = [
        ("DP only (replicated)", spec_from_totals(system, dp=1024),
         ZeroConfig(stage=0)),
        ("DP only + ZeRO-3", spec_from_totals(system, dp=1024),
         ZeroConfig(stage=3)),
        ("TP=8", spec_from_totals(system, tp=8, dp=128),
         ZeroConfig(stage=0)),
        ("TP=8, PP=8", spec_from_totals(system, tp=8, pp=8, dp=16,
                                        n_microbatches=64),
         ZeroConfig(stage=0)),
        ("TP=8, PP=8 + ZeRO-1", spec_from_totals(
            system, tp=8, pp=8, dp=16, n_microbatches=64),
         ZeroConfig(stage=1)),
    ]

    rows = []
    for label, spec, zero in scenarios:
        footprint = estimate_footprint(MEGATRON_145B, spec, 1,
                                       MIXED_FP16, zero=zero)
        max_ub = max_feasible_microbatch(MEGATRON_145B, spec,
                                         MIXED_FP16, A100, zero=zero)
        rows.append((
            label,
            format_bytes(footprint.parameters),
            format_bytes(footprint.optimizer_states),
            format_bytes(footprint.activations),
            format_bytes(footprint.total),
            "does not fit" if max_ub is None else f"ub <= {max_ub}",
        ))

    print(render_table(
        ["mapping", "params/GPU", "optimizer/GPU",
         "activations/GPU (ub=1)", "total (ub=1)", "feasible"],
        rows, title="per-accelerator memory footprint"))

    print("\nTakeaway: plain DP cannot hold 145B parameters, ZeRO-3 "
          "shards them into feasibility, and the TP+PP mappings the "
          "paper's Table II uses leave room for real microbatches.")


if __name__ == "__main__":
    main()
