"""Case Study III walkthrough: future optical communication substrates.

Walks the paper's ladder of substrate optimizations for training the
GLaM 1.2T Mixture-of-Experts model on 3072 H100-class accelerators at
8-bit precision:

- Opt. 1: dedicated per-accelerator optical fibers replace NICs;
- Opt. 2: bigger substrates pack 16/32/48 accelerators per node,
  converting data parallelism into tensor parallelism (larger
  per-replica batches, better utilization);
- Opt. 3: future accelerators double/quadruple their off-chip
  bandwidth into the substrate.

Run:  python examples/optical_substrate.py
"""

from repro.experiments.casestudy3 import reproduce_fig11
from repro.reporting import bar_chart, render_table


def main() -> None:
    bars = reproduce_fig11()
    reference = bars[0]

    rows = []
    for bar in bars:
        breakdown = bar.breakdown
        rows.append((
            bar.label,
            bar.accelerators_per_node,
            f"{bar.training_days_per_epoch:.2f}",
            f"x{bar.speedup_over(reference):.2f}",
            f"{breakdown.compute_time:.2f}",
            f"{breakdown.comm_moe:.3f}",
            f"{breakdown.comm_gradient:.3f}",
        ))
    print(render_table(
        ["configuration", "accel/node", "days per 100B tokens",
         "speedup", "compute s", "MoE comm s", "DP comm s"],
        rows, title="Fig. 11: GLaM 1.2T on 3072 accelerators (8-bit)"))
    print()
    print(bar_chart(
        [bar.label for bar in bars],
        [bar.speedup_over(reference) for bar in bars],
        title="cumulative speedup over the reference system",
        unit="x"))
    print()
    moe_cut = (reference.breakdown.comm_moe
               / bars[1].breakdown.comm_moe)
    print(f"Opt. 1 cuts MoE all-to-all time by {moe_cut:.1f}x "
          f"(the paper reports ~6x) without touching peak compute; "
          f"by the last bar, computation dominates the batch time — "
          f"exactly the regime the paper predicts for "
          f"high-bandwidth systems.")


if __name__ == "__main__":
    main()
