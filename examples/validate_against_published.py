"""Reproduce the paper's entire validation section (§V) in one run.

Prints the four validation artifacts with their error reports:

- Fig. 2a: minGPT data-parallel scaling (vs a step-level collective
  simulation standing in for the paper's HGX-2 runs);
- Fig. 2b: minGPT pipeline-parallel scaling (vs the discrete-event
  pipeline simulator standing in for the torchgpipe runs);
- Table II: achieved TFLOP/s/GPU vs the published Megatron numbers;
- Table III: GPipe speedups vs the published P100 numbers;

and closes with the headline check: every error within the paper's
12% budget.

Run:  python examples/validate_against_published.py
"""

from repro.experiments.fig2_validation import (
    data_parallel_scaling,
    pipeline_parallel_scaling,
)
from repro.experiments.table2 import reproduce_table2
from repro.experiments.table3 import reproduce_table3
from repro.validation import MAX_PAPER_ERROR_PERCENT


def main() -> None:
    reports = []

    result = data_parallel_scaling()
    reports.append(result.report())
    print(result.report().format_table())
    print()

    result = pipeline_parallel_scaling()
    reports.append(result.report())
    print(result.report().format_table())
    print()

    __, report = reproduce_table2()
    reports.append(report)
    print(report.format_table())
    print()

    __, report = reproduce_table3()
    reports.append(report)
    print(report.format_table())
    print()

    worst = max(report.max_error_percent for report in reports)
    verdict = "PASS" if worst <= MAX_PAPER_ERROR_PERCENT else "FAIL"
    print(f"[{verdict}] worst error across all validations: "
          f"{worst:.2f}% (paper's claim: <= "
          f"{MAX_PAPER_ERROR_PERCENT:.0f}%)")


if __name__ == "__main__":
    main()
