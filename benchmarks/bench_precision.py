"""Extension bench: what numeric precision buys, per Eq. 2's ceiling.

Evaluates GPT-3 175B on an H100 cluster under FP32, FP16 and FP8
policies.  Eq. 2's ``ceil(operand_bits / FU_bits)`` makes the outcome
non-obvious: FP32 on 16-bit units costs two passes (2x compute), while
FP8 on the same units still costs one pass — so dropping from FP16 to
FP8 buys *no compute time* in this model (the H100's FP8-double-rate
tensor cores would need a narrower ``mac_fu_bits`` entry), but halves
every communication volume.  The bench prints and asserts exactly that
decomposition.
"""

from conftest import print_block

from repro.core.model import AMPeD
from repro.hardware.catalog import glam_h100_reference
from repro.hardware.precision import (
    FP8_TRAINING,
    FULL_FP32,
    MIXED_FP16,
)
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.parallelism.spec import spec_from_totals
from repro.reporting.tables import render_table
from repro.transformer.zoo import GPT3_175B

BATCH = 4096

POLICIES = (("FP32", FULL_FP32), ("FP16", MIXED_FP16),
            ("FP8", FP8_TRAINING))


def run_policies():
    system = glam_h100_reference(n_nodes=64)  # 512 H100s
    spec = spec_from_totals(system, tp=8, dp=64)
    results = {}
    for label, precision in POLICIES:
        amped = AMPeD(model=GPT3_175B, system=system, parallelism=spec,
                      precision=precision,
                      efficiency=CASE_STUDY_EFFICIENCY)
        results[label] = amped.estimate_batch(BATCH)
    return results


def test_precision(benchmark):
    results = benchmark.pedantic(run_policies, rounds=1, iterations=1)

    rows = [(label, f"{b.compute_time:.2f}", f"{b.comm_time:.3f}",
             f"{b.total:.2f}")
            for label, b in results.items()]
    print_block(
        "GPT-3 175B on 512 H100s: precision policy vs batch time",
        render_table(["policy", "compute s", "comm s", "total s"],
                     rows))

    fp32, fp16, fp8 = (results["FP32"], results["FP16"],
                       results["FP8"])
    # FP32 on 16-bit units: two passes on both pipelines -> 2x compute
    assert fp32.compute_time / fp16.compute_time == 2.0
    # FP8 on 16-bit units: still one pass -> no compute gain ...
    assert fp8.compute_time == fp16.compute_time
    # ... but half the communicated bits (latency terms are
    # precision-independent, hence the small tolerance)
    assert abs(fp8.comm_time / fp16.comm_time - 0.5) < 0.02
    assert abs(fp32.comm_time / fp16.comm_time - 2.0) < 0.04
    # total ordering follows
    assert fp8.total < fp16.total < fp32.total
