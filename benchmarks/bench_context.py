"""Extension bench: the long-context cost curve.

Sweeps the context length from 2k to 64k at a fixed 4M-token batch on
256 A100s (Megatron-7.5B architecture) and reports per-token cost and
the share of FLOPs in the quadratic attention terms.  Asserts the
closed-form crossover (``s = 6h``) and the superlinear per-token cost
growth that makes long-context training expensive.
"""

from conftest import print_block

from repro.experiments.context_study import (
    quadratic_crossover_length,
    run_context_study,
)
from repro.reporting.tables import render_table
from repro.transformer.zoo import MEGATRON_7_5B


def test_context(benchmark):
    points = benchmark.pedantic(run_context_study, rounds=1,
                                iterations=1)

    rows = [(p.sequence_length, p.global_batch,
             f"{p.batch_time_s:.1f}",
             f"{p.time_per_token_s * 1e6:.2f}",
             f"{p.attention_flop_share:.1%}")
            for p in points]
    crossover = quadratic_crossover_length(MEGATRON_7_5B)
    print_block(
        f"Long-context cost (7.5B arch, 4M tokens/batch, 256 A100s; "
        f"quadratic crossover at s = 6h = {crossover:.0f})",
        render_table(["context", "batch", "s/batch", "us/token",
                      "attention share"], rows))

    costs = [p.time_per_token_s for p in points]
    shares = [p.attention_flop_share for p in points]
    assert costs == sorted(costs)
    assert shares == sorted(shares)
    # by 64k the quadratic terms dominate the paper-era 2k regime
    assert shares[-1] > 5 * shares[0]
    # the longest context costs several times more per token
    assert costs[-1] / costs[0] > 2.0
