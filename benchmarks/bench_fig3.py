"""Fig. 3 bench: training-time breakdown for two 1024-GPU mappings.

Regenerates the two example configurations (DP 8x64 with PP x2 vs
TP x2 across nodes) and asserts the paper's observation that the
pipeline bubble of the first is negligible next to the TP-inter
communication of the second.
"""

from conftest import print_block

from repro.experiments.fig3_breakdown import reproduce_fig3
from repro.reporting.ascii_plot import bar_chart


def test_fig3(benchmark):
    pp_case, tp_case = benchmark(reproduce_fig3)

    charts = []
    for case in (pp_case, tp_case):
        summary = case.breakdown.summary_dict()
        charts.append(bar_chart(list(summary), list(summary.values()),
                                title=case.label, unit="s/batch"))
    print_block("Fig. 3: training time breakdown", "\n\n".join(charts))

    assert pp_case.breakdown.bubble < 0.2 * tp_case.breakdown.comm_tp
    assert tp_case.breakdown.comm_tp > 0
    assert pp_case.breakdown.comm_tp == 0
