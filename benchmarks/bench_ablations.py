"""Ablation benches for the modeling choices DESIGN.md calls out.

Four ablations, each quantifying a documented interpretation decision:

1. *hierarchical sharding* — Eq. 6/11's inter-node volume divided by the
   intra-level group size vs the flat reading.  Without it the paper's
   "TP-inter is ~3x worse" becomes ~20x worse.
2. *pipeline-stage concurrency* — Eq. 1's per-layer communication sum
   divided by N_PP vs the literal sum.
3. *bubble model* — the physical bubble bound vs the printed Eq. 8
   (whose extra 1/L makes bubbles negligible).
4. *collective topology* — ring vs tree vs fully-connected for the DP
   gradient all-reduce.
"""

from conftest import print_block

from repro.core.model import AMPeD
from repro.hardware.catalog import megatron_a100_cluster
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.parallelism.spec import spec_from_totals
from repro.parallelism.topology import FULLY_CONNECTED, RING, TREE
from repro.reporting.tables import render_table
from repro.transformer.zoo import MEGATRON_145B

BATCH = 8192


def build(spec, **kwargs) -> AMPeD:
    system = megatron_a100_cluster()
    return AMPeD(model=MEGATRON_145B, system=system, parallelism=spec,
                 efficiency=CASE_STUDY_EFFICIENCY, validate=False,
                 **kwargs)


def run_ablations():
    system = megatron_a100_cluster()
    results = {}

    # 1. hierarchical sharding: visible on an inter-node TP mapping.
    # The flat reading moves tp_intra times the volume per NIC, so it
    # equals the sharded inter term scaled back up (latency excluded,
    # negligible at this payload).
    tp_inter_spec = spec_from_totals(system, tp=16, dp=64)
    sharded = build(tp_inter_spec).estimate_batch(BATCH)
    results["hierarchical sharding"] = (
        sharded.comm_tp_inter,
        sharded.comm_tp_inter * tp_inter_spec.tp_intra)

    # 2. stage concurrency on a TP-intra + PP-inter mapping.
    pp_spec = spec_from_totals(system, tp=8, pp=64, dp=2,
                               n_microbatches=256)
    concurrent = build(pp_spec).estimate_batch(BATCH)
    literal = build(pp_spec, concurrent_stage_comm=False) \
        .estimate_batch(BATCH)
    results["stage concurrency (TP comm)"] = (concurrent.comm_tp,
                                              literal.comm_tp)

    # 3. bubble model on the same mapping.
    physical = build(pp_spec, bubble_model="physical") \
        .estimate_batch(BATCH)
    eq8 = build(pp_spec, bubble_model="eq8").estimate_batch(BATCH)
    results["bubble model (physical vs eq8)"] = (physical.bubble,
                                                 eq8.bubble)

    # 4. gradient all-reduce topology on a DP-heavy mapping.
    dp_spec = spec_from_totals(system, tp=8, dp=128)
    by_topology = {}
    for topology in (RING, TREE, FULLY_CONNECTED):
        model = build(dp_spec, intra_topology=topology,
                      inter_topology=topology)
        by_topology[topology.name] = \
            model.estimate_batch(BATCH).comm_gradient
    results["gradient topology"] = by_topology
    return results


def test_ablations(benchmark):
    results = benchmark.pedantic(run_ablations, rounds=1, iterations=1)

    rows = []
    for name, value in results.items():
        if isinstance(value, dict):
            for key, v in value.items():
                rows.append((f"{name}: {key}", round(v, 4), ""))
        else:
            ours, alternative = value
            rows.append((name, round(ours, 4), round(alternative, 4)))
    print_block(
        "Ablations of documented modeling choices (seconds/batch)",
        render_table(["choice", "as-built", "alternative"], rows))

    sharded, flat = results["hierarchical sharding"]
    assert flat > 4 * sharded  # sharding is load-bearing

    concurrent, literal = results["stage concurrency (TP comm)"]
    assert literal > 10 * concurrent  # 64 stages overlap

    physical, eq8 = results["bubble model (physical vs eq8)"]
    assert physical > eq8  # Eq. 8's 1/L suppresses bubbles

    topologies = results["gradient topology"]
    assert topologies["ring-allreduce"] \
        < topologies["tree-allreduce"]  # bandwidth-bound payload
