"""Fig. 2b bench: minGPT pipeline-parallel scaling on HGX-2.

Regenerates the normalized-training-time curve for 2/4/8/16 pipeline
stages (N_ub = N_PP, as in the paper) against the discrete-event
pipeline simulator, and asserts the trend match plus the paper's
diminishing-returns saturation.
"""

from conftest import print_block

from repro.experiments.fig2_validation import pipeline_parallel_scaling
from repro.reporting.tables import render_table
from repro.validation.published import MAX_PAPER_ERROR_PERCENT


def test_fig2b(benchmark):
    result = benchmark(pipeline_parallel_scaling)

    rows = [(point.n_gpus, predicted, measured)
            for point, predicted, measured in zip(
                result.points, result.predicted_normalized,
                result.measured_normalized)]
    print_block(
        "Fig. 2b: minGPT PP scaling (normalized training time)",
        render_table(["GPUs", "AMPeD (predicted)",
                      "simulated (measured)"], rows)
        + "\n\n" + result.report().format_table())

    curve = result.predicted_normalized
    assert all(a > b for a, b in zip(curve, curve[1:]))
    assert result.report().max_error_percent <= MAX_PAPER_ERROR_PERCENT
    # saturation: the last doubling gains less than the first
    assert curve[2] / curve[3] < curve[0] / curve[1]
