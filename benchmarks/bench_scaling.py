"""Extension bench: strong-scaling study with per-size optimal mappings.

For each cluster size (8..128 nodes of 8 A100s), runs the full
design-space exploration and reports the best mapping, training days,
and parallel efficiency — the workflow the paper's introduction
motivates, end to end.
"""

from conftest import print_block

from repro.experiments.scaling_study import run_scaling_study
from repro.reporting.tables import render_table


def test_scaling_study(benchmark):
    points = benchmark.pedantic(run_scaling_study, rounds=1,
                                iterations=1)
    base = points[0]

    rows = [(p.n_accelerators, p.mapping, f"{p.batch_time_s:.1f}",
             f"{p.training_days:.1f}",
             f"x{p.speedup_over(base):.2f}",
             f"{p.efficiency_over(base):.0%}")
            for p in points]
    print_block(
        "Strong scaling of Megatron 145B (best mapping per size, "
        "batch 4096, 300B tokens)",
        render_table(["GPUs", "best mapping", "s/batch", "days",
                      "speedup", "efficiency"], rows))

    times = [p.batch_time_s for p in points]
    assert all(a > b for a, b in zip(times, times[1:]))
    final = points[-1]
    assert final.efficiency_over(base) < 1.0
    assert final.speedup_over(base) > 2.0
    assert all(not p.uses_inter_tp for p in points)
