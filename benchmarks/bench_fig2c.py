"""Fig. 2c bench: GPT-3 175B TFLOP/s/GPU vs microbatch size.

Regenerates the batch-size saturation study (96 GPUs, pipeline
parallelism only) and asserts the saturating shape the paper validates
against Narayanan et al. (~11% error at microbatch 12 shrinking to ~2%
at 60 in the paper's comparison).
"""

from conftest import print_block

from repro.experiments.fig2_validation import batch_size_saturation
from repro.reporting.ascii_plot import line_chart
from repro.reporting.tables import render_table


def test_fig2c(benchmark):
    points = benchmark(batch_size_saturation)

    rows = [(p.microbatch_size, p.global_batch,
             round(p.tflops_per_gpu, 1), round(p.efficiency, 3))
            for p in points]
    chart = line_chart(
        [p.microbatch_size for p in points],
        {"TFLOP/s/GPU": [p.tflops_per_gpu for p in points]},
        title="Fig. 2c: performance saturation with microbatch size")
    print_block(
        "Fig. 2c: GPT-3 175B on 96 GPUs (PP only)",
        render_table(["microbatch", "global batch", "TFLOP/s/GPU",
                      "eff"], rows) + "\n\n" + chart)

    tflops = [p.tflops_per_gpu for p in points]
    assert tflops == sorted(tflops)                      # monotone
    assert tflops[-1] / tflops[-2] < tflops[1] / tflops[0]  # concave
    assert 120 <= tflops[-1] <= 170  # saturates near published ~150
