"""Figs. 7-9 bench: Case Study I with data parallelism inside nodes.

Regenerates the DP-intra half of the design space and asserts the
paper's §VI-D findings: DP-intra mappings are roughly 2x slower than
their TP-intra counterparts (microbatch efficiency collapses under the
deep DP split), and the TP-heavy curves converge once communication
dominates.
"""

from conftest import print_block

from repro.experiments.casestudy1 import figure6, figure7, figure8, figure9
from repro.reporting.tables import render_table


def render_sweep(series) -> str:
    batches = sorted(series.points[0].days)
    rows = [[p.label] + [("n/a" if p.days[b] is None
                          else round(p.days[b], 1)) for b in batches]
            for p in series.points]
    return render_table(["inter split"]
                        + [f"batch {b} (days)" for b in batches],
                        rows, title=series.figure)


def run_all():
    return figure7(), figure8(), figure9()


def test_fig7_9(benchmark):
    fig7, fig8, fig9 = benchmark.pedantic(run_all, rounds=1,
                                          iterations=1)

    print_block("Case Study I: DP intra-node (Figs. 7-9)",
                "\n\n".join(render_sweep(s) for s in (fig7, fig8, fig9)))

    # §VI-D: DP-intra is markedly slower than TP-intra at batch 16384
    # (the paper reports 36-38 vs 18-21 days).
    __, dp_best = fig9.best(16384)
    __, tp_best = figure6(batches=(16384,)).best(16384)
    assert 1.5 < dp_best / tp_best < 4.0

    # Fig. 7: curves merge for TP > PP — the largest-TP points of the
    # three batch curves approach each other as comm dominates.
    heavy = [p for p in fig7.points
             if p.first_degree >= 32 and
             all(v is not None for v in p.days.values())]
    for point in heavy:
        values = list(point.days.values())
        assert max(values) / min(values) < 1.6
