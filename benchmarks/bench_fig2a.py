"""Fig. 2a bench: minGPT data-parallel scaling on the HGX-2 platform.

Regenerates the normalized-training-time curve (predicted vs the
simulated measurement substitute) for 1/2/4/8/16 GPUs and asserts the
paper's claims: matching trends within the 12% validation budget.
"""

from conftest import print_block

from repro.experiments.fig2_validation import data_parallel_scaling
from repro.reporting.tables import render_table
from repro.validation.published import MAX_PAPER_ERROR_PERCENT


def test_fig2a(benchmark):
    result = benchmark(data_parallel_scaling)

    rows = [(point.n_gpus, predicted, measured)
            for point, predicted, measured in zip(
                result.points, result.predicted_normalized,
                result.measured_normalized)]
    print_block(
        "Fig. 2a: minGPT DP scaling (normalized training time)",
        render_table(["GPUs", "AMPeD (predicted)",
                      "simulated (measured)"], rows)
        + "\n\n" + result.report().format_table())

    curve = result.predicted_normalized
    assert curve[0] == 1.0
    assert all(a > b for a, b in zip(curve, curve[1:]))
    assert result.report().max_error_percent <= MAX_PAPER_ERROR_PERCENT
