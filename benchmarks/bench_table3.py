"""Table III bench: GPipe normalized throughput on P100/PCIe, M = 32.

Regenerates the 2/4/8-GPU speedups (published: 1 / 1.8 / 3.3; the
paper predicts 1 / 1.84 / 3.19) and cross-checks the closed form
against the discrete-event pipeline simulator.
"""

from conftest import print_block

from repro.core.metrics import speedups
from repro.experiments.table3 import reproduce_table3
from repro.reporting.tables import render_table
from repro.validation.published import GPIPE_TABLE3


def test_table3(benchmark):
    rows, report = benchmark(reproduce_table3)

    predicted = speedups([row.batch_time_s for row in rows])
    simulated = speedups([row.simulated_time_s for row in rows])
    table = render_table(
        ["GPUs", "published", "AMPeD (ours)", "event-sim (ours)",
         "paper's prediction"],
        [(point.n_gpus, point.published_speedup, round(p, 2),
          round(s, 2), point.paper_prediction_speedup)
         for point, p, s in zip(GPIPE_TABLE3, predicted, simulated)],
        title="Table III (normalized training throughput, M=32)")
    print_block("Table III: GPipe on P100", table)

    assert report.max_error_percent <= 12.0
    assert predicted == sorted(predicted)
    assert predicted[-1] < 4.0  # sub-linear: bubbles
