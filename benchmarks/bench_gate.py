"""CI regression gate for the DSE evaluation engine.

Runs the same workload as ``bench_dse.py``, compares the measured
``mappings_per_s`` of the gated phases (collapsed fast path, sweep
compiler) against the committed ``BENCH_dse.json`` with a 20%
one-sided tolerance, and appends the measurement to
``BENCH_trajectory.json`` so the engine's throughput history
accumulates run over run.  Unlike ``bench_dse.py`` it never rewrites
``BENCH_dse.json`` — the committed baseline only moves when a PR
regenerates it deliberately.

Run it the way CI does:

    PYTHONPATH=src python benchmarks/bench_gate.py
    PYTHONPATH=src python -m pytest benchmarks/bench_gate.py -m perf -s
"""

from __future__ import annotations

import json
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.search.benchmark import (
    GATE_TOLERANCE,
    append_trajectory,
    check_bench_regression,
    gated_phases_present,
    run_dse_benchmark,
    trajectory_entry,
)
from repro.serve.benchmark import (
    check_serve_regression,
    run_serve_benchmark,
)

from conftest import print_block

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE_JSON = REPO_ROOT / "BENCH_dse.json"
SERVE_BASELINE_JSON = REPO_ROOT / "BENCH_serve.json"
OBS_BASELINE_JSON = REPO_ROOT / "BENCH_obs.json"
TRAJECTORY_JSON = REPO_ROOT / "BENCH_trajectory.json"


def _git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True,
            timeout=10).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def _run_gate() -> tuple:
    committed = json.loads(BASELINE_JSON.read_text())
    payload = run_dse_benchmark()
    failures = check_bench_regression(payload, committed)
    # Serve gate: only when a baseline is committed.  The cold-CLI
    # phase is skipped here — the gate rate-compares the in-process
    # warm/burst throughput, not subprocess start-up.
    if SERVE_BASELINE_JSON.exists():
        serve_committed = json.loads(SERVE_BASELINE_JSON.read_text())
        serve_payload = run_serve_benchmark(include_cold_cli=False)
        payload["serve"] = serve_payload
        failures += check_serve_regression(serve_payload,
                                           serve_committed)
    # Observability suite: bench_obs.py is too slow to rerun per gate,
    # so the trajectory row carries the committed overhead ratio — it
    # moves whenever a PR regenerates BENCH_obs.json.
    if OBS_BASELINE_JSON.exists():
        payload["obs"] = json.loads(OBS_BASELINE_JSON.read_text())
    entry = trajectory_entry(
        payload,
        timestamp=datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        commit=_git_commit())
    append_trajectory(entry, TRAJECTORY_JSON)
    return payload, committed, failures


def _format(payload: dict, committed: dict, failures: list) -> str:
    lines = []
    gated = gated_phases_present(payload, committed)
    for phase_name in gated:
        measured = payload[phase_name]["mappings_per_s"]
        baseline = committed[phase_name]["mappings_per_s"]
        lines.append(
            f"{phase_name:<10} {measured:>10.0f} mappings/s "
            f"(committed {baseline:.0f}, floor "
            f"{(1.0 - GATE_TOLERANCE) * baseline:.0f})")
    if "vectorized" not in gated:
        lines.append("vectorized ungated: phase missing from "
                     + ("this run (NumPy unavailable)"
                        if "vectorized" not in payload
                        else "the committed baseline"))
    cross = payload.get("crossproduct")
    if cross:
        lines.append(
            f"crossproduct {cross['n_mappings']:,} mappings in "
            f"{cross['seconds']:.1f} s "
            f"({cross['mappings_per_s']:,.0f}/s)")
    transport = payload.get("parallel_transport")
    if transport:
        lines.append(
            f"transport  {transport['n_lanes']:,}-lane chunk table "
            f"warm-up {transport['warmup_speedup']:.0f}x vs pickle "
            f"(bit-exact: {transport['bit_exact']})")
    serve = payload.get("serve")
    if serve:
        lines.append(
            f"serve      warm {serve['warm']['requests_per_s']:.0f} "
            f"requests/s, burst "
            f"{serve['burst']['requests_per_s']:.0f} requests/s "
            f"({serve['burst']['errors']} errors)")
        multi = serve.get("multi_worker")
        if multi:
            lines.append(
                f"serve      multi-worker x{multi['workers']} "
                f"{multi['requests_per_s']:.0f} requests/s "
                f"({multi['speedup_vs_single']:.2f}x single on "
                f"{multi['cpu_count']} cores)")
    obs = payload.get("obs")
    if obs:
        lines.append(
            f"obs        enabled-tracing overhead "
            f"{obs['enabled_overhead']:.3f}x (committed baseline)")
    lines.append(f"trajectory appended to {TRAJECTORY_JSON.name}")
    lines.extend(f"REGRESSION: {failure}" for failure in failures)
    return "\n".join(lines)


@pytest.mark.perf
def test_bench_gate() -> None:
    payload, committed, failures = _run_gate()
    print_block(
        f"DSE regression gate ({GATE_TOLERANCE:.0%} tolerance)",
        _format(payload, committed, failures))
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    result, baseline, problems = _run_gate()
    print(_format(result, baseline, problems))
    sys.exit(1 if problems else 0)
