"""Serving-latency benchmark: warm daemon vs cold CLI.

Measures the estimation daemon against the canonical repeated request
(Megatron-1T on the 1024-A100 cluster): cold one-shot CLI wall-clock,
the daemon's first (cache-cold) request, warm sequential repeats, and
tail latency under a concurrent burst — recording the measurement in
``BENCH_serve.json`` at the repo root.

Run it explicitly (excluded from tier-1 via the ``perf`` marker):

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -m perf -s
    PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.serve.benchmark import (
    MIN_MULTIWORKER_SPEEDUP,
    MULTIWORKER_MIN_CORES,
    run_serve_benchmark,
    write_serve_bench_json,
)

from conftest import print_block

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

#: The acceptance bar: a repeated estimate against the warm daemon must
#: beat a cold CLI invocation of the same request by at least 5x.
MIN_WARM_SPEEDUP = 5.0

#: On a runner with at least MULTIWORKER_MIN_CORES cores, the pre-fork
#: fleet's burst must scale to MIN_MULTIWORKER_SPEEDUP x a single
#: worker's (imported so the bench and the CI gate share one bar).


def _format(payload: dict) -> str:
    lines = [
        f"request         {payload['request']['model']} on "
        f"{payload['request']['nodes']}x"
        f"{payload['request']['accel_per_node']} A100 "
        f"(tp={payload['request']['tp']} pp={payload['request']['pp']} "
        f"dp={payload['request']['dp']})",
    ]
    if "cold_cli" in payload:
        lines.append(f"cold CLI        "
                     f"{payload['cold_cli']['seconds']:.3f} s")
    warm, burst = payload["warm"], payload["burst"]
    lines += [
        f"first request   {payload['first_request']['seconds']:.3f} s "
        f"(daemon cache cold)",
        f"warm repeats    p50 {warm['p50_seconds'] * 1e3:.2f} ms, "
        f"p99 {warm['p99_seconds'] * 1e3:.2f} ms "
        f"({warm['requests_per_s']:.0f} requests/s over "
        f"{warm['repeats']} repeats)",
        f"burst           {burst['threads']} threads, "
        f"{burst['requests']} requests, {burst['errors']} errors; "
        f"p50 {burst['p50_seconds'] * 1e3:.2f} ms, "
        f"p99 {burst['p99_seconds'] * 1e3:.2f} ms "
        f"({burst['requests_per_s']:.0f} requests/s)",
    ]
    multi = payload.get("multi_worker")
    if multi is not None:
        lines.append(
            f"multi-worker    {multi['workers']} workers on "
            f"{multi['cpu_count']} cores: "
            f"{multi['requests_per_s']:.0f} requests/s "
            f"({multi['speedup_vs_single']:.2f}x a single worker's "
            f"{multi['single_worker_requests_per_s']:.0f}/s, "
            f"{multi['errors']} errors)")
    if "warm_speedup_vs_cold_cli" in payload:
        lines.append(f"speedup         "
                     f"{payload['warm_speedup_vs_cold_cli']:.0f}x warm "
                     f"daemon vs cold CLI")
    return "\n".join(lines)


@pytest.mark.perf
def test_bench_serve() -> None:
    payload = run_serve_benchmark()
    print_block("Serving latency: warm daemon vs cold CLI",
                _format(payload))
    write_serve_bench_json(payload, BENCH_JSON)
    assert payload["warm_speedup_vs_cold_cli"] >= MIN_WARM_SPEEDUP, (
        f"warm daemon speedup "
        f"{payload['warm_speedup_vs_cold_cli']:.1f}x over the cold "
        f"CLI is below the {MIN_WARM_SPEEDUP:.0f}x bar")
    assert payload["burst"]["errors"] == 0, (
        f"{payload['burst']['errors']} requests failed under the "
        f"concurrent burst")
    multi = payload.get("multi_worker")
    if multi is not None:
        assert multi["errors"] == 0, (
            f"{multi['errors']} requests failed against the "
            f"multi-worker fleet")
        if multi["cpu_count"] >= MULTIWORKER_MIN_CORES \
                and multi["workers"] >= 2:
            assert multi["speedup_vs_single"] \
                >= MIN_MULTIWORKER_SPEEDUP, (
                    f"multi-worker burst scaled only "
                    f"{multi['speedup_vs_single']:.2f}x over a single "
                    f"worker on {multi['cpu_count']} cores (bar: "
                    f"{MIN_MULTIWORKER_SPEEDUP:.0f}x)")


if __name__ == "__main__":
    result = run_serve_benchmark()
    print(_format(result))
    written = write_serve_bench_json(result, BENCH_JSON)
    print(f"\nwrote {written}")
    print(json.dumps(result, indent=2))
