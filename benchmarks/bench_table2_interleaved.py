"""Extension bench: Table II with a modeled interleaved overlap ratio.

The paper attributes its deep-PP error to R = 1; here R is *measured*
from the discrete-event simulator for Megatron's two-chunk interleaved
schedule and Table II is re-evaluated.  Asserts the paper's diagnosis:
the deep-PP rows move toward the published numbers.
"""

from conftest import print_block

from repro.experiments.table2_interleaved import reproduce_table2_interleaved
from repro.reporting.tables import render_table


def test_table2_interleaved(benchmark):
    rows, report = benchmark(reproduce_table2_interleaved)

    table = render_table(
        ["Model", "PP", "published", "R=1 pred (err)",
         f"R={rows[0].overlap_ratio:.2f} pred (err)"],
        [(f"{row.point.n_parameters_b:g}B", row.point.pp,
          row.point.published_tflops,
          f"{row.naive.predicted_tflops:.1f} "
          f"({row.naive.error_percent:.1f}%)",
          f"{row.interleaved.predicted_tflops:.1f} "
          f"({row.interleaved.error_percent:.1f}%)")
         for row in rows],
        title="Table II, naive vs simulator-derived overlap")
    print_block("Table II with interleaved overlap modeling", table)

    assert report.max_error_percent < 9.0
    deep_improvements = [row.improvement_percent for row in rows
                         if row.point.pp >= 32]
    assert all(improvement > 0 for improvement in deep_improvements)
