"""Fig. 11 bench: Case Study III — optical communication substrates.

Regenerates the seven-bar optimization ladder (reference -> Opt. 1
fibers -> Opt. 2 bigger substrate nodes -> Opt. 3 more off-chip
bandwidth) for GLaM-1.2T on 3072 H100-class accelerators at 8-bit
precision, and asserts the paper's claims: a monotone ladder, MoE
communication slashed ~6x by Opt. 1, unchanged peak compute, and a
multi-x end-to-end speedup with compute dominating at the end.
"""

from conftest import print_block

from repro.experiments.casestudy3 import reproduce_fig11
from repro.reporting.ascii_plot import bar_chart
from repro.reporting.tables import render_table


def test_fig11(benchmark):
    bars = benchmark(reproduce_fig11)
    reference = bars[0]

    rows = [(bar.label, round(bar.training_days_per_epoch, 2),
             f"x{bar.speedup_over(reference):.2f}",
             round(bar.breakdown.compute_time, 2),
             round(bar.breakdown.comm_time, 3))
            for bar in bars]
    table = render_table(
        ["configuration", "days/100B tokens", "speedup",
         "compute s/batch", "comm s/batch"],
        rows, title="Fig. 11 (GLaM 1.2T, 3072 accelerators, 8-bit)")
    chart = bar_chart([bar.label for bar in bars],
                      [bar.speedup_over(reference) for bar in bars],
                      title="speedup over reference", unit="x")
    print_block("Fig. 11: optical communication substrates",
                table + "\n\n" + chart)

    ladder = [bar.speedup_over(reference) for bar in bars]
    assert all(b >= a * 0.999 for a, b in zip(ladder, ladder[1:]))
    assert ladder[-1] > 2.0  # paper: up to ~3.9x
    moe_cut = reference.breakdown.comm_moe / bars[1].breakdown.comm_moe
    assert 3.0 < moe_cut < 12.0  # paper: "reduced by a factor ~6"
    final = bars[-1].breakdown
    assert final.compute_time > 0.75 * final.total
