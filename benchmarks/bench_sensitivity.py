"""Extension bench: sensitivity profile of the Case Study I optimum.

Computes the elasticity of batch time with respect to every hardware
knob for two mappings — the compute-bound optimum (TP intra, DP inter)
and a communication-bound anti-pattern (TP across nodes) — and asserts
that the leverage moves from the compute clock to the inter-node
network, which is the quantitative form of the paper's co-design
narrative.
"""

from conftest import print_block

from repro.core.model import AMPeD
from repro.hardware.catalog import megatron_a100_cluster
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.parallelism.spec import spec_from_totals
from repro.reporting.tables import render_table
from repro.sensitivity.elasticity import sensitivity_profile
from repro.transformer.zoo import MEGATRON_145B

BATCH = 8192


def run_profiles():
    system = megatron_a100_cluster()
    good = AMPeD(model=MEGATRON_145B, system=system,
                 parallelism=spec_from_totals(system, tp=8, dp=128),
                 efficiency=CASE_STUDY_EFFICIENCY)
    bad = AMPeD(model=MEGATRON_145B, system=system,
                parallelism=spec_from_totals(system, tp=64, dp=16),
                efficiency=CASE_STUDY_EFFICIENCY, validate=False)
    return (sensitivity_profile(good, BATCH),
            sensitivity_profile(bad, BATCH))


def test_sensitivity(benchmark):
    good_profile, bad_profile = benchmark.pedantic(run_profiles,
                                                   rounds=1,
                                                   iterations=1)

    good = {e.knob: e.elasticity for e in good_profile}
    bad = {e.knob: e.elasticity for e in bad_profile}
    table = render_table(
        ["knob", "TP-intra/DP-inter (good)", "TP-inter (bad)"],
        [(knob, f"{good[knob]:+.4f}", f"{bad[knob]:+.4f}")
         for knob in sorted(good, key=lambda k: abs(good[k]),
                            reverse=True)],
        title="elasticity of batch time (negative = knob helps)")
    print_block("Sensitivity profiles", table)

    # good mapping: compute clock is the lever
    assert good_profile[0].knob == "compute_frequency"
    # bad mapping: the inter-node network gains leverage
    assert abs(bad["inter_bandwidth"]) > abs(good["inter_bandwidth"])
    # throughput elasticities stay near the homogeneity bound of -1
    for profile in (good, bad):
        total = sum(profile[k] for k in ("compute_frequency",
                                         "nonlinear_throughput",
                                         "intra_bandwidth",
                                         "inter_bandwidth"))
        assert -1.1 < total < -0.9
