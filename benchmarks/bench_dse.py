"""DSE throughput benchmark: collapsed fast path vs per-layer reference.

Unlike the figure/table benchmarks, this one tracks the evaluation
engine itself: it times the Case Study I mapping sweep (Megatron-1T on
the 1024-A100 cluster) through both evaluation paths and asserts the
collapsed path's speedup and exactness, recording the measurement in
``BENCH_dse.json`` at the repo root.

Run it explicitly (it is excluded from tier-1 via the ``perf`` marker):

    PYTHONPATH=src python -m pytest benchmarks/bench_dse.py -m perf -s
    PYTHONPATH=src python benchmarks/bench_dse.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.search.benchmark import run_dse_benchmark, write_bench_json

from conftest import print_block

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_dse.json"

MIN_SPEEDUP = 10.0
MIN_COMPILED_SPEEDUP = 10.0
MAX_REL_ERROR = 1e-9


def _format(payload: dict) -> str:
    reference, fast = payload["reference"], payload["fast"]
    compiled = payload["compiled"]
    return "\n".join([
        f"model           {payload['model']}",
        f"system          {payload['system']}",
        f"mappings        {payload['n_mappings']}",
        f"reference path  {reference['seconds']:.3f} s "
        f"({reference['mappings_per_s']:.0f} mappings/s)",
        f"fast path       {fast['seconds']:.3f} s "
        f"({fast['mappings_per_s']:.0f} mappings/s)",
        f"compiled path   {compiled['seconds']:.3f} s "
        f"({compiled['mappings_per_s']:.0f} mappings/s, "
        f"tables built in {compiled['build_seconds']:.3f} s)",
        f"speedup         {payload['speedup']:.1f}x collapsed, "
        f"{payload['compiled_speedup_vs_fast']:.1f}x compiled vs "
        f"collapsed",
        f"max rel error   {payload['max_rel_error']:.2e}",
        f"explore (top {payload['explore']['n_results']})  "
        f"{payload['explore']['seconds']:.3f} s, best "
        f"{payload['explore']['best_mapping']}",
    ])


@pytest.mark.perf
def test_bench_dse() -> None:
    payload = run_dse_benchmark()
    print_block("DSE throughput: compiled vs collapsed vs per-layer",
                _format(payload))
    write_bench_json(payload, BENCH_JSON)
    assert payload["speedup"] >= MIN_SPEEDUP, (
        f"collapsed path speedup {payload['speedup']:.1f}x below the "
        f"{MIN_SPEEDUP:.0f}x bar")
    assert payload["compiled_speedup_vs_fast"] >= MIN_COMPILED_SPEEDUP, (
        f"compiled path speedup "
        f"{payload['compiled_speedup_vs_fast']:.1f}x over the collapsed "
        f"path is below the {MIN_COMPILED_SPEEDUP:.0f}x bar")
    assert payload["max_rel_error"] <= MAX_REL_ERROR, (
        f"fast/compiled paths diverge from reference: "
        f"{payload['max_rel_error']:.2e}")


if __name__ == "__main__":
    result = run_dse_benchmark()
    print(_format(result))
    written = write_bench_json(result, BENCH_JSON)
    print(f"\nwrote {written}")
    print(json.dumps(result, indent=2))
