"""DSE throughput benchmark: collapsed fast path vs per-layer reference.

Unlike the figure/table benchmarks, this one tracks the evaluation
engine itself: it times the Case Study I mapping sweep (Megatron-1T on
the 1024-A100 cluster) through both evaluation paths and asserts the
collapsed path's speedup and exactness, recording the measurement in
``BENCH_dse.json`` at the repo root.

Run it explicitly (it is excluded from tier-1 via the ``perf`` marker):

    PYTHONPATH=src python -m pytest benchmarks/bench_dse.py -m perf -s
    PYTHONPATH=src python benchmarks/bench_dse.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.search.benchmark import (
    MIN_TRANSPORT_WARMUP_SPEEDUP,
    run_dse_benchmark,
    write_bench_json,
)

from conftest import print_block

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_dse.json"

MIN_SPEEDUP = 10.0
MIN_COMPILED_SPEEDUP = 10.0
MAX_REL_ERROR = 1e-9
#: The vectorized phase must clear 5x the compiled steady-state rate
#: (the tentpole's order-of-magnitude target, derated for CI noise)
#: and the cross-product phase must cover a million-mapping space.
MIN_VECTORIZED_SPEEDUP = 5.0
MIN_CROSSPRODUCT_MAPPINGS = 1_000_000


def _format(payload: dict) -> str:
    reference, fast = payload["reference"], payload["fast"]
    compiled = payload["compiled"]
    return "\n".join([
        f"model           {payload['model']}",
        f"system          {payload['system']}",
        f"mappings        {payload['n_mappings']}",
        f"reference path  {reference['seconds']:.3f} s "
        f"({reference['mappings_per_s']:.0f} mappings/s)",
        f"fast path       {fast['seconds']:.3f} s "
        f"({fast['mappings_per_s']:.0f} mappings/s)",
        f"compiled path   {compiled['seconds']:.3f} s "
        f"({compiled['mappings_per_s']:.0f} mappings/s, "
        f"tables built in {compiled['build_seconds']:.3f} s)",
        f"speedup         {payload['speedup']:.1f}x collapsed, "
        f"{payload['compiled_speedup_vs_fast']:.1f}x compiled vs "
        f"collapsed",
        f"max rel error   {payload['max_rel_error']:.2e}",
        f"explore (top {payload['explore']['n_results']})  "
        f"{payload['explore']['seconds']:.3f} s, best "
        f"{payload['explore']['best_mapping']}",
    ] + _vectorized_lines(payload))


def _vectorized_lines(payload: dict) -> list:
    vectorized = payload.get("vectorized")
    if vectorized is None:
        return ["vectorized      skipped (NumPy unavailable)"]
    lines = [
        f"vectorized      {vectorized['seconds']:.3f} s for "
        f"{vectorized['n_candidates']:,} candidates "
        f"({vectorized['mappings_per_s']:,.0f} mappings/s, "
        f"{payload['vectorized_speedup_vs_compiled']:.1f}x compiled, "
        f"bound in {vectorized['build_seconds']:.3f} s)",
    ]
    cross = payload.get("crossproduct")
    if cross:
        best = cross.get("best") or {}
        lines.append(
            f"crossproduct    {cross['n_mappings']:,} mappings "
            f"({cross['n_models']} models x {cross['n_systems']} "
            f"systems x {cross['n_global_batches']} batches x "
            f"{cross['n_overlap_ratios']} overlaps) in "
            f"{cross['seconds']:.1f} s "
            f"({cross['mappings_per_s']:,.0f}/s), best "
            f"{best.get('mapping')} on {best.get('model')}")
    transport = payload.get("parallel_transport")
    if transport:
        lines.append(
            f"transport       {transport['n_lanes']:,}-lane chunk: "
            f"table warm-up {transport['pickle']['table_seconds']*1e3:.1f} ms "
            f"pickled vs {transport['shm']['table_seconds']*1e3:.2f} ms "
            f"shared ({transport['warmup_speedup']:.0f}x), "
            f"{transport['shm']['bytes']:,} B shipped vs "
            f"{transport['pickle']['bytes']:,} B, bit-exact: "
            f"{transport['bit_exact']}")
    return lines


@pytest.mark.perf
def test_bench_dse() -> None:
    payload = run_dse_benchmark()
    print_block("DSE throughput: compiled vs collapsed vs per-layer",
                _format(payload))
    write_bench_json(payload, BENCH_JSON)
    assert payload["speedup"] >= MIN_SPEEDUP, (
        f"collapsed path speedup {payload['speedup']:.1f}x below the "
        f"{MIN_SPEEDUP:.0f}x bar")
    assert payload["compiled_speedup_vs_fast"] >= MIN_COMPILED_SPEEDUP, (
        f"compiled path speedup "
        f"{payload['compiled_speedup_vs_fast']:.1f}x over the collapsed "
        f"path is below the {MIN_COMPILED_SPEEDUP:.0f}x bar")
    assert payload["max_rel_error"] <= MAX_REL_ERROR, (
        f"fast/compiled paths diverge from reference: "
        f"{payload['max_rel_error']:.2e}")
    if "vectorized" in payload:
        assert payload["vectorized_speedup_vs_compiled"] \
            >= MIN_VECTORIZED_SPEEDUP, (
                f"vectorized speedup "
                f"{payload['vectorized_speedup_vs_compiled']:.1f}x "
                f"over the compiled path is below the "
                f"{MIN_VECTORIZED_SPEEDUP:.0f}x bar")
        assert payload["crossproduct"]["n_mappings"] \
            >= MIN_CROSSPRODUCT_MAPPINGS, (
                f"cross-product phase covered only "
                f"{payload['crossproduct']['n_mappings']:,} mappings, "
                f"below the {MIN_CROSSPRODUCT_MAPPINGS:,} floor")
    transport = payload.get("parallel_transport")
    if transport is not None:
        assert transport["bit_exact"], (
            "shared-memory chunk transport is not bit-exact against "
            "the pickled chunk")
        assert transport["warmup_speedup"] \
            >= MIN_TRANSPORT_WARMUP_SPEEDUP, (
                f"per-worker table warm-up speedup "
                f"{transport['warmup_speedup']:.1f}x is below the "
                f"{MIN_TRANSPORT_WARMUP_SPEEDUP:.0f}x bar")


if __name__ == "__main__":
    result = run_dse_benchmark()
    print(_format(result))
    written = write_bench_json(result, BENCH_JSON)
    print(f"\nwrote {written}")
    print(json.dumps(result, indent=2))
