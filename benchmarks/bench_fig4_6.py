"""Figs. 4-6 bench: Case Study I with tensor parallelism inside nodes.

Regenerates the three inter-node sweeps (TPxPP, TPxDP, PPxDP across
128 nodes; batch sizes 4096/8192/16384) and asserts the paper's
conclusions for the TP-intra half of the design space: growing
inter-node TP is punishing, and the best mappings land at the ~2-4-week
scale the paper reports.
"""

from conftest import print_block

from repro.experiments.casestudy1 import figure4, figure5, figure6
from repro.reporting.tables import render_table


def render_sweep(series) -> str:
    batches = sorted(series.points[0].days)
    rows = [[p.label] + [("n/a" if p.days[b] is None
                          else round(p.days[b], 1)) for b in batches]
            for p in series.points]
    return render_table(["inter split"]
                        + [f"batch {b} (days)" for b in batches],
                        rows, title=series.figure)


def run_all():
    return figure4(), figure5(), figure6()


def test_fig4_6(benchmark):
    fig4, fig5, fig6 = benchmark.pedantic(run_all, rounds=1,
                                          iterations=1)

    print_block("Case Study I: TP intra-node (Figs. 4-6)",
                "\n\n".join(render_sweep(s) for s in (fig4, fig5, fig6)))

    # Fig. 4: scaling up inter-node TP monotonically hurts.
    curve = [p.days[16384] for p in fig4.points
             if p.days[16384] is not None and p.second_degree <= 80]
    assert all(a <= b * 1.001 for a, b in zip(curve, curve[1:]))

    # Pure-TP-inter endpoints are far worse than PP/DP-inter mappings
    # (the paper's ~57 vs ~18-21 days).
    __, best6 = fig6.best(16384)
    tp_heavy = [p.days[16384] for p in fig5.points
                if p.first_degree >= 16 and p.days[16384] is not None]
    assert min(tp_heavy) > 2.0 * best6

    # Best TP-intra mappings land in the paper's ballpark (~18-21 days;
    # shape tolerance 2x).
    assert 9 < best6 < 42

    # conclusion 1: larger batches train the same tokens faster
    __, days_small = fig6.best(4096)
    assert days_small > best6
