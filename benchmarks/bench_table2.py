"""Table II bench: AMPeD vs published Megatron TFLOP/s/GPU.

Regenerates all four rows (145B/310B/530B/1T with their published
(TP, PP, DP) mappings) and asserts the paper's headline claim — max
error within 12% — plus its error pattern (under-prediction growing
with pipeline depth, the R = 1 artifact the paper discusses).
"""

from conftest import print_block

from repro.experiments.table2 import reproduce_table2
from repro.reporting.tables import render_table


def test_table2(benchmark):
    rows, report = benchmark(reproduce_table2)

    table = render_table(
        ["Model", "TP", "PP", "DP", "AMPeD TFLOPs/GPU",
         "Published TFLOPs/GPU", "Error (%)",
         "Paper's own prediction"],
        [(f"{row.point.n_parameters_b:g}B", row.point.tp, row.point.pp,
          row.point.dp, round(row.predicted_tflops, 1),
          row.point.published_tflops, round(row.error_percent, 2),
          row.point.paper_prediction_tflops)
         for row in rows],
        title="Table II")
    print_block("Table II: AMPeD vs published data", table)

    assert report.max_error_percent <= 12.0
    # error grows with pipeline depth (the paper's own pattern)
    assert max(rows[2].error_percent, rows[3].error_percent) \
        > rows[0].error_percent
