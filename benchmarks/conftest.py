"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures: the
``benchmark`` fixture times the evaluation, and the test body prints the
reproduced rows/series (run with ``-s`` to see them inline) and asserts
the qualitative shape the paper reports.
"""

from __future__ import annotations


def print_block(title: str, body: str) -> None:
    """Print a reproduction artifact with a visible banner."""
    banner = "=" * max(len(title), 20)
    print(f"\n{banner}\n{title}\n{banner}\n{body}\n")
