"""Fig. 10 bench: Case Study II — low-end nodes, DP vs PP inter-node.

Regenerates the node-shape sweep (1/2/4/8 accelerators + EDR NICs per
node, 1024 A100s total, Megatron 145B at batch 8192) and asserts the
paper's findings: PP wins when NICs are scarce, DP wins once the node
has enough network, and the PP bubble share sits near the ~11% the
paper quotes with an energy break-even below full power.
"""

from conftest import print_block

from repro.experiments.casestudy2 import energy_comparison, reproduce_fig10
from repro.reporting.tables import render_table


def test_fig10(benchmark):
    results = benchmark(reproduce_fig10)

    rows = [(k, round(v.dp_days, 1), round(v.pp_days, 1), v.winner,
             f"{v.pp_bubble_share:.1%}",
             ("-" if v.energy_breakeven_idle_fraction is None
              else f"{v.energy_breakeven_idle_fraction:.2f}"))
            for k, v in sorted(results.items())]
    table = render_table(
        ["accel+NICs/node", "DP days", "PP days", "winner",
         "PP bubble", "energy break-even idle frac"],
        rows, title="Fig. 10 (Megatron 145B, batch 8192, TP intra)")

    energy = energy_comparison(node_size=4)
    energy_note = (f"energy at 4/node (idle fraction 0.3): "
                   f"DP {energy['dp_kwh']:.0f} kWh vs "
                   f"PP {energy['pp_kwh']:.0f} kWh")
    print_block("Fig. 10: low-end inter-node DP vs PP",
                table + "\n\n" + energy_note)

    assert results[1].winner == "PP"
    assert results[8].winner == "DP"
    winners = [results[k].winner for k in (1, 2, 4, 8)]
    first_dp = winners.index("DP")
    assert all(w == "DP" for w in winners[first_dp:])
    # DP keeps improving with NICs
    dp_days = [results[k].dp_days for k in (1, 2, 4, 8)]
    assert all(a > b for a, b in zip(dp_days, dp_days[1:]))
