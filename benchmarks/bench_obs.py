"""Disabled-tracer overhead guard for the observability instrumentation.

ISSUE 4's budget: with tracing off, the instrumented collapsed
evaluation path must stay within 5% of the fast-path throughput
recorded in ``BENCH_dse.json``.  The benchmark measures the same
Megatron-1T / 1024-A100 workload with the tracer disabled and enabled,
asserts the budget, and records the measurement in ``BENCH_obs.json``.

Run it explicitly (it is excluded from tier-1 via the ``perf`` marker):

    PYTHONPATH=src python -m pytest benchmarks/bench_obs.py -m perf -s
    PYTHONPATH=src python benchmarks/bench_obs.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.benchmark import (
    MAX_OVERHEAD_FRACTION,
    run_obs_benchmark,
    write_obs_bench_json,
)

from conftest import print_block

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_obs.json"
DSE_BASELINE_JSON = REPO_ROOT / "BENCH_dse.json"


def _dse_baseline() -> float:
    return json.loads(DSE_BASELINE_JSON.read_text())["fast"][
        "mappings_per_s"]


def _format(payload: dict) -> str:
    off, on = payload["tracing_off"], payload["tracing_on"]
    baseline = payload["baseline_fast_mappings_per_s"]
    ratio = payload["off_vs_baseline"]
    return "\n".join([
        f"model            {payload['model']}",
        f"system           {payload['system']}",
        f"mappings         {payload['n_mappings']}",
        f"tracing off      {off['seconds']:.3f} s "
        f"({off['mappings_per_s']:.0f} mappings/s)",
        f"tracing on       {on['seconds']:.3f} s "
        f"({on['mappings_per_s']:.0f} mappings/s, "
        f"{on['n_records']} records)",
        f"enabled overhead {payload['enabled_overhead']:.2f}x",
        f"BENCH_dse fast   {baseline:.0f} mappings/s "
        f"(off/baseline = {ratio:.3f})",
    ])


@pytest.mark.perf
def test_bench_obs() -> None:
    payload = run_obs_benchmark(
        baseline_fast_mappings_per_s=_dse_baseline())
    print_block("obs overhead: instrumented collapsed path", _format(payload))
    write_obs_bench_json(payload, BENCH_JSON)
    floor = 1.0 - MAX_OVERHEAD_FRACTION
    assert payload["off_vs_baseline"] >= floor, (
        f"disabled-tracer throughput is "
        f"{payload['off_vs_baseline']:.3f} of the BENCH_dse.json "
        f"fast-path baseline — instrumentation overhead exceeds the "
        f"{MAX_OVERHEAD_FRACTION:.0%} budget")
    assert payload["tracing_on"]["n_records"] > 0


if __name__ == "__main__":
    result = run_obs_benchmark(
        baseline_fast_mappings_per_s=_dse_baseline())
    print(_format(result))
    written = write_obs_bench_json(result, BENCH_JSON)
    print(f"\nwrote {written}")
