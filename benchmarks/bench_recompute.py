"""Extension bench: the activation-recomputation trade-off.

The published Table II runs trained with full activation recomputation
(memory for compute).  This bench quantifies both sides for GPT-3 175B
on a TP=8/PP=8 mapping: stored activations collapse to the per-layer
checkpoints, the maximum feasible microbatch grows accordingly, and the
batch time pays the extra forward pass (compute x4/3).  Asserts the
defining shape and the net effect: on memory-constrained
configurations, recomputation *enables* microbatches that more than pay
for its compute cost.
"""

import dataclasses

from conftest import print_block

from repro.core.model import AMPeD
from repro.hardware.catalog import A100, megatron_a100_cluster
from repro.hardware.precision import MIXED_FP16
from repro.memory.constraints import max_feasible_microbatch
from repro.memory.footprint import estimate_footprint
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.parallelism.spec import spec_from_totals
from repro.reporting.tables import render_table
from repro.transformer.zoo import GPT3_175B

BATCH = 2048


def run_comparison():
    system = megatron_a100_cluster(n_nodes=16)
    spec = spec_from_totals(system, tp=8, pp=8, dp=2,
                            n_microbatches=128)
    base = AMPeD(model=GPT3_175B, system=system, parallelism=spec,
                 efficiency=CASE_STUDY_EFFICIENCY)
    results = {}
    for label, recompute in (("stored", False), ("recompute", True)):
        amped = dataclasses.replace(
            base,
            backward_compute_multiplier=3.0 if recompute else 2.0)
        microbatch = amped.microbatch(BATCH)
        footprint = estimate_footprint(
            GPT3_175B, spec, microbatch, MIXED_FP16,
            recompute_activations=recompute)
        max_ub = max_feasible_microbatch(
            GPT3_175B, spec, MIXED_FP16, A100) if not recompute else \
            _max_ub_recompute(spec)
        results[label] = (amped.estimate_batch(BATCH), footprint,
                          max_ub)
    return results


def _max_ub_recompute(spec):
    """Binary search counterpart with recomputation on."""
    from repro.memory.constraints import DEFAULT_USABLE_FRACTION

    def fits(ub):
        footprint = estimate_footprint(
            GPT3_175B, spec, ub, MIXED_FP16,
            recompute_activations=True)
        return footprint.total \
            <= A100.memory_bytes * DEFAULT_USABLE_FRACTION

    if not fits(1):
        return None
    ub = 1
    while fits(ub * 2) and ub < 1 << 15:
        ub *= 2
    return ub


def test_recompute(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1,
                                 iterations=1)

    rows = [(label,
             f"{footprint.activations / 2**30:.2f} GiB",
             "none" if max_ub is None else str(max_ub),
             f"{breakdown.compute_time:.1f}",
             f"{breakdown.total:.1f}")
            for label, (breakdown, footprint, max_ub)
            in results.items()]
    print_block(
        "Activation recomputation: GPT-3 175B, TP8/PP8/DP2 on "
        "128 A100s",
        render_table(["mode", "stored activations", "max feasible ub",
                      "compute s", "total s"], rows))

    stored_bd, stored_fp, stored_ub = results["stored"]
    rec_bd, rec_fp, rec_ub = results["recompute"]
    # recomputation collapses stored activations by >10x
    assert rec_fp.activations < stored_fp.activations / 10
    # and unlocks much larger microbatches
    assert (stored_ub or 0) < rec_ub
    # at the cost of exactly one extra forward pass of compute
    assert rec_bd.compute_forward == stored_bd.compute_forward
    assert abs(rec_bd.compute_backward
               - 1.5 * stored_bd.compute_backward) \
        < 1e-9 * rec_bd.compute_backward
