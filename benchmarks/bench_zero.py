"""Extension bench: the ZeRO memory/communication trade-off.

ZeRO (§II-B1) trades memory for communication: each stage sheds more
per-rank state and stage 3 pays parameter all-gathers in the forward
and backward passes.  This bench quantifies both sides on a pure-DP
mapping of Megatron 7.5B over 64 A100s, with the explicit ZeRO-3
communication modeling, and asserts the defining shape: memory falls
monotonically with the stage while batch time is flat through stage 2
and rises at stage 3.
"""

from conftest import print_block

from repro.core.model import AMPeD
from repro.core.zero import ZeroConfig
from repro.hardware.catalog import megatron_a100_cluster
from repro.hardware.precision import MIXED_FP16
from repro.memory.footprint import estimate_footprint
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.parallelism.spec import spec_from_totals
from repro.reporting.tables import render_table
from repro.transformer.zoo import get_model

BATCH = 1024
MODEL = get_model("megatron-7.5b")


def run_stages():
    system = megatron_a100_cluster(n_nodes=8)
    spec = spec_from_totals(system, dp=64)
    results = []
    for stage in (0, 1, 2, 3):
        amped = AMPeD(model=MODEL, system=system, parallelism=spec,
                      efficiency=CASE_STUDY_EFFICIENCY,
                      zero=ZeroConfig(stage=stage),
                      zero_explicit_comm=True)
        breakdown = amped.estimate_batch(BATCH)
        footprint = estimate_footprint(
            MODEL, spec, amped.microbatch(BATCH), MIXED_FP16,
            zero=ZeroConfig(stage=stage))
        results.append((stage, breakdown, footprint))
    return results


def test_zero_tradeoff(benchmark):
    results = benchmark.pedantic(run_stages, rounds=1, iterations=1)

    def model_state(footprint):
        return (footprint.parameters + footprint.gradients
                + footprint.optimizer_states)

    rows = [(f"stage {stage}",
             f"{model_state(footprint) / 2**30:.1f} GiB",
             f"{footprint.activations / 2**30:.1f} GiB",
             f"{breakdown.total:.2f}",
             f"{breakdown.comm_zero:.3f}",
             f"{breakdown.comm_gradient:.3f}")
            for stage, breakdown, footprint in results]
    print_block(
        f"ZeRO stages: {MODEL.name}, pure DP=64, batch {BATCH}",
        render_table(["ZeRO", "model state/GPU", "activations/GPU",
                      "s/batch", "zero comm", "grad comm"], rows))

    states = [model_state(footprint) for _, __, footprint in results]
    times = [breakdown.total for _, breakdown, __ in results]
    # model state strictly falls with each stage...
    assert all(a > b for a, b in zip(states, states[1:]))
    # ...by more than an order of magnitude at stage 3 over DP=64
    assert states[0] / states[3] > 10.0
    # stages 0-2 cost the same time; stage 3 pays the gathers
    assert times[0] == times[1] == times[2]
    assert times[3] > times[2]
    # but the stage-3 overhead is modest relative to the memory win
    assert times[3] / times[0] < 1.5
