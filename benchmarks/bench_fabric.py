"""Extension bench: network-fabric oversubscription what-if.

Cluster operators taper fat-tree uplinks to cut cost; this bench
quantifies what the taper does to the Case Study I training time for
the two main inter-node strategies.  The measured shape — asserted
below — is the opposite of the naive intuition: the DP gradient
all-reduce is *less* fabric-sensitive than pipeline parallelism,
because hierarchical sharding cuts its per-NIC volume to
``params / (tp * dp_intra)`` while every PP stage boundary carries the
full per-replica activation tensor.  DP's advantage over PP therefore
*widens* on cheap fabrics, reinforcing Case Study I's conclusion 4 for
tapered networks.
"""

from conftest import print_block

from repro.core.model import AMPeD
from repro.hardware.catalog import megatron_a100_cluster
from repro.network.fabric import apply_fabric, two_level_fat_tree
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.parallelism.spec import spec_from_totals
from repro.reporting.tables import render_table
from repro.search.tuning import optimize_microbatches
from repro.transformer.zoo import MEGATRON_145B

BATCH = 8192
TOKENS = 300e9
OVERSUBSCRIPTIONS = (1.0, 2.0, 4.0, 8.0, 16.0)


def run_sweep():
    base = megatron_a100_cluster()
    results = []
    for ratio in OVERSUBSCRIPTIONS:
        fabric = two_level_fat_tree(
            port_bandwidth_bits_per_s=2e11, nodes_per_leaf=16,
            n_leaves=8, oversubscription=ratio)
        system = apply_fabric(base, fabric)
        dp = AMPeD(model=MEGATRON_145B, system=system,
                   parallelism=spec_from_totals(system, tp=8, dp=128),
                   efficiency=CASE_STUDY_EFFICIENCY)
        pp_spec = spec_from_totals(system, tp=8, pp=64, dp=2)
        pp = AMPeD(model=MEGATRON_145B, system=system,
                   parallelism=pp_spec,
                   efficiency=CASE_STUDY_EFFICIENCY)
        pp, _ = optimize_microbatches(pp, BATCH)
        results.append((
            ratio,
            dp.estimate(BATCH, total_tokens=TOKENS).total_time_days,
            pp.estimate(BATCH, total_tokens=TOKENS).total_time_days,
        ))
    return results


def test_fabric_oversubscription(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = [(f"{ratio:g}:1", f"{dp_days:.1f}", f"{pp_days:.1f}",
             "DP" if dp_days < pp_days else "PP")
            for ratio, dp_days, pp_days in results]
    print_block(
        "Training time vs fat-tree oversubscription (145B, batch 8192)",
        render_table(["oversubscription", "DP-inter days",
                      "PP-inter days", "winner"], rows))

    dp_curve = [dp for _, dp, _ in results]
    pp_curve = [pp for _, _, pp in results]
    # both strategies degrade monotonically with the taper
    assert all(a <= b * 1.001 for a, b in zip(dp_curve, dp_curve[1:]))
    assert all(a <= b * 1.001 for a, b in zip(pp_curve, pp_curve[1:]))
    # the sharded DP all-reduce is LESS fabric-sensitive than PP's
    # full-activation boundary traffic
    dp_swing = dp_curve[-1] / dp_curve[0]
    pp_swing = pp_curve[-1] / pp_curve[0]
    assert dp_swing < pp_swing
    # DP wins on every fabric, and by more as the taper grows
    margins = [pp / dp for _, dp, pp in results]
    assert all(margin > 1.0 for margin in margins)
    assert margins[-1] > margins[0]
