"""Extension bench: achieved efficiency across the Megatron family.

Places every Megatron family member (1.7B - 145B) on 512 A100s with its
best explored (memory-feasible) mapping and reports achieved
TFLOP/s/GPU and MFU.  Asserts the combined-parallelism headline: best
mapping utilization stays within 2x across two decades of model size,
and the large members require model parallelism to fit at all.
"""

from conftest import print_block

from repro.experiments.family_study import run_family_study
from repro.reporting.tables import render_table


def test_family(benchmark):
    points = benchmark.pedantic(run_family_study, rounds=1,
                                iterations=1)

    rows = [(p.model_key, f"{p.n_parameters / 1e9:.1f}B", p.mapping,
             f"{p.tflops_per_gpu:.1f}", f"{p.mfu:.0%}",
             f"{p.batch_time_s:.1f}")
            for p in points]
    print_block(
        "Megatron family on 512 A100s (best memory-feasible mapping, "
        "batch 2048)",
        render_table(["model", "params", "best mapping",
                      "TFLOP/s/GPU", "MFU", "s/batch"], rows))

    tflops = [p.tflops_per_gpu for p in points]
    assert max(tflops) / min(tflops) < 2.0
    assert "PP" in points[-1].mapping  # 145B needs a pipeline
    sizes = [p.n_parameters for p in points]
    assert sizes == sorted(sizes)
