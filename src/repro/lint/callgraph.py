"""Project-wide symbol index and call graph for whole-program analyses.

The per-file rules of :mod:`repro.lint.rules` see one AST at a time;
the dimension-flow and concurrency-safety families of
:mod:`repro.lint.dataflow` need to follow values *across* files: a
``Seconds`` produced in ``core/communication.py`` flows through
``serve/lifecycle.py`` into a handler, and a dict defined at module
level in ``search/vectorized.py`` is mutated from a thread spawned in
``serve/server.py``.  This module builds the shared substrate:

* a :class:`ProjectIndex` over every parsed file — modules by dotted
  name, functions and classes by qualified name, imports resolved to
  their dotted targets (including function-local and relative imports),
* a *lightweight type environment* — class attribute annotations,
  ``self.x = <annotated param>`` assignments in ``__init__`` and
  constructor calls give enough typing to resolve attribute-chained
  method calls like ``self.server.service.submit(...)``,
* a call graph (caller qualname → callee qualnames) with recorded call
  sites, plus reverse-BFS reachability used to decide which functions
  execute on handler threads or pool workers.

Everything here is stdlib-``ast`` only and heuristic by design: an
unresolvable call simply contributes no edge.  Analyses built on top
must only report findings that are justified by *resolved* facts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.engine import FileContext

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def module_name_for(path: str) -> str:
    """Dotted module name for ``path``, walking up through packages.

    ``src/repro/core/compute.py`` → ``repro.core.compute`` as long as
    each parent directory carries an ``__init__.py``.  A file outside
    any package is addressed by its stem alone.
    """
    resolved = Path(path).resolve()
    parts: List[str] = [] if resolved.name == "__init__.py" \
        else [resolved.stem]
    current = resolved.parent
    while (current / "__init__.py").exists():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    return ".".join(parts) if parts else resolved.stem


def trailing_name(node: Optional[ast.AST]) -> Optional[str]:
    """The final identifier of a ``Name``/``Attribute``/string node."""
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.rsplit(".", 1)[-1].rsplit("[", 1)[0]
    return None


def unwrap_annotation(node: Optional[ast.AST]) -> Optional[str]:
    """The payload type name of an annotation, unwrapping ``Optional``.

    ``Optional[EstimationService]`` → ``EstimationService``;
    ``"CircuitBreaker"`` (string forward reference) →
    ``CircuitBreaker``; subscripted containers (``List[int]``) resolve
    to ``None`` — element types are beyond this analysis.
    """
    if node is None:
        return None
    if isinstance(node, ast.Subscript):
        head = trailing_name(node.value)
        if head in ("Optional",):
            return unwrap_annotation(node.slice)
        return None
    return trailing_name(node)


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str
    module: "ModuleInfo"
    node: FunctionNode
    #: Owning class qualname for methods, else ``None``.
    class_qualname: Optional[str] = None
    #: Enclosing function qualname for nested defs, else ``None``.
    parent: Optional[str] = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_method(self) -> bool:
        return self.class_qualname is not None

    @property
    def is_nested(self) -> bool:
        return self.parent is not None

    def positional_params(self) -> List[ast.arg]:
        args = self.node.args
        return list(args.posonlyargs) + list(args.args)

    def param_annotation(self, name: str) -> Optional[ast.AST]:
        for arg in (self.positional_params()
                    + list(self.node.args.kwonlyargs)):
            if arg.arg == name:
                return arg.annotation
        return None


@dataclass
class ClassInfo:
    """One class definition plus its lightweight attribute typing."""

    qualname: str
    module: "ModuleInfo"
    node: ast.ClassDef
    #: Trailing identifiers of base-class expressions.
    base_names: List[str] = field(default_factory=list)
    #: Resolved dotted names of project-internal bases.
    base_qualnames: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Attribute name → trailing type name (from class-body
    #: annotations, annotated ``self.x`` assignments, ``self.x =
    #: <annotated param>`` and ``self.x = ClassName(...)``).
    attr_types: Dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ModuleInfo:
    """One parsed module: imports, top-level bindings, defs."""

    name: str
    context: FileContext
    #: Local name → dotted import target (``f`` → ``repro.units.f``
    #: for ``from repro.units import f``; ``np`` → ``numpy`` for
    #: ``import numpy as np``).
    imports: Dict[str, str] = field(default_factory=dict)
    #: Module-qualified local name (``f``, ``C.m``) → function.
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: Module-level name → the last value expression assigned to it.
    module_assigns: Dict[str, ast.AST] = field(default_factory=dict)


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge with its source location."""

    caller: str
    callee: str
    node: ast.Call


class ProjectIndex:
    """Symbol tables + call graph over a set of parsed files."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: Trailing class name → candidate classes (for annotation
        #: resolution when the defining module is not importable).
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        #: caller qualname → callee qualnames.
        self.edges: Dict[str, Set[str]] = {}
        self.call_sites: List[CallSite] = []

    # -- construction -------------------------------------------------

    @classmethod
    def build(cls, contexts: Sequence[FileContext]) -> "ProjectIndex":
        index = cls()
        for context in contexts:
            index._index_module(context)
        for info in list(index.functions.values()):
            index._link_calls(info)
        return index

    def _index_module(self, context: FileContext) -> None:
        module = ModuleInfo(name=module_name_for(context.path),
                            context=context)
        self.modules[module.name] = module
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    module.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(module.name, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.imports[local] = f"{base}.{alias.name}" \
                        if base else alias.name
        for statement in context.tree.body:
            self._index_statement(module, statement, prefix="",
                                  class_info=None)

    @staticmethod
    def _import_base(module_name: str,
                     node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module or ""
        parts = module_name.split(".")
        if node.level > len(parts):
            return None
        base_parts = parts[:len(parts) - node.level]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts)

    def _index_statement(self, module: ModuleInfo, statement: ast.stmt,
                         prefix: str,
                         class_info: Optional[ClassInfo],
                         parent: Optional[str] = None) -> None:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            local = f"{prefix}{statement.name}"
            qualname = f"{module.name}.{local}"
            info = FunctionInfo(
                qualname=qualname, module=module, node=statement,
                class_qualname=class_info.qualname if class_info
                else None,
                parent=parent)
            module.functions[local] = info
            self.functions[qualname] = info
            if class_info is not None:
                class_info.methods[statement.name] = info
                self._harvest_attr_types(class_info, info)
            for child in statement.body:
                self._index_statement(module, child,
                                      prefix=f"{local}.",
                                      class_info=None, parent=qualname)
        elif isinstance(statement, ast.ClassDef):
            local = f"{prefix}{statement.name}"
            qualname = f"{module.name}.{local}"
            info = ClassInfo(qualname=qualname, module=module,
                             node=statement)
            for base in statement.bases:
                name = trailing_name(base)
                if name is not None:
                    info.base_names.append(name)
                resolved = self.resolve_symbol(module, base)
                if resolved is not None:
                    info.base_qualnames.append(resolved)
            module.classes[local] = info
            self.classes[qualname] = info
            self.classes_by_name.setdefault(statement.name,
                                            []).append(info)
            for child in statement.body:
                if isinstance(child, ast.AnnAssign) and \
                        isinstance(child.target, ast.Name):
                    annotated = unwrap_annotation(child.annotation)
                    if annotated is not None:
                        info.attr_types[child.target.id] = annotated
                self._index_statement(module, child,
                                      prefix=f"{local}.",
                                      class_info=info, parent=parent)
        elif prefix == "":
            # Module-level bindings only (class/function bodies are
            # covered by attr_types / local analysis respectively).
            if isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        module.module_assigns[target.id] = \
                            statement.value
            elif isinstance(statement, ast.AnnAssign) and \
                    isinstance(statement.target, ast.Name) and \
                    statement.value is not None:
                module.module_assigns[statement.target.id] = \
                    statement.value

    def _harvest_attr_types(self, class_info: ClassInfo,
                            method: FunctionInfo) -> None:
        """Type ``self.x`` attributes from assignments in a method."""
        for node in ast.walk(method.node):
            target: Optional[ast.Attribute] = None
            value: Optional[ast.AST] = None
            annotation: Optional[ast.AST] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Attribute):
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Attribute):
                target, value = node.target, node.value
                annotation = node.annotation
            if target is None or not (
                    isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            attr = target.attr
            typed = unwrap_annotation(annotation)
            if typed is None and isinstance(value, ast.Call):
                callee = trailing_name(value.func)
                if callee is not None and callee[:1].isupper():
                    typed = callee
            if typed is None and isinstance(value, ast.Name):
                typed = unwrap_annotation(
                    method.param_annotation(value.id))
            if typed is not None and attr not in class_info.attr_types:
                class_info.attr_types[attr] = typed

    # -- symbol resolution --------------------------------------------

    def resolve_symbol(self, module: ModuleInfo,
                       node: ast.AST) -> Optional[str]:
        """Dotted target of a ``Name``/``Attribute`` expression, using
        the module's import map (``units.Seconds`` →
        ``repro.units.Seconds``)."""
        if isinstance(node, ast.Name):
            if node.id in module.imports:
                return module.imports[node.id]
            if node.id in module.functions or node.id in module.classes:
                return f"{module.name}.{node.id}"
            return None
        if isinstance(node, ast.Attribute):
            base = self.resolve_symbol(module, node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def function_for(self, dotted: Optional[str]
                     ) -> Optional[FunctionInfo]:
        """Look a dotted name up as a project function, tolerating the
        ``module.Class.method`` and re-export spellings."""
        if dotted is None:
            return None
        if dotted in self.functions:
            return self.functions[dotted]
        # A constructor call edge lands on ``__init__``.
        constructed = self.classes.get(dotted)
        if constructed is not None:
            return self.lookup_method(constructed, "__init__")
        # ``from repro.serve.lifecycle import EstimationService`` makes
        # ``EstimationService.submit`` resolvable through the class map.
        head, __, method = dotted.rpartition(".")
        class_info = self.classes.get(head)
        if class_info is not None:
            return self.lookup_method(class_info, method)
        return None

    def class_for(self, name: Optional[str],
                  module: Optional[ModuleInfo] = None
                  ) -> Optional[ClassInfo]:
        """A class by dotted qualname or (uniquely) trailing name."""
        if name is None:
            return None
        if name in self.classes:
            return self.classes[name]
        if module is not None:
            resolved = module.imports.get(name)
            if resolved is not None and resolved in self.classes:
                return self.classes[resolved]
            local = module.classes.get(name)
            if local is not None:
                return local
        candidates = self.classes_by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def lookup_method(self, class_info: ClassInfo,
                      method: str) -> Optional[FunctionInfo]:
        """Find ``method`` on ``class_info`` or its project bases."""
        seen: Set[str] = set()
        stack = [class_info]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if method in current.methods:
                return current.methods[method]
            for base in current.base_qualnames:
                base_class = self.classes.get(base)
                if base_class is not None:
                    stack.append(base_class)
        return None

    def mro_base_names(self, class_info: ClassInfo) -> Set[str]:
        """Trailing base-class names over the project-visible MRO."""
        names: Set[str] = set()
        seen: Set[str] = set()
        stack = [class_info]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            names.update(current.base_names)
            for base in current.base_qualnames:
                base_class = self.classes.get(base)
                if base_class is not None:
                    stack.append(base_class)
        return names

    # -- lightweight expression typing --------------------------------

    def local_types_for(self, info: FunctionInfo) -> Dict[str, str]:
        """Flow-insensitive local-variable typing for one function.

        A local is typed when it is annotated, assigned a constructor
        call, assigned from a call whose return annotation names a
        project class, or assigned a typed attribute chain.  Two
        passes propagate one level of chaining (``service =
        self.server.service``).
        """
        types: Dict[str, str] = {}
        for arg in (info.positional_params()
                    + list(info.node.args.kwonlyargs)):
            typed = unwrap_annotation(arg.annotation)
            if typed is not None:
                types[arg.arg] = typed
        for _pass in range(2):
            for node in ast.walk(info.node):
                name: Optional[str] = None
                value: Optional[ast.AST] = None
                if isinstance(node, ast.Assign) and \
                        len(node.targets) == 1 and \
                        isinstance(node.targets[0], ast.Name):
                    name, value = node.targets[0].id, node.value
                elif isinstance(node, ast.AnnAssign) and \
                        isinstance(node.target, ast.Name):
                    annotated = unwrap_annotation(node.annotation)
                    if annotated is not None:
                        types[node.target.id] = annotated
                    continue
                if name is None or value is None:
                    continue
                typed = self.infer_type(value, info, types)
                if typed is not None:
                    types[name] = typed
        return types

    def infer_type(self, node: ast.AST, info: FunctionInfo,
                   local_types: Dict[str, str]) -> Optional[str]:
        """Trailing class name of ``node``'s value, if derivable."""
        if isinstance(node, ast.Name):
            if node.id == "self" and info.class_qualname is not None:
                return self.classes[info.class_qualname].name
            return local_types.get(node.id)
        if isinstance(node, ast.Attribute):
            owner = self.infer_type(node.value, info, local_types)
            owner_class = self.class_for(owner, info.module)
            if owner_class is None:
                return None
            attr_type = self._attr_type(owner_class, node.attr)
            return attr_type
        if isinstance(node, ast.Call):
            callee = trailing_name(node.func)
            if callee is not None and self.class_for(
                    callee, info.module) is not None:
                return callee
            resolved = self.resolve_callee(info, node, local_types)
            if resolved is not None:
                target = self.function_for(resolved)
                if target is not None:
                    return unwrap_annotation(target.node.returns)
            if callee is not None and callee[:1].isupper():
                # External constructor (ProcessPoolExecutor, Thread,
                # ...): type by class name even though the class body
                # itself is outside the project index.
                return callee
        return None

    def _attr_type(self, class_info: ClassInfo,
                   attr: str) -> Optional[str]:
        seen: Set[str] = set()
        stack = [class_info]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if attr in current.attr_types:
                return current.attr_types[attr]
            for base in current.base_qualnames:
                base_class = self.classes.get(base)
                if base_class is not None:
                    stack.append(base_class)
        return None

    # -- call resolution ----------------------------------------------

    def resolve_callee(self, info: FunctionInfo, node: ast.Call,
                       local_types: Optional[Dict[str, str]] = None
                       ) -> Optional[str]:
        """Qualified name of the function a call lands on, or ``None``."""
        return self.resolve_func_expr(info, node.func, local_types)

    def resolve_func_expr(self, info: FunctionInfo, func: ast.AST,
                          local_types: Optional[Dict[str, str]] = None
                          ) -> Optional[str]:
        """Resolve a bare function-valued expression — a callee, a
        ``Thread(target=...)`` argument, a pool-``submit`` payload —
        to a dotted name, or ``None``."""
        module = info.module
        if local_types is None:
            local_types = {}
        if isinstance(func, ast.Name):
            # Nested function in the enclosing scope chain?
            scope: Optional[FunctionInfo] = info
            while scope is not None:
                local = scope.qualname[len(module.name) + 1:]
                candidate = module.functions.get(f"{local}.{func.id}")
                if candidate is not None:
                    return candidate.qualname
                scope = self.functions.get(scope.parent or "")
            resolved = self.resolve_symbol(module, func)
            return resolved
        if isinstance(func, ast.Attribute):
            # self.method() / typed-receiver method calls.
            receiver_type = self.infer_type(func.value, info,
                                            local_types)
            receiver_class = self.class_for(receiver_type, module)
            if receiver_class is not None:
                method = self.lookup_method(receiver_class, func.attr)
                if method is not None:
                    return method.qualname
            resolved = self.resolve_symbol(module, func)
            if resolved is not None:
                return resolved
        return None

    def _link_calls(self, info: FunctionInfo) -> None:
        local_types = self.local_types_for(info)
        edges = self.edges.setdefault(info.qualname, set())
        for node in self.own_nodes(info):
            if not isinstance(node, ast.Call):
                continue
            callee = self.resolve_callee(info, node, local_types)
            target = self.function_for(callee)
            if target is None:
                continue
            edges.add(target.qualname)
            self.call_sites.append(CallSite(
                caller=info.qualname, callee=target.qualname,
                node=node))

    def own_nodes(self, info: FunctionInfo) -> Iterator[ast.AST]:
        """Walk a function's body without descending into nested
        defs (they are linked as their own callers), but *including*
        lambda bodies — a lambda runs in its definer's context as far
        as these analyses care."""
        stack: List[ast.AST] = list(info.node.body)
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    continue
                stack.append(child)

    # -- reachability -------------------------------------------------

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Every function reachable over call edges from ``roots``."""
        seen: Set[str] = set()
        stack = [root for root in roots]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        return seen


def body_and_nested(node: FunctionNode) -> Iterator[ast.AST]:
    """Every node inside a function including nested defs."""
    for child in ast.walk(node):
        if child is not node:
            yield child


__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "body_and_nested",
    "module_name_for",
    "trailing_name",
    "unwrap_annotation",
]
