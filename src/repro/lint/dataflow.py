"""Whole-program dataflow rules: dimension flow + concurrency safety.

Two rule families run over the :class:`~repro.lint.callgraph.ProjectIndex`
instead of one file at a time:

**Dimension flow (AMP10x)** — an abstract interpretation over the unit
domain ``{unknown, scalar, dim(u)}``.  Units are seeded from the
``Dim``-tagged aliases of :mod:`repro.units` (``Seconds`` → ``s``),
from canonical name suffixes (``deadline_s``, ``size_bits``) and from
the conversion-helper table (``seconds_to_days`` consumes ``s`` and
produces ``day``), then propagated through assignments, arithmetic,
returns and resolved call sites:

========  ==========================================================
AMP101    addition/subtraction of two *different* known dimensions
AMP102    ``Dim``-annotated function whose return flow carries a
          different dimension than the annotation promises
AMP103    conversion helper applied to a value already carrying its
          output unit (applied twice) or a different input unit
AMP104    unannotated public parameter that demonstrably receives one
          agreed dimension at two or more resolved call sites
========  ==========================================================

The domain is optimistic: ``unknown`` never participates in a finding,
so every report is justified by *resolved* facts, never by the absence
of information.

**Concurrency safety (AMP20x)** — thread roots (``ThreadingHTTPServer``
handler methods, ``threading.Thread`` targets, thread-pool submissions)
and process roots (``ProcessPoolExecutor`` payloads and initializers)
are discovered from the call graph, and everything reachable from them
is checked:

========  ==========================================================
AMP201    module-level mutable state mutated from a thread context
          without an enclosing lock
AMP202    non-picklable payload shipped to a process pool (lambda,
          nested function, bound method)
AMP203    fork-unsafety: files/sockets opened at module import, or a
          module-level lock used by process-pool worker code without
          an ``os.register_at_fork`` reset
AMP204    instance attribute written from a thread context without a
          lock while other code reads it
========  ==========================================================

Both families report through the per-file suppression contract of
:mod:`repro.lint.engine` (``# amplint: disable=AMP201 — why``), run via
``amped-lint --flow``, and stay stdlib-``ast`` only.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.callgraph import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    trailing_name,
)
from repro.lint.engine import FileContext, Violation


@dataclass(frozen=True)
class FlowRule:
    """Catalogue entry for one whole-program rule."""

    rule_id: str
    name: str
    summary: str


FLOW_RULES: Tuple[FlowRule, ...] = (
    FlowRule("AMP101", "dim-mismatch-add",
             "addition/subtraction of two different known dimensions"),
    FlowRule("AMP102", "dim-return-drift",
             "Dim-annotated function whose return flow carries a "
             "different dimension"),
    FlowRule("AMP103", "double-conversion",
             "unit conversion applied to a value already carrying the "
             "wrong (or already-converted) unit"),
    FlowRule("AMP104", "unannotated-dim-param",
             "public parameter that demonstrably receives one agreed "
             "dimension but is not annotated with it"),
    FlowRule("AMP201", "unlocked-global-mutation",
             "module-level mutable state mutated from a thread context "
             "without a lock"),
    FlowRule("AMP202", "unpicklable-pool-payload",
             "lambda/nested-function/bound-method shipped to a process "
             "pool"),
    FlowRule("AMP203", "fork-unsafe-capture",
             "file/socket opened at module import, or module-level "
             "lock used in process-pool workers without an at-fork "
             "reset"),
    FlowRule("AMP204", "unlocked-attribute-write",
             "instance attribute written from a thread context without "
             "a lock while read elsewhere"),
)


def flow_rule_ids() -> List[str]:
    """Stable-ordered ids of every whole-program rule."""
    return [rule.rule_id for rule in FLOW_RULES]


# ---------------------------------------------------------------------------
# Abstract unit domain
# ---------------------------------------------------------------------------

_UNKNOWN = "unknown"
_SCALAR = "scalar"
_DIM = "dim"


@dataclass(frozen=True)
class AbstractUnit:
    """One point of the unit lattice: unknown, dimensionless, or a
    concrete dimension like ``s`` / ``bit`` / ``FLOP/s``."""

    kind: str
    unit: str = ""

    @property
    def is_dim(self) -> bool:
        return self.kind == _DIM


UNKNOWN = AbstractUnit(_UNKNOWN)
SCALAR = AbstractUnit(_SCALAR)


def dim(unit: str) -> AbstractUnit:
    return AbstractUnit(_DIM, unit)


def join(left: AbstractUnit, right: AbstractUnit) -> AbstractUnit:
    """Pessimistic merge: anything short of agreement is unknown."""
    if left == right:
        return left
    return UNKNOWN


#: ``Dim``-tagged alias name → canonical unit string (repro.units).
ALIAS_UNITS: Dict[str, str] = {
    "Seconds": "s",
    "Bits": "bit",
    "Bytes": "byte",
    "BitsPerSecond": "bit/s",
    "Flops": "FLOP",
    "FlopsPerSecond": "FLOP/s",
    "Watts": "W",
}

#: Name suffixes that canonically carry a unit, longest first so
#: ``_bits_per_s`` wins over ``_s``.
_SUFFIX_UNITS: Tuple[Tuple[str, str], ...] = (
    ("_bits_per_s", "bit/s"),
    ("_bits_per_second", "bit/s"),
    ("_flops_per_s", "FLOP/s"),
    ("_flops_per_second", "FLOP/s"),
    ("_microseconds", "us"),
    ("_milliseconds", "ms"),
    ("_seconds", "s"),
    ("_minutes", "min"),
    ("_hours", "hour"),
    ("_days", "day"),
    ("_bytes", "byte"),
    ("_bits", "bit"),
    ("_flops", "FLOP"),
    ("_watts", "W"),
    ("_bps", "bit/s"),
    ("_us", "us"),
    ("_ms", "ms"),
    ("_ns", "ns"),
    ("_s", "s"),
)

#: Bare names that are themselves unit-bearing (``seconds`` the
#: parameter of ``seconds_to_days``).
_EXACT_NAME_UNITS: Dict[str, str] = {
    "seconds": "s",
    "days": "day",
    "hours": "hour",
    "n_bits": "bit",
    "n_bytes": "byte",
    "flops": "FLOP",
    "flops_per_second": "FLOP/s",
    "watts": "W",
}

#: repro.units conversion helper → (input unit, output unit).
CONVERSIONS: Dict[str, Tuple[str, str]] = {
    "seconds_to_days": ("s", "day"),
    "days_to_seconds": ("day", "s"),
    "seconds_to_hours": ("s", "hour"),
    "seconds_to_microseconds": ("s", "us"),
    "bytes_to_bits": ("byte", "bit"),
    "bits_to_bytes": ("bit", "byte"),
    "gbps_to_bits_per_second": ("Gbit/s", "bit/s"),
    "gbytes_per_second_to_bits_per_second": ("GB/s", "bit/s"),
    "teraflops": ("TFLOP/s", "FLOP/s"),
    "to_teraflops": ("FLOP/s", "TFLOP/s"),
}

#: ``dim / dim`` quotients with a known result dimension.
_QUOTIENTS: Dict[Tuple[str, str], str] = {
    ("bit", "bit/s"): "s",
    ("byte", "byte/s"): "s",
    ("FLOP", "FLOP/s"): "s",
    ("bit", "s"): "bit/s",
    ("FLOP", "s"): "FLOP/s",
}

#: ``dim * dim`` products with a known result dimension.
_PRODUCTS: Dict[Tuple[str, str], str] = {
    ("bit/s", "s"): "bit",
    ("FLOP/s", "s"): "FLOP",
}

#: Builtins that return their (joined) numeric argument unchanged.
_UNIT_PRESERVING_BUILTINS = {"abs", "float", "round", "min", "max",
                             "sum"}


def suffix_unit(name: Optional[str]) -> Optional[str]:
    """The unit a variable/attribute name canonically carries."""
    if name is None:
        return None
    if name in _EXACT_NAME_UNITS:
        return _EXACT_NAME_UNITS[name]
    for suffix, unit in _SUFFIX_UNITS:
        if name.endswith(suffix) and len(name) > len(suffix):
            return unit
    return None


def annotation_unit(node: Optional[ast.AST]) -> Optional[str]:
    """The unit a ``Dim``-alias annotation carries, if any."""
    name = trailing_name(node)
    if name is None:
        return None
    return ALIAS_UNITS.get(name)


# ---------------------------------------------------------------------------
# Reporting through the per-file suppression contract
# ---------------------------------------------------------------------------


class _Reporter:
    """Collects flow violations, honoring per-file suppressions and
    the ``--select``/``--ignore`` filters."""

    def __init__(self, active: Set[str]) -> None:
        self.active = active
        self.violations: List[Violation] = []

    def wants(self, rule_id: str) -> bool:
        return rule_id in self.active

    def emit(self, rule_id: str, context: FileContext, node: ast.AST,
             message: str) -> None:
        if rule_id not in self.active:
            return
        violation = context.violation(rule_id, node, message)
        if not context.is_suppressed(rule_id, violation.line):
            self.violations.append(violation)


# ---------------------------------------------------------------------------
# Dimension-flow analysis (AMP101-AMP104)
# ---------------------------------------------------------------------------

#: Call-site record feeding AMP104: (callee qualname, parameter name)
#: → list of (caller, call node, abstract unit of the argument).
_ArgRecord = Tuple[FunctionInfo, ast.Call, AbstractUnit]


class UnitAnalysis:
    """Seed → propagate → report over the abstract unit domain."""

    def __init__(self, index: ProjectIndex,
                 reporter: _Reporter) -> None:
        self.index = index
        self.reporter = reporter
        #: Function qualname → abstract unit of its return value.
        self.summaries: Dict[str, AbstractUnit] = {}
        self.arg_records: Dict[Tuple[str, str], List[_ArgRecord]] = {}

    def run(self) -> None:
        self._seed_summaries()
        # Two silent propagation rounds let suffix/annotation facts
        # chain through one level of unannotated helpers.
        for _round in range(2):
            for info in self.index.functions.values():
                if info.qualname in self.summaries:
                    continue
                evaluator = _FunctionEvaluator(self, info, report=False)
                evaluator.run()
                summary = self._returns_summary(evaluator)
                if summary is not None:
                    self.summaries[info.qualname] = summary
        # Reporting round: AMP101/AMP103 fire inline, AMP102 on the
        # collected returns, AMP104 from the call-site records.
        for info in self.index.functions.values():
            evaluator = _FunctionEvaluator(self, info, report=True)
            evaluator.run()
            self._check_return_drift(info, evaluator)
        self._check_unannotated_params()

    # -- summaries ----------------------------------------------------

    def _seed_summaries(self) -> None:
        for qualname, info in self.index.functions.items():
            annotated = annotation_unit(info.node.returns)
            if annotated is not None:
                self.summaries[qualname] = dim(annotated)
                continue
            if info.module.name == "repro.units" \
                    and info.name in CONVERSIONS:
                self.summaries[qualname] = dim(CONVERSIONS[info.name][1])
                continue
            named = suffix_unit(info.name)
            if named is not None and not info.is_method:
                self.summaries[qualname] = dim(named)

    @staticmethod
    def _returns_summary(evaluator: "_FunctionEvaluator"
                         ) -> Optional[AbstractUnit]:
        units = [unit for _node, unit in evaluator.returns
                 if unit.is_dim]
        if not units:
            return None
        first = units[0]
        if all(unit == first for unit in units[1:]):
            return first
        return None

    # -- AMP102 -------------------------------------------------------

    def _check_return_drift(self, info: FunctionInfo,
                            evaluator: "_FunctionEvaluator") -> None:
        expected = annotation_unit(info.node.returns)
        if expected is None or not self.reporter.wants("AMP102"):
            return
        alias = trailing_name(info.node.returns)
        for node, unit in evaluator.returns:
            if unit.is_dim and unit.unit != expected:
                self.reporter.emit(
                    "AMP102", info.module.context, node,
                    f"function {info.name!r} is annotated -> {alias} "
                    f"({expected!r}) but this return flow carries "
                    f"{unit.unit!r}; the declared dimension is lost at "
                    f"every call site")

    # -- AMP104 -------------------------------------------------------

    def record_argument(self, callee: FunctionInfo, param: ast.arg,
                        caller: FunctionInfo, node: ast.Call,
                        unit: AbstractUnit) -> None:
        if not unit.is_dim:
            return
        key = (callee.qualname, param.arg)
        self.arg_records.setdefault(key, []).append(
            (caller, node, unit))

    def _check_unannotated_params(self) -> None:
        if not self.reporter.wants("AMP104"):
            return
        for (qualname, param_name), records in \
                sorted(self.arg_records.items()):
            info = self.index.functions.get(qualname)
            if info is None or len(records) < 2:
                continue
            units = {unit.unit for _caller, _node, unit in records}
            if len(units) != 1:
                continue  # conflicting evidence: not demonstrable
            unit = units.pop()
            if not self._param_flaggable(info, param_name):
                continue
            self.reporter.emit(
                "AMP104", info.module.context, info.node,
                f"public parameter {param_name!r} of {info.name!r} "
                f"receives {unit!r} values at {len(records)} resolved "
                f"call sites but carries no Dim annotation or unit "
                f"suffix; annotate it (e.g. repro.units aliases) so "
                f"the dimension is checkable")

    def _param_flaggable(self, info: FunctionInfo,
                         param_name: str) -> bool:
        if info.name.startswith("_") or info.is_nested:
            return False
        if info.module.name.startswith("repro.units"):
            return False  # conversion helpers take raw floats by design
        annotation = info.param_annotation(param_name)
        if annotation is None:
            return True
        if annotation_unit(annotation) is not None:
            return False
        if suffix_unit(param_name) is not None:
            return False
        return trailing_name(annotation) == "float"

    # -- call typing shared with the evaluator ------------------------

    def conversion_for(self, info: FunctionInfo, node: ast.Call,
                       resolved: Optional[str]
                       ) -> Optional[Tuple[str, str, str]]:
        """``(name, input unit, output unit)`` when the call is a
        registered repro.units conversion helper."""
        name = trailing_name(node.func)
        if name is None or name not in CONVERSIONS:
            return None
        if resolved is not None and \
                resolved != f"repro.units.{name}":
            return None  # shadowed by an unrelated local definition
        source, target = CONVERSIONS[name]
        return name, source, target


class _FunctionEvaluator:
    """Abstract interpretation of one function body."""

    def __init__(self, analysis: UnitAnalysis, info: FunctionInfo,
                 report: bool) -> None:
        self.analysis = analysis
        self.index = analysis.index
        self.info = info
        self.report = report
        self.local_types = self.index.local_types_for(info)
        self.returns: List[Tuple[ast.AST, AbstractUnit]] = []
        self.env: Dict[str, AbstractUnit] = {}
        for arg in (info.positional_params()
                    + list(info.node.args.kwonlyargs)):
            annotated = annotation_unit(arg.annotation)
            if annotated is not None:
                self.env[arg.arg] = dim(annotated)
                continue
            named = suffix_unit(arg.arg)
            if named is not None:
                self.env[arg.arg] = dim(named)

    def run(self) -> None:
        self._eval_statements(self.info.node.body)

    # -- statements ---------------------------------------------------

    def _eval_statements(self, body: Sequence[ast.stmt]) -> None:
        for statement in body:
            self._eval_statement(statement)

    def _eval_statement(self, statement: ast.stmt) -> None:
        if isinstance(statement, (ast.FunctionDef,
                                  ast.AsyncFunctionDef,
                                  ast.ClassDef)):
            return  # nested defs evaluate as their own functions
        if isinstance(statement, ast.Assign):
            value = self.eval(statement.value)
            for target in statement.targets:
                self._bind(target, value)
            return
        if isinstance(statement, ast.AnnAssign):
            annotated = annotation_unit(statement.annotation)
            value = (self.eval(statement.value)
                     if statement.value is not None else UNKNOWN)
            if annotated is not None:
                value = dim(annotated)
            self._bind(statement.target, value)
            return
        if isinstance(statement, ast.AugAssign):
            left = self.eval(statement.target)
            right = self.eval(statement.value)
            combined = self._combine(statement, statement.op,
                                     left, right)
            self._bind(statement.target, combined)
            return
        if isinstance(statement, ast.Return):
            if statement.value is not None:
                self.returns.append(
                    (statement, self.eval(statement.value)))
            return
        # Control flow: evaluate guards/iterables for their inline
        # checks, then fall through every branch with a shared,
        # flow-insensitive environment.
        for child in ast.iter_child_nodes(statement):
            if isinstance(child, ast.stmt):
                self._eval_statement(child)
            elif isinstance(child, ast.ExceptHandler):
                self._eval_statements(child.body)
            elif isinstance(child, ast.withitem):
                self.eval(child.context_expr)
            elif isinstance(child, ast.expr):
                self.eval(child)

    def _bind(self, target: ast.AST, value: AbstractUnit) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, UNKNOWN)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self.eval(target.value)

    # -- expressions --------------------------------------------------

    def eval(self, node: ast.AST) -> AbstractUnit:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return SCALAR
            if isinstance(node.value, (int, float)):
                return SCALAR
            return UNKNOWN
        if isinstance(node, ast.Name):
            known = self.env.get(node.id)
            if known is not None and known is not UNKNOWN:
                return known
            named = suffix_unit(node.id)
            return dim(named) if named is not None else UNKNOWN
        if isinstance(node, ast.Attribute):
            self.eval(node.value)
            named = suffix_unit(node.attr)
            return dim(named) if named is not None else UNKNOWN
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left)
            right = self.eval(node.right)
            return self._combine(node, node.op, left, right)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return join(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, ast.BoolOp):
            units = [self.eval(value) for value in node.values]
            result = units[0]
            for unit in units[1:]:
                result = join(result, unit)
            return result
        if isinstance(node, ast.Compare):
            self.eval(node.left)
            for comparator in node.comparators:
                self.eval(comparator)
            return SCALAR
        if isinstance(node, ast.Lambda):
            self.eval(node.body)
            return UNKNOWN
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        # Containers, comprehensions, f-strings, subscripts, ...:
        # evaluate children for their inline checks, value unknown.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)
            elif isinstance(child, ast.comprehension):
                self.eval(child.iter)
                for condition in child.ifs:
                    self.eval(condition)
        return UNKNOWN

    def _combine(self, node: ast.AST, op: ast.operator,
                 left: AbstractUnit, right: AbstractUnit
                 ) -> AbstractUnit:
        if isinstance(op, (ast.Add, ast.Sub)):
            if left.is_dim and right.is_dim:
                if left.unit != right.unit:
                    if self.report:
                        self.analysis.reporter.emit(
                            "AMP101", self.info.module.context, node,
                            f"adding {left.unit!r} to {right.unit!r}; "
                            f"these dimensions are incompatible — "
                            f"convert through repro.units before "
                            f"combining them")
                    return UNKNOWN
                return left
            if left.is_dim:
                return left
            if right.is_dim:
                return right
            return join(left, right)
        if isinstance(op, ast.Mult):
            if left.is_dim and right.kind == _SCALAR:
                return left
            if right.is_dim and left.kind == _SCALAR:
                return right
            if left.is_dim and right.is_dim:
                product = _PRODUCTS.get((left.unit, right.unit))
                if product is None:
                    product = _PRODUCTS.get((right.unit, left.unit))
                return dim(product) if product is not None else UNKNOWN
            return UNKNOWN
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            if left.is_dim and right.kind == _SCALAR:
                return left
            if left.is_dim and right.is_dim:
                if left.unit == right.unit:
                    return SCALAR
                quotient = _QUOTIENTS.get((left.unit, right.unit))
                return dim(quotient) if quotient is not None \
                    else UNKNOWN
            return UNKNOWN
        if isinstance(op, (ast.Mod, ast.Pow)):
            if left.kind == _SCALAR and right.kind == _SCALAR:
                return SCALAR
            return UNKNOWN
        return UNKNOWN

    def _eval_call(self, node: ast.Call) -> AbstractUnit:
        arg_units = [self.eval(argument) for argument in node.args]
        keyword_units: Dict[str, AbstractUnit] = {}
        for keyword in node.keywords:
            unit = self.eval(keyword.value)
            if keyword.arg is not None:
                keyword_units[keyword.arg] = unit
        resolved = self.index.resolve_callee(self.info, node,
                                             self.local_types)
        conversion = self.analysis.conversion_for(self.info, node,
                                                  resolved)
        if conversion is not None:
            name, source, target = conversion
            if node.args and arg_units[0].is_dim \
                    and arg_units[0].unit != source:
                if self.report:
                    got = arg_units[0].unit
                    hint = ("the conversion has already been applied"
                            if got == target else
                            f"{name} expects {source!r}")
                    self.analysis.reporter.emit(
                        "AMP103", self.info.module.context, node,
                        f"{name}() applied to a value already in "
                        f"{got!r}; {hint}")
            return dim(target)
        target_info = self.index.function_for(resolved)
        if target_info is not None:
            self._record_arguments(target_info, node, arg_units,
                                   keyword_units)
            summary = self.analysis.summaries.get(target_info.qualname)
            if summary is not None:
                return summary
            return UNKNOWN
        func_name = trailing_name(node.func)
        if func_name in _UNIT_PRESERVING_BUILTINS and arg_units:
            result = arg_units[0]
            for unit in arg_units[1:]:
                result = join(result, unit)
            return result
        return UNKNOWN

    def _record_arguments(self, target: FunctionInfo, node: ast.Call,
                          arg_units: List[AbstractUnit],
                          keyword_units: Dict[str, AbstractUnit]
                          ) -> None:
        parameters = target.positional_params()
        if target.is_method and parameters \
                and parameters[0].arg in ("self", "cls"):
            parameters = parameters[1:]
        for position, argument in enumerate(node.args):
            if isinstance(argument, ast.Starred):
                break
            if position >= len(parameters):
                break
            self.analysis.record_argument(
                target, parameters[position], self.info, node,
                arg_units[position])
        named = {parameter.arg: parameter
                 for parameter in (parameters
                                   + list(target.node.args.kwonlyargs))}
        for keyword in node.keywords:
            if keyword.arg is None or keyword.arg not in named:
                continue
            self.analysis.record_argument(
                target, named[keyword.arg], self.info, node,
                keyword_units[keyword.arg])


# ---------------------------------------------------------------------------
# Concurrency-safety analysis (AMP201-AMP204)
# ---------------------------------------------------------------------------

#: Receiver methods that mutate a dict/list/set in place.
_MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "clear", "remove", "discard", "appendleft",
    "popleft",
}

#: Constructor names whose module-level result is mutable shared state.
_MUTABLE_FACTORIES = {"dict", "list", "set", "defaultdict",
                      "OrderedDict", "deque", "Counter"}

#: threading primitives that are fork-hazardous when created at import.
_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore",
                   "BoundedSemaphore"}

#: Identifier fragments that mark a ``with`` context as a lock.
_LOCKISH_FRAGMENTS = ("lock", "mutex", "cond")

#: Methods that never need external locking (object construction).
_CONSTRUCTION_METHODS = {"__init__", "__post_init__", "__new__",
                         "__init_subclass__"}


def _is_lockish(node: ast.AST) -> bool:
    name = trailing_name(node.func if isinstance(node, ast.Call)
                         else node)
    if name is None:
        return False
    lowered = name.lower()
    return any(fragment in lowered for fragment in _LOCKISH_FRAGMENTS)


def _held_lines(info: FunctionInfo) -> Set[int]:
    """Physical lines executed under a lock-guarded ``with`` block."""
    held: Set[int] = set()
    for node in ast.walk(info.node):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        if not any(_is_lockish(item.context_expr)
                   for item in node.items):
            continue
        end = getattr(node, "end_lineno", None) or node.lineno
        held.update(range(node.lineno, end + 1))
    return held


class ConcurrencyAnalysis:
    """Root discovery + reachability + the AMP20x checks."""

    def __init__(self, index: ProjectIndex,
                 reporter: _Reporter) -> None:
        self.index = index
        self.reporter = reporter
        self.thread_roots: Set[str] = set()
        self.process_roots: Set[str] = set()
        #: (class qualname, attribute) → function qualnames reading it.
        self.attr_readers: Dict[Tuple[str, str], Set[str]] = {}

    def run(self) -> None:
        self._collect_roots_and_pool_sites()
        self._collect_attribute_reads()
        thread_reachable = self.index.reachable_from(self.thread_roots)
        process_reachable = self.index.reachable_from(
            self.process_roots)
        self._check_import_time_captures(process_reachable)
        for qualname in sorted(thread_reachable):
            info = self.index.functions.get(qualname)
            if info is None:
                continue
            self._check_thread_context(info)

    # -- roots --------------------------------------------------------

    def _collect_roots_and_pool_sites(self) -> None:
        for class_info in self.index.classes.values():
            bases = self.index.mro_base_names(class_info)
            if "BaseHTTPRequestHandler" in bases:
                # Every handler method runs on a per-connection thread
                # of ThreadingHTTPServer.
                for method in class_info.methods.values():
                    self.thread_roots.add(method.qualname)
            if "Thread" in bases and "run" in class_info.methods:
                self.thread_roots.add(
                    class_info.methods["run"].qualname)
        for info in list(self.index.functions.values()):
            local_types = self.index.local_types_for(info)
            for node in self.index.own_nodes(info):
                if isinstance(node, ast.Call):
                    self._inspect_call(info, node, local_types)

    def _inspect_call(self, info: FunctionInfo, node: ast.Call,
                      local_types: Dict[str, str]) -> None:
        name = trailing_name(node.func)
        if name in ("Thread", "Timer"):
            for keyword in node.keywords:
                if keyword.arg in ("target", "function"):
                    self._add_root(info, keyword.value, local_types,
                                   thread=True)
            return
        if name == "ProcessPoolExecutor":
            for keyword in node.keywords:
                if keyword.arg == "initializer":
                    self._check_pool_payload(info, keyword.value,
                                             local_types,
                                             role="initializer")
                    self._add_root(info, keyword.value, local_types,
                                   thread=False)
            return
        if name == "ThreadPoolExecutor":
            for keyword in node.keywords:
                if keyword.arg == "initializer":
                    self._add_root(info, keyword.value, local_types,
                                   thread=True)
            return
        if not isinstance(node.func, ast.Attribute) \
                or node.func.attr not in ("submit", "map") \
                or not node.args:
            return
        receiver = self.index.infer_type(node.func.value, info,
                                         local_types)
        payload = node.args[0]
        if receiver == "ProcessPoolExecutor":
            self._check_pool_payload(info, payload, local_types,
                                     role=node.func.attr)
            for argument in node.args[1:]:
                self._check_pool_argument(info, argument, local_types)
            for keyword in node.keywords:
                self._check_pool_argument(info, keyword.value,
                                          local_types)
            self._add_root(info, payload, local_types, thread=False)
        elif receiver == "ThreadPoolExecutor":
            self._add_root(info, payload, local_types, thread=True)

    def _add_root(self, info: FunctionInfo, node: ast.AST,
                  local_types: Dict[str, str], thread: bool) -> None:
        resolved = self.index.resolve_func_expr(info, node,
                                                local_types)
        target = self.index.function_for(resolved)
        if target is None:
            return
        if thread:
            self.thread_roots.add(target.qualname)
        else:
            self.process_roots.add(target.qualname)

    # -- AMP202 -------------------------------------------------------

    def _check_pool_payload(self, info: FunctionInfo, node: ast.AST,
                            local_types: Dict[str, str],
                            role: str) -> None:
        if not self.reporter.wants("AMP202"):
            return
        context = info.module.context
        if isinstance(node, ast.Lambda):
            self.reporter.emit(
                "AMP202", context, node,
                f"lambda passed as process-pool {role}; lambdas "
                f"cannot be pickled across the process boundary — "
                f"use a module-level function")
            return
        resolved = self.index.resolve_func_expr(info, node,
                                                local_types)
        target = self.index.function_for(resolved)
        if target is not None and target.is_nested:
            self.reporter.emit(
                "AMP202", context, node,
                f"nested function {target.name!r} passed as "
                f"process-pool {role}; closures cannot be pickled — "
                f"promote it to module level")
            return
        if isinstance(node, ast.Attribute):
            receiver = self.index.infer_type(node.value, info,
                                             local_types)
            if receiver is not None \
                    and self.index.class_for(receiver,
                                             info.module) is not None:
                self.reporter.emit(
                    "AMP202", context, node,
                    f"bound method {receiver}.{node.attr} passed as "
                    f"process-pool {role}; the whole instance is "
                    f"pickled with it — ship a module-level function "
                    f"plus plain-data arguments instead")

    def _check_pool_argument(self, info: FunctionInfo, node: ast.AST,
                             local_types: Dict[str, str]) -> None:
        if isinstance(node, ast.Lambda) \
                and self.reporter.wants("AMP202"):
            self.reporter.emit(
                "AMP202", info.module.context, node,
                "lambda argument shipped to a process-pool worker; "
                "lambdas cannot be pickled — pass plain data or a "
                "module-level function")
        if not self.reporter.wants("AMP203"):
            return
        if isinstance(node, ast.Name):
            assigned = info.module.module_assigns.get(node.id)
            if assigned is not None and isinstance(assigned, ast.Call) \
                    and trailing_name(assigned.func) in _LOCK_FACTORIES:
                self.reporter.emit(
                    "AMP203", info.module.context, node,
                    f"module-level lock {node.id!r} shipped as a "
                    f"process-pool argument; locks do not pickle and "
                    f"cannot synchronize across processes")

    # -- AMP203 -------------------------------------------------------

    def _check_import_time_captures(
            self, process_reachable: Set[str]) -> None:
        if not self.reporter.wants("AMP203"):
            return
        for module in self.index.modules.values():
            lock_globals = self._module_locks(module)
            reset_names = self._at_fork_reset_names(module)
            for statement in module.context.tree.body:
                value = self._assigned_value(statement)
                if value is None or not isinstance(value, ast.Call):
                    continue
                dotted = self.index.resolve_symbol(module, value.func)
                opens_resource = (
                    (isinstance(value.func, ast.Name)
                     and value.func.id == "open")
                    or (dotted is not None
                        and dotted.startswith("socket.")))
                if opens_resource:
                    self.reporter.emit(
                        "AMP203", module.context, value,
                        "file/socket opened at module import; forked "
                        "pool workers inherit the open descriptor — "
                        "open it lazily inside the function that "
                        "needs it")
            if not lock_globals:
                continue
            for qualname in sorted(process_reachable):
                function = self.index.functions.get(qualname)
                if function is None or function.module is not module:
                    continue
                for node in self.index.own_nodes(function):
                    if isinstance(node, ast.Name) \
                            and isinstance(node.ctx, ast.Load) \
                            and node.id in lock_globals \
                            and node.id not in reset_names:
                        self.reporter.emit(
                            "AMP203", module.context, node,
                            f"module-level lock {node.id!r} (created "
                            f"at import) is used by process-pool "
                            f"worker code; a forked child inherits "
                            f"its state — register an "
                            f"os.register_at_fork(after_in_child=...) "
                            f"reset for it")

    @staticmethod
    def _assigned_value(statement: ast.stmt) -> Optional[ast.AST]:
        if isinstance(statement, ast.Assign):
            return statement.value
        if isinstance(statement, ast.AnnAssign):
            return statement.value
        return None

    @staticmethod
    def _module_locks(module: ModuleInfo) -> Set[str]:
        locks: Set[str] = set()
        for name, value in module.module_assigns.items():
            if isinstance(value, ast.Call) \
                    and trailing_name(value.func) in _LOCK_FACTORIES:
                locks.add(name)
        return locks

    def _at_fork_reset_names(self, module: ModuleInfo) -> Set[str]:
        """Lock names rebound by an ``os.register_at_fork`` child hook
        somewhere in the module — the documented AMP203 remediation."""
        registers = any(
            isinstance(node, ast.Call)
            and trailing_name(node.func) == "register_at_fork"
            for node in ast.walk(module.context.tree))
        if not registers:
            return set()
        rebound: Set[str] = set()
        for function in module.functions.values():
            declared: Set[str] = set()
            for node in ast.walk(function.node):
                if isinstance(node, ast.Global):
                    declared.update(node.names)
            if not declared:
                continue
            for node in ast.walk(function.node):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name) \
                                and target.id in declared:
                            rebound.add(target.id)
        return rebound

    # -- attribute reads (AMP204 evidence) ----------------------------

    def _collect_attribute_reads(self) -> None:
        for info in self.index.functions.values():
            local_types = self.index.local_types_for(info)
            for node in self.index.own_nodes(info):
                if not isinstance(node, ast.Attribute) \
                        or not isinstance(node.ctx, ast.Load):
                    continue
                receiver = self.index.infer_type(node.value, info,
                                                 local_types)
                class_info = self.index.class_for(receiver, info.module)
                if class_info is None:
                    continue
                self.attr_readers.setdefault(
                    (class_info.qualname, node.attr),
                    set()).add(info.qualname)

    # -- AMP201 / AMP204 ----------------------------------------------

    def _check_thread_context(self, info: FunctionInfo) -> None:
        module = info.module
        held = _held_lines(info)
        mutable_globals = {
            name for name, value in module.module_assigns.items()
            if isinstance(value, (ast.Dict, ast.List, ast.Set,
                                  ast.DictComp, ast.ListComp,
                                  ast.SetComp))
            or (isinstance(value, ast.Call)
                and trailing_name(value.func) in _MUTABLE_FACTORIES)}
        rebinds = {
            name for node in ast.walk(info.node)
            if isinstance(node, ast.Global) for name in node.names}
        for node in self.index.own_nodes(info):
            lineno = getattr(node, "lineno", None)
            if lineno is None or lineno in held:
                continue
            self._check_global_mutation(info, node, mutable_globals,
                                        rebinds)
            self._check_attribute_write(info, node)

    def _check_global_mutation(self, info: FunctionInfo, node: ast.AST,
                               mutable_globals: Set[str],
                               rebinds: Set[str]) -> None:
        if not self.reporter.wants("AMP201"):
            return
        name: Optional[str] = None
        action = "mutated"
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id in mutable_globals:
                    name = target.value.id
                elif isinstance(target, ast.Name) \
                        and target.id in rebinds \
                        and target.id in info.module.module_assigns:
                    name, action = target.id, "rebound"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id in mutable_globals:
                    name = target.value.id
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id in mutable_globals \
                and node.func.attr in _MUTATOR_METHODS:
            name = node.func.value.id
        if name is None:
            return
        self.reporter.emit(
            "AMP201", info.module.context, node,
            f"module-level mutable {name!r} is {action} from a "
            f"thread context without an enclosing lock; concurrent "
            f"handlers race on it — guard the mutation with a "
            f"module-level threading.Lock")

    def _check_attribute_write(self, info: FunctionInfo,
                               node: ast.AST) -> None:
        if not self.reporter.wants("AMP204"):
            return
        if not info.is_method or info.name in _CONSTRUCTION_METHODS:
            return
        target: Optional[ast.Attribute] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Attribute):
            target = node.targets[0]
        elif isinstance(node, ast.AugAssign) \
                and isinstance(node.target, ast.Attribute):
            target = node.target
        if target is None or not (isinstance(target.value, ast.Name)
                                  and target.value.id == "self"):
            return
        class_qualname = info.class_qualname or ""
        readers = self.attr_readers.get((class_qualname, target.attr),
                                        set())
        if not (readers - {info.qualname}):
            return  # written here but never read elsewhere: private
        self.reporter.emit(
            "AMP204", info.module.context, node,
            f"attribute self.{target.attr} is written from a "
            f"thread context without a lock while other code reads "
            f"it; guard the write (or publish it through an Event/"
            f"queue that provides the happens-before edge)")


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def run_flow(contexts: Sequence[FileContext],
             select: Optional[Sequence[str]] = None,
             ignore: Optional[Sequence[str]] = None
             ) -> List[Violation]:
    """Run the whole-program rule families over parsed file contexts.

    Honors the same ``--select``/``--ignore`` semantics and per-file
    suppression directives as the per-file rules; returns the surviving
    violations (unsorted — the engine owns final ordering).
    """
    active = set(flow_rule_ids())
    if select:
        active &= set(select)
    if ignore:
        active -= set(ignore)
    if not active or not contexts:
        return []
    index = ProjectIndex.build(contexts)
    reporter = _Reporter(active)
    if any(rule_id.startswith("AMP1") for rule_id in active):
        UnitAnalysis(index, reporter).run()
    if any(rule_id.startswith("AMP2") for rule_id in active):
        ConcurrencyAnalysis(index, reporter).run()
    return reporter.violations


__all__ = [
    "ALIAS_UNITS",
    "AbstractUnit",
    "CONVERSIONS",
    "FLOW_RULES",
    "FlowRule",
    "SCALAR",
    "UNKNOWN",
    "dim",
    "flow_rule_ids",
    "join",
    "run_flow",
    "suffix_unit",
]


# Keep the unused-import linters honest: these names participate in
# type annotations only on some branches.
_ = (ClassInfo, Iterator)
