"""Command-line front end: ``python -m repro.lint`` / ``amped-lint``.

Exit codes follow the CI contract of :class:`repro.lint.engine.LintResult`:
0 clean, 1 violations, 2 unreadable or unparseable input.  With
``--baseline``, baselined findings do not count against the exit code —
only new ones do.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.lint.baseline import (
    BaselineError,
    filter_new,
    read_baseline,
    write_baseline,
)
from repro.lint.engine import run_lint
from repro.lint.report import render_json, render_rule_listing, render_text


def _split_ids(values: List[str]) -> List[str]:
    """Flatten repeatable, comma-separated ``--select``/``--ignore``."""
    ids: List[str] = []
    for value in values:
        ids.extend(part.strip() for part in value.split(",") if part.strip())
    return ids


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=("Dimensional-consistency and invariant static "
                     "analysis for the AMPeD codebase (per-file rules "
                     "AMP001-AMP006; whole-program rules AMP101-AMP204 "
                     "via --flow; suppress with "
                     "`# amplint: disable=AMP00x`)."))
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to analyze (default: ./src if it "
             "exists, else .)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--select", action="append", default=[], metavar="IDS",
        help="comma-separated rule ids to run exclusively")
    parser.add_argument(
        "--ignore", action="append", default=[], metavar="IDS",
        help="comma-separated rule ids to skip")
    parser.add_argument(
        "--flow", action="store_true",
        help="also run the whole-program dataflow rules (AMP10x "
             "dimension flow, AMP20x concurrency safety)")
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="compare findings against this snapshot; only new "
             "findings are reported and gate the exit code")
    parser.add_argument(
        "--update-baseline", metavar="FILE", default=None,
        help="write the current findings to this snapshot file and "
             "exit 0 (2 if input was unparseable)")
    parser.add_argument(
        "--statistics", action="store_true",
        help="append per-rule violation counts (text format)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_listing())
        return 0

    paths = list(args.paths)
    if not paths:
        paths = ["src"] if os.path.isdir("src") else ["."]

    result = run_lint(paths,
                      select=_split_ids(args.select) or None,
                      ignore=_split_ids(args.ignore) or None,
                      flow=args.flow)

    if args.update_baseline:
        write_baseline(args.update_baseline, result.violations)
        print(f"baseline: wrote {len(result.violations)} finding(s) "
              f"to {args.update_baseline}")
        return 2 if result.failures else 0

    if args.baseline:
        try:
            known = read_baseline(args.baseline)
        except BaselineError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        forgiven = len(result.violations)
        result.violations = filter_new(result.violations, known)
        forgiven -= len(result.violations)
        if forgiven:
            print(f"baseline: {forgiven} known finding(s) suppressed "
                  f"by {args.baseline}")

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, statistics=args.statistics))
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
