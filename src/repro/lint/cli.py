"""Command-line front end: ``python -m repro.lint`` / ``amped-lint``.

Exit codes follow the CI contract of :class:`repro.lint.engine.LintResult`:
0 clean, 1 violations, 2 unreadable or unparseable input.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.lint.engine import run_lint
from repro.lint.report import render_json, render_rule_listing, render_text


def _split_ids(values: List[str]) -> List[str]:
    """Flatten repeatable, comma-separated ``--select``/``--ignore``."""
    ids: List[str] = []
    for value in values:
        ids.extend(part.strip() for part in value.split(",") if part.strip())
    return ids


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=("Dimensional-consistency and invariant static "
                     "analysis for the AMPeD codebase (rules AMP001-"
                     "AMP006; suppress with `# amplint: disable=AMP00x`)."))
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to analyze (default: ./src if it "
             "exists, else .)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--select", action="append", default=[], metavar="IDS",
        help="comma-separated rule ids to run exclusively")
    parser.add_argument(
        "--ignore", action="append", default=[], metavar="IDS",
        help="comma-separated rule ids to skip")
    parser.add_argument(
        "--statistics", action="store_true",
        help="append per-rule violation counts (text format)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_listing())
        return 0

    paths = list(args.paths)
    if not paths:
        paths = ["src"] if os.path.isdir("src") else ["."]

    result = run_lint(paths,
                      select=_split_ids(args.select) or None,
                      ignore=_split_ids(args.ignore) or None)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, statistics=args.statistics))
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
