"""Findings baselines: land new rule families without blocking CI.

A baseline is a JSON snapshot of the current findings, keyed by
``(path, rule, message)`` with an occurrence count — deliberately *not*
by line number, so unrelated edits that shift code up or down do not
invalidate it.  Workflow:

* ``amped-lint --flow --update-baseline .amplint-baseline.json src``
  records today's debt;
* ``amped-lint --flow --baseline .amplint-baseline.json src`` then
  exits 0 as long as no *new* findings appear beyond the recorded
  counts, while still printing only the new ones.

Fixing a baselined finding never breaks the gate (counts in the
baseline are ceilings, not exact matches); regenerate the snapshot
whenever the debt shrinks so it cannot silently grow back.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.engine import Violation

#: Format marker so later schema changes can migrate old snapshots.
BASELINE_VERSION = 1

_Key = Tuple[str, str, str]


class BaselineError(ValueError):
    """The baseline file is missing, unreadable, or malformed."""


def _key(violation: Violation) -> _Key:
    return (violation.path, violation.rule_id, violation.message)


def _tally(violations: Sequence[Violation]) -> Dict[_Key, int]:
    counts: Dict[_Key, int] = {}
    for violation in violations:
        key = _key(violation)
        counts[key] = counts.get(key, 0) + 1
    return counts


def write_baseline(path: str,
                   violations: Sequence[Violation]) -> None:
    """Snapshot ``violations`` to ``path`` (sorted, one entry per
    distinct finding, with its occurrence count)."""
    entries = [
        {"path": file_path, "rule": rule_id, "message": message,
         "count": count}
        for (file_path, rule_id, message), count
        in sorted(_tally(violations).items())
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")


def read_baseline(path: str) -> Dict[_Key, int]:
    """Load a snapshot; raises :class:`BaselineError` on any defect."""
    try:
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise BaselineError(f"cannot read baseline {path}: {error}")
    except json.JSONDecodeError as error:
        raise BaselineError(f"baseline {path} is not valid JSON: {error}")
    if not isinstance(raw, dict) \
            or raw.get("version") != BASELINE_VERSION \
            or not isinstance(raw.get("entries"), list):
        raise BaselineError(
            f"baseline {path} has an unrecognized format "
            f"(expected version {BASELINE_VERSION})")
    counts: Dict[_Key, int] = {}
    for entry in raw["entries"]:
        if not isinstance(entry, dict):
            raise BaselineError(f"baseline {path}: malformed entry")
        try:
            key = (str(entry["path"]), str(entry["rule"]),
                   str(entry["message"]))
            count = int(entry["count"])
        except (KeyError, TypeError, ValueError):
            raise BaselineError(
                f"baseline {path}: entry missing path/rule/"
                f"message/count")
        counts[key] = counts.get(key, 0) + count
    return counts


def filter_new(violations: Sequence[Violation],
               baseline: Dict[_Key, int]) -> List[Violation]:
    """Violations beyond the baselined counts, in input order.

    The first ``count`` occurrences of each baselined finding are
    forgiven; every further occurrence (or any unbaselined finding) is
    returned as new.
    """
    budget = dict(baseline)
    new: List[Violation] = []
    for violation in violations:
        key = _key(violation)
        remaining = budget.get(key, 0)
        if remaining > 0:
            budget[key] = remaining - 1
        else:
            new.append(violation)
    return new


__all__ = [
    "BASELINE_VERSION",
    "BaselineError",
    "filter_new",
    "read_baseline",
    "write_baseline",
]
