"""Render a :class:`~repro.lint.engine.LintResult` for humans or CI."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.dataflow import FLOW_RULES
from repro.lint.engine import LintResult
from repro.lint.rules import all_rules


def render_text(result: LintResult, statistics: bool = False) -> str:
    """Compiler-style one-liners plus a summary footer."""
    lines: List[str] = []
    for failure in result.failures:
        lines.append(failure.render())
    for violation in result.violations:
        lines.append(violation.render())
    if statistics and result.counts:
        lines.append("")
        for rule_id, count in result.counts.items():
            lines.append(f"{rule_id:>8}  {count}")
    lines.append(_summary_line(result))
    return "\n".join(lines)


def _summary_line(result: LintResult) -> str:
    checked = (f"{result.files_checked} file"
               f"{'s' if result.files_checked != 1 else ''} checked")
    if result.failures:
        return (f"{checked}; {len(result.failures)} unreadable; "
                f"{len(result.violations)} violation(s)")
    if result.violations:
        return f"{checked}; {len(result.violations)} violation(s)"
    return f"{checked}; clean"


def as_json_dict(result: LintResult) -> Dict[str, object]:
    """JSON-serializable payload consumed by CI annotations."""
    return {
        "files_checked": result.files_checked,
        "counts": result.counts,
        "violations": [v.as_dict() for v in result.violations],
        "errors": [f.as_dict() for f in result.failures],
        "exit_code": result.exit_code,
    }


def render_json(result: LintResult) -> str:
    """Pretty-printed JSON report."""
    return json.dumps(as_json_dict(result), indent=2, sort_keys=True)


def render_rule_listing() -> str:
    """The ``--list-rules`` catalogue with one-line summaries."""
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.rule_id}  {rule.name:<24} {rule.summary}")
    for flow_rule in FLOW_RULES:
        lines.append(f"{flow_rule.rule_id}  {flow_rule.name:<24} "
                     f"{flow_rule.summary} [--flow]")
    return "\n".join(lines)
