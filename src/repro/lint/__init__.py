"""``repro.lint`` — dimensional-consistency static analysis for this repo.

AMPeD's closed-form equations mix seconds, bits, bits/second, FLOPs and
FLOP/second — quantities spanning ~20 orders of magnitude — and the only
runtime defense is the convention that :mod:`repro.units` is the single
conversion boundary.  This package machine-checks that convention: an
AST-based analyzer (``python -m repro.lint [paths]``, stdlib only) with a
rule registry, per-line suppressions (``# amplint: disable=AMP00x``),
JSON/text output and CI-friendly exit codes.

Rules
-----
AMP001  raw SI-magnitude literal bypassing a ``repro.units`` constant
AMP002  bit/byte arithmetic with a literal 8 outside ``units.py``
AMP003  bare infinity sentinel instead of raising ``MappingError``
AMP004  time-returning function without ``_s`` suffix or ``Seconds``
AMP005  dataclass float fields without ``require_finite`` validation
AMP006  broad ``except Exception`` without the supervised-boundary
        contract (``# noqa: BLE001 — <justification>``)

Exit codes: 0 clean, 1 violations found, 2 file/parse errors.
"""

from __future__ import annotations

from repro.lint.engine import (
    FileContext,
    LintResult,
    ParseFailure,
    Violation,
    run_lint,
)
from repro.lint.rules import Rule, all_rules, get_rule

__all__ = [
    "FileContext",
    "LintResult",
    "ParseFailure",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "run_lint",
]
