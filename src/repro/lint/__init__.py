"""``repro.lint`` — dimensional-consistency static analysis for this repo.

AMPeD's closed-form equations mix seconds, bits, bits/second, FLOPs and
FLOP/second — quantities spanning ~20 orders of magnitude — and the only
runtime defense is the convention that :mod:`repro.units` is the single
conversion boundary.  This package machine-checks that convention: an
AST-based analyzer (``python -m repro.lint [paths]``, stdlib only) with a
rule registry, per-line suppressions (``# amplint: disable=AMP00x``),
JSON/text output and CI-friendly exit codes.

Rules
-----
AMP001  raw SI-magnitude literal bypassing a ``repro.units`` constant
AMP002  bit/byte arithmetic with a literal 8 outside ``units.py``
AMP003  bare infinity sentinel instead of raising ``MappingError``
AMP004  time-returning function without ``_s`` suffix or ``Seconds``
AMP005  dataclass float fields without ``require_finite`` validation
AMP006  broad ``except Exception`` without the supervised-boundary
        contract (``# noqa: BLE001 — <justification>``)

Whole-program rules (``--flow``, see :mod:`repro.lint.dataflow`)
----------------------------------------------------------------
AMP101  addition/subtraction of two different known dimensions
AMP102  ``Dim``-annotated function whose return flow carries a
        different dimension
AMP103  unit conversion applied to a value already in the wrong
        (or already-converted) unit
AMP104  unannotated public parameter that demonstrably receives one
        agreed dimension at multiple call sites
AMP201  module-level mutable state mutated from a thread context
        without a lock
AMP202  lambda/nested-function/bound-method shipped to a process pool
AMP203  fork-unsafe capture: import-time file/socket, or a module
        lock in pool workers without an ``os.register_at_fork`` reset
AMP204  instance attribute written from a thread context without a
        lock while read elsewhere

Exit codes: 0 clean, 1 violations found, 2 file/parse errors.
"""

from __future__ import annotations

from repro.lint.baseline import (
    filter_new,
    read_baseline,
    write_baseline,
)
from repro.lint.dataflow import FLOW_RULES, FlowRule, run_flow
from repro.lint.engine import (
    FileContext,
    LintResult,
    ParseFailure,
    Violation,
    run_lint,
)
from repro.lint.rules import Rule, all_rules, get_rule

__all__ = [
    "FLOW_RULES",
    "FileContext",
    "FlowRule",
    "LintResult",
    "ParseFailure",
    "Rule",
    "Violation",
    "all_rules",
    "filter_new",
    "get_rule",
    "read_baseline",
    "run_flow",
    "run_lint",
    "write_baseline",
]
