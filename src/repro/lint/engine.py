"""Analyzer engine: file discovery, parsing, suppressions, rule driving.

The engine is deliberately dependency-free (``ast`` + ``tokenize`` only)
so the linter can gate CI on a bare interpreter.  Rules live in
:mod:`repro.lint.rules`; this module owns everything rule-independent:

* walking directories for ``*.py`` files,
* parsing each file once into an AST plus a comment map,
* the suppression contract (``# amplint: disable=AMP001`` on the
  violating line, ``# amplint: disable-file=AMP001`` anywhere on a
  comment-only line for whole-file waivers),
* collecting :class:`Violation` records into a :class:`LintResult` with
  CI-friendly exit codes.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Union

#: Marker introducing an inline analyzer directive.
DIRECTIVE_PREFIX = "amplint:"

_DIRECTIVE_RE = re.compile(
    r"amplint:\s*(?P<kind>disable-file|disable)\s*=\s*"
    r"(?P<ids>[A-Za-z0-9_,\s]+)")

#: Wildcard accepted in a directive's id list ("disable=all").
ALL_RULES = "all"


@dataclass(frozen=True)
class Violation:
    """One rule hit at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """The classic compiler-style one-liner."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


@dataclass(frozen=True)
class ParseFailure:
    """A file the analyzer could not read or parse."""

    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: error: {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "error": self.message}


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: str
    source: str
    tree: ast.Module
    #: Physical line number -> comment text (including the leading ``#``).
    comments: Dict[int, str] = field(default_factory=dict)
    #: Line number -> rule ids suppressed on that line.
    line_disables: Dict[int, Set[str]] = field(default_factory=dict)
    #: Rule ids suppressed for the whole file.
    file_disables: Set[str] = field(default_factory=set)

    def comment_on(self, line: int) -> str:
        """The comment ending physical line ``line`` ('' if none)."""
        return self.comments.get(line, "")

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True when ``rule_id`` is waived at ``line`` by a directive."""
        if rule_id in self.file_disables or ALL_RULES in self.file_disables:
            return True
        disabled = self.line_disables.get(line, set())
        return rule_id in disabled or ALL_RULES in disabled

    def violation(self, rule_id: str, node: Union[ast.AST, int],
                  message: str, col: Optional[int] = None) -> Violation:
        """Build a :class:`Violation` anchored at ``node`` (or a line)."""
        if isinstance(node, int):
            line, column = node, 0 if col is None else col
        else:
            line = getattr(node, "lineno", 1)
            column = getattr(node, "col_offset", 0) if col is None else col
        return Violation(path=self.path, line=line, col=column,
                         rule_id=rule_id, message=message)


@dataclass
class LintResult:
    """Aggregate outcome of one analyzer run."""

    violations: List[Violation] = field(default_factory=list)
    failures: List[ParseFailure] = field(default_factory=list)
    files_checked: int = 0

    @property
    def counts(self) -> Dict[str, int]:
        """Violations per rule id, sorted by id."""
        tally: Dict[str, int] = {}
        for violation in self.violations:
            tally[violation.rule_id] = tally.get(violation.rule_id, 0) + 1
        return dict(sorted(tally.items()))

    @property
    def exit_code(self) -> int:
        """0 clean · 1 violations · 2 unreadable/unparseable input."""
        if self.failures:
            return 2
        if self.violations:
            return 1
        return 0


def _scan_comments(source: str) -> Dict[int, str]:
    """Map physical line numbers to their trailing comments.

    Uses :mod:`tokenize` so ``#`` inside string literals is never
    mistaken for a comment.  Files that tokenize rejects fall back to an
    empty map (the AST parse already succeeded, so rules still run).
    """
    comments: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError):
        pass
    return comments


def _parse_directives(context: FileContext) -> None:
    """Populate the context's suppression tables from its comments."""
    for line, comment in context.comments.items():
        match = _DIRECTIVE_RE.search(comment)
        if match is None:
            continue
        ids = {part.strip() for part in match.group("ids").split(",")}
        ids = {part for part in ids if part}
        if match.group("kind") == "disable-file":
            context.file_disables.update(ids)
        else:
            context.line_disables.setdefault(line, set()).update(ids)


def build_context(path: Path) -> Union[FileContext, ParseFailure]:
    """Read and parse one file; on failure return a :class:`ParseFailure`."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        return ParseFailure(path=str(path), line=1, message=str(error))
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return ParseFailure(path=str(path), line=error.lineno or 1,
                            message=f"syntax error: {error.msg}")
    context = FileContext(path=str(path), source=source, tree=tree,
                          comments=_scan_comments(source))
    _parse_directives(context)
    return context


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield every ``*.py`` file under ``paths`` in deterministic order.

    Directories are walked recursively; ``__pycache__`` and hidden
    directories are skipped.  Non-existent inputs surface later as
    :class:`ParseFailure` entries rather than being silently dropped.
    """
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            for candidate in sorted(root.rglob("*.py")):
                parts = candidate.relative_to(root).parts
                if any(part == "__pycache__" or part.startswith(".")
                       for part in parts):
                    continue
                yield candidate
        else:
            yield root


def run_lint(paths: Sequence[str],
             select: Optional[Sequence[str]] = None,
             ignore: Optional[Sequence[str]] = None,
             flow: bool = False) -> LintResult:
    """Run the (optionally filtered) rule set over ``paths``.

    With ``flow=True`` the whole-program rule families (AMP10x/AMP20x,
    see :mod:`repro.lint.dataflow`) run over the same parsed contexts
    after the per-file rules, sharing the select/ignore filters and the
    suppression contract.
    """
    from repro.lint.rules import all_rules

    rules = all_rules()
    if select:
        wanted = set(select)
        rules = [rule for rule in rules if rule.rule_id in wanted]
    if ignore:
        unwanted = set(ignore)
        rules = [rule for rule in rules if rule.rule_id not in unwanted]

    result = LintResult()
    contexts: List[FileContext] = []
    for path in iter_python_files(paths):
        context = build_context(path)
        if isinstance(context, ParseFailure):
            result.failures.append(context)
            continue
        result.files_checked += 1
        contexts.append(context)
        for rule in rules:
            if rule.exempts(path):
                continue
            for violation in rule.check(context):
                if not context.is_suppressed(violation.rule_id,
                                             violation.line):
                    result.violations.append(violation)
    if flow:
        from repro.lint.dataflow import run_flow

        result.violations.extend(run_flow(contexts, select=select,
                                          ignore=ignore))
    result.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return result
