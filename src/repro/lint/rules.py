"""The AMP rule set: this codebase's real dimensional failure modes.

Each rule is a pure function from a parsed :class:`~repro.lint.engine.FileContext`
to an iterator of violations, registered under a stable ``AMPnnn`` id.
Performance-model reproductions die by unit slips — a ``* 8`` in the
wrong place silently turns bits into bytes, an inline ``86400.0``
detaches a conversion from the one module allowed to define it — so the
rules target exactly those patterns rather than general style.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.lint.engine import FileContext, Violation
from repro.units import (
    GIB,
    GIGA,
    KIB,
    KILO,
    MEGA,
    MIB,
    PETA,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_MINUTE,
    TERA,
    TIB,
)

CheckFn = Callable[[FileContext], Iterator[Violation]]


@dataclass(frozen=True)
class Rule:
    """One registered analyzer rule."""

    rule_id: str
    name: str
    summary: str
    check: CheckFn
    #: File basenames the rule never applies to (e.g. ``units.py`` is the
    #: one module allowed to spell out conversion constants).
    exempt_basenames: Tuple[str, ...] = ()

    def exempts(self, path: "object") -> bool:
        """True when ``path`` (a ``pathlib.Path`` or str) is out of scope."""
        name = getattr(path, "name", None)
        if name is None:
            name = str(path).rsplit("/", 1)[-1]
        return name in self.exempt_basenames


_REGISTRY: Dict[str, Rule] = {}


def _register(rule_id: str, name: str, summary: str,
              exempt_basenames: Tuple[str, ...] = ()
              ) -> Callable[[CheckFn], CheckFn]:
    def decorator(check: CheckFn) -> CheckFn:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id}")
        _REGISTRY[rule_id] = Rule(rule_id=rule_id, name=name,
                                  summary=summary, check=check,
                                  exempt_basenames=exempt_basenames)
        return check
    return decorator


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id."""
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id (KeyError when unknown)."""
    return _REGISTRY[rule_id]


# ---------------------------------------------------------------------------
# AMP001 — raw SI-magnitude literals
# ---------------------------------------------------------------------------

#: Float literal -> the repro.units constant it silently re-derives.
#: Built from the constants themselves so the table can never drift.
_MAGNITUDE_CONSTANTS: Dict[float, str] = {
    KILO: "KILO",
    MEGA: "MEGA",
    GIGA: "GIGA",
    TERA: "TERA",
    PETA: "PETA",
    SECONDS_PER_MINUTE: "SECONDS_PER_MINUTE",
    SECONDS_PER_HOUR: "SECONDS_PER_HOUR",
    SECONDS_PER_DAY: "SECONDS_PER_DAY",
    KIB: "KIB",
    MIB: "MIB",
    GIB: "GIB",
    TIB: "TIB",
}


@_register(
    "AMP001", "magnitude-literal",
    "raw SI/IEC magnitude literal bypassing a repro.units constant",
    exempt_basenames=("units.py",))
def _check_magnitude_literals(context: FileContext) -> Iterator[Violation]:
    """Flag float literals equal to a known unit-conversion magnitude.

    Integer literals stay legal (``hidden_size=1024`` is a dimensionless
    count), but *float* spellings — ``1e9``, ``86400.0``, ``3600.0`` —
    are conversion factors and must come from :mod:`repro.units` so a
    grep for the constant finds every conversion site.
    """
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Constant):
            continue
        value = node.value
        if isinstance(value, bool) or not isinstance(value, float):
            continue
        constant = _MAGNITUDE_CONSTANTS.get(value)
        if constant is not None:
            yield context.violation(
                "AMP001", node,
                f"raw magnitude literal {value!r}; use "
                f"repro.units.{constant} (or a units.py conversion helper) "
                f"so the dimension stays greppable")


# ---------------------------------------------------------------------------
# AMP002 — bit/byte arithmetic outside units.py
# ---------------------------------------------------------------------------


@_register(
    "AMP002", "bit-byte-arith",
    "inline *8 or /8 bit/byte conversion outside repro.units",
    exempt_basenames=("units.py",))
def _check_bit_byte_arithmetic(context: FileContext) -> Iterator[Violation]:
    """Flag ``x * 8`` / ``x / 8`` — the classic silent bits↔bytes slip.

    ``//`` is exempt (integer grouping like ``n_gpus // 8`` is counting,
    not unit conversion).  Conversions belong to
    :func:`repro.units.bytes_to_bits` / :func:`repro.units.bits_to_bytes`
    or an explicit ``BITS_PER_BYTE`` factor.
    """
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.BinOp):
            continue
        if not isinstance(node.op, (ast.Mult, ast.Div)):
            continue
        for operand in (node.left, node.right):
            if (isinstance(operand, ast.Constant)
                    and not isinstance(operand.value, bool)
                    and isinstance(operand.value, (int, float))
                    and operand.value == 8):
                yield context.violation(
                    "AMP002", node,
                    "bit/byte arithmetic with a literal 8; use "
                    "repro.units.BITS_PER_BYTE or "
                    "bytes_to_bits()/bits_to_bytes() so the direction of "
                    "the conversion is explicit")
                break


# ---------------------------------------------------------------------------
# AMP003 — bare infinity sentinels
# ---------------------------------------------------------------------------

_INF_STRINGS = {"inf", "-inf", "+inf", "infinity", "-infinity", "+infinity"}


def _is_inf_expression(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute) and node.attr == "inf":
        return isinstance(node.value, ast.Name) and node.value.id == "math"
    if isinstance(node, ast.Name) and node.id == "inf":
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "float" and len(node.args) == 1):
        argument = node.args[0]
        return (isinstance(argument, ast.Constant)
                and isinstance(argument.value, str)
                and argument.value.strip().lower() in _INF_STRINGS)
    return False


@_register(
    "AMP003", "inf-sentinel",
    "bare infinity sentinel instead of raising MappingError")
def _check_inf_sentinels(context: FileContext) -> Iterator[Violation]:
    """Flag ``math.inf`` / ``float('inf')`` cost sentinels.

    PR 2 replaced infeasible-configuration sentinels with
    :class:`repro.errors.MappingError` so sweeps can distinguish
    "provably infeasible" from "numerically broken"; an infinity that
    sneaks back in defeats that, poisons rankings and does not survive
    JSON serialization.
    """
    for node in ast.walk(context.tree):
        if _is_inf_expression(node):
            yield context.violation(
                "AMP003", node,
                "bare infinity sentinel; raise repro.errors.MappingError "
                "(or another ReproError) for infeasible configurations, "
                "or suppress with a justification if this is a reporting "
                "value")


# ---------------------------------------------------------------------------
# AMP004 — time-returning functions must carry their unit
# ---------------------------------------------------------------------------

_TIME_TOKENS = {"time", "latency", "duration", "delay"}
_UNIT_SUFFIXES = ("_s", "_seconds", "_ms", "_us", "_ns",
                  "_minutes", "_hours", "_days")
_DIM_ALIASES = {"Seconds", "Bits", "Bytes", "BitsPerSecond",
                "Flops", "FlopsPerSecond", "Watts"}


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """The trailing identifier of an annotation expression, if any."""
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.rsplit(".", 1)[-1]
    return None


@_register(
    "AMP004", "time-unit-name",
    "time-returning function lacks a _s/_seconds suffix or Seconds "
    "annotation")
def _check_time_function_names(context: FileContext) -> Iterator[Violation]:
    """Flag scalar time functions whose signature hides the unit.

    A function whose name mentions time (``*_time``, ``latency``,
    ``duration``, ``delay``) and returns a bare/unannotated float gives
    the caller no way to know whether it yields seconds, microseconds or
    days.  Either suffix the name (``_s``, ``_seconds``, ``_days``, ...)
    or annotate the return as :data:`repro.units.Seconds` so the unit is
    checkable at every call boundary.
    """
    for node in ast.walk(context.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        name = node.name
        if name.startswith("__") and name.endswith("__"):
            continue
        tokens = set(name.strip("_").split("_"))
        if not tokens & _TIME_TOKENS:
            continue
        if name.endswith(_UNIT_SUFFIXES):
            continue
        if node.returns is not None:
            returns = _annotation_name(node.returns)
            if returns != "float":
                # Annotated with a dimension alias, or a non-scalar type
                # (str, SystemSpec, Iterator[...], ...): either the unit
                # is carried by the annotation or the value is not a raw
                # number.  Only a bare/missing float hides the unit.
                continue
        yield context.violation(
            "AMP004", node,
            f"time-returning function {name!r} hides its unit; add a "
            f"unit suffix (e.g. {name}_s) or annotate the return as "
            f"repro.units.Seconds")


# ---------------------------------------------------------------------------
# AMP005 — dataclass float fields must be validated finite
# ---------------------------------------------------------------------------


def _is_dataclass_decorator(node: ast.AST) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Name):
        return target.id == "dataclass"
    if isinstance(target, ast.Attribute):
        return target.attr == "dataclass"
    return False


def _is_float_annotation(node: Optional[ast.AST]) -> bool:
    name = _annotation_name(node)
    if name == "float" or name in _DIM_ALIASES:
        return True
    if isinstance(node, ast.Subscript):
        head = _annotation_name(node.value)
        if head == "Optional":
            return _is_float_annotation(node.slice)
    return False


def _calls_require_finite(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            callee = child.func
            callee_name = (callee.id if isinstance(callee, ast.Name)
                           else callee.attr
                           if isinstance(callee, ast.Attribute) else None)
            if callee_name is not None and \
                    callee_name.startswith("require_finite"):
                # require_finite itself or the require_finite_fields
                # bulk helper from repro.errors.
                return True
    return False


@_register(
    "AMP005", "unvalidated-float-field",
    "dataclass float fields without require_finite validation")
def _check_dataclass_finite(context: FileContext) -> Iterator[Violation]:
    """Flag dataclasses whose float fields skip ``require_finite``.

    NaN passes every ``< 0`` range check (all NaN comparisons are false)
    and infinity survives them, so a spec object built from bad input
    poisons whole sweeps many frames away from the mistake.  Every
    dataclass with float fields must call
    :func:`repro.errors.require_finite` on them in ``__post_init__``.
    """
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not any(_is_dataclass_decorator(d) for d in node.decorator_list):
            continue
        float_fields = [
            statement.target.id
            for statement in node.body
            if isinstance(statement, ast.AnnAssign)
            and isinstance(statement.target, ast.Name)
            and _is_float_annotation(statement.annotation)
        ]
        if not float_fields:
            continue
        post_init = next(
            (statement for statement in node.body
             if isinstance(statement, ast.FunctionDef)
             and statement.name == "__post_init__"), None)
        if post_init is not None and _calls_require_finite(post_init):
            continue
        listing = ", ".join(float_fields[:4])
        if len(float_fields) > 4:
            listing += ", ..."
        yield context.violation(
            "AMP005", node,
            f"dataclass {node.name!r} has float fields ({listing}) but "
            f"__post_init__ never calls repro.errors.require_finite; "
            f"NaN/inf would pass its range checks silently")


# ---------------------------------------------------------------------------
# AMP006 — broad except without the supervised-boundary contract
# ---------------------------------------------------------------------------

_BOUNDARY_MARK = "noqa: BLE001"


def _names_broad_exception(node: Optional[ast.AST]) -> bool:
    if node is None:
        # A bare ``except:`` is even broader than ``except Exception``.
        return True
    if isinstance(node, ast.Name):
        return node.id in ("Exception", "BaseException")
    if isinstance(node, ast.Attribute):
        return node.attr in ("Exception", "BaseException")
    if isinstance(node, ast.Tuple):
        return any(_names_broad_exception(element) for element in node.elts)
    return False


@_register(
    "AMP006", "broad-except",
    "broad except Exception without the supervised-boundary contract")
def _check_broad_except(context: FileContext) -> Iterator[Violation]:
    """Flag ``except Exception`` handlers missing the boundary contract.

    The resilient sweep runtime (PR 2) established the convention: a
    broad catch is legal only at a *supervised boundary* — a worker
    wrapper whose caller retries/degrades — and must be marked
    ``# noqa: BLE001 — <justification>`` on the ``except`` line.
    Anywhere else it masks genuine programming errors.
    """
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _names_broad_exception(node.type):
            continue
        if _BOUNDARY_MARK in context.comment_on(node.lineno):
            continue
        yield context.violation(
            "AMP006", node,
            "broad `except Exception` without the supervised-boundary "
            "contract; catch ReproError (or a narrower type), or mark "
            "the boundary with `# noqa: BLE001 — <justification>`")
