"""Prediction-vs-reference comparison and validation reports.

Implements the paper's error metric (percent relative error against the
published or measured value) and a small report container the
experiments and benchmarks share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ValidationDataError, require_finite_fields
from repro.units import relative_error


@dataclass(frozen=True)
class ComparisonRow:
    """One predicted-vs-reference data point."""

    label: str
    predicted: float
    reference: float


    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def error_percent(self) -> float:
        """Percent relative error, the paper's reporting unit."""
        return 100.0 * relative_error(self.predicted, self.reference)


@dataclass(frozen=True)
class ValidationReport:
    """A named collection of comparison rows."""

    name: str
    rows: Sequence[ComparisonRow]

    def __post_init__(self) -> None:
        if not self.rows:
            raise ValidationDataError(
                f"validation report {self.name!r} has no rows")

    @property
    def max_error_percent(self) -> float:
        """Worst-case error across the report."""
        return max(row.error_percent for row in self.rows)

    @property
    def mean_error_percent(self) -> float:
        """Mean error across the report."""
        return sum(row.error_percent for row in self.rows) / len(self.rows)

    def within(self, budget_percent: float) -> bool:
        """Whether every row lands inside the error budget."""
        return self.max_error_percent <= budget_percent

    def format_table(self) -> str:
        """Aligned text table: label, predicted, reference, error%."""
        width = max(len(row.label) for row in self.rows)
        width = max(width, len("label"))
        lines = [
            self.name,
            "-" * len(self.name),
            f"{'label'.ljust(width)}  {'predicted':>12}  "
            f"{'reference':>12}  {'error':>7}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.label.ljust(width)}  {row.predicted:>12.4g}  "
                f"{row.reference:>12.4g}  {row.error_percent:>6.2f}%")
        lines.append(
            f"{'max error'.ljust(width)}  {'':>12}  {'':>12}  "
            f"{self.max_error_percent:>6.2f}%")
        return "\n".join(lines)


def compare_series(name: str, labels: Sequence[str],
                   predicted: Sequence[float],
                   reference: Sequence[float]) -> ValidationReport:
    """Zip three equal-length sequences into a report."""
    if not (len(labels) == len(predicted) == len(reference)):
        raise ValidationDataError(
            f"series lengths differ: {len(labels)} labels, "
            f"{len(predicted)} predictions, {len(reference)} references")
    rows: List[ComparisonRow] = [
        ComparisonRow(label, p, r)
        for label, p, r in zip(labels, predicted, reference)]
    return ValidationReport(name=name, rows=rows)
