"""Published reference data the paper validates against.

Three datasets, transcribed from the paper:

- :data:`MEGATRON_TABLE2` — Table II: achieved TFLOP/s/GPU of the
  Megatron GPT family (Narayanan et al., SC'21), with the (TP, PP, DP)
  mapping each model ran under, the paper's own AMPeD predictions and
  its reported errors.
- :data:`GPIPE_TABLE3` — Table III: normalized GPipe training throughput
  on P100/PCIe with 32 microbatches (Huang et al.), with the paper's
  predictions.
- :data:`FIG2C_ERRORS` — Fig. 2c's quoted prediction errors for GPT-3
  175B on 96 GPUs at the two ends of the microbatch-size sweep.

Batch sizes for Table II follow the Megatron paper's published training
configuration for each model size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ValidationDataError, require_finite_fields


@dataclass(frozen=True)
class MegatronPoint:
    """One Table II row."""

    model_key: str          # repro.transformer.zoo registry key
    n_parameters_b: float   # billions, as labelled in the table
    tp: int
    pp: int
    dp: int
    global_batch: int       # Megatron SC'21 training configuration
    published_tflops: float
    paper_prediction_tflops: float
    paper_error_percent: float


    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def n_gpus(self) -> int:
        """Total GPUs of the published run."""
        return self.tp * self.pp * self.dp


#: Table II of the paper (published column from Narayanan et al.).
MEGATRON_TABLE2: Tuple[MegatronPoint, ...] = (
    MegatronPoint("megatron-145b", 145, tp=8, pp=8, dp=24,
                  global_batch=2304, published_tflops=148,
                  paper_prediction_tflops=147, paper_error_percent=0.6),
    MegatronPoint("megatron-310b", 310, tp=8, pp=16, dp=12,
                  global_batch=2160, published_tflops=155,
                  paper_prediction_tflops=162, paper_error_percent=4.5),
    MegatronPoint("megatron-530b", 530, tp=8, pp=35, dp=9,
                  global_batch=2520, published_tflops=163,
                  paper_prediction_tflops=148.6, paper_error_percent=8.8),
    MegatronPoint("megatron-1t", 1000, tp=8, pp=64, dp=6,
                  global_batch=3072, published_tflops=163,
                  paper_prediction_tflops=144.3, paper_error_percent=11.47),
)


@dataclass(frozen=True)
class GPipePoint:
    """One Table III column."""

    n_gpus: int
    published_speedup: float
    paper_prediction_speedup: float


    def __post_init__(self) -> None:
        require_finite_fields(self)


#: Table III: GPipe normalized throughput, M = 32 microbatches.
GPIPE_TABLE3: Tuple[GPipePoint, ...] = (
    GPipePoint(n_gpus=2, published_speedup=1.0,
               paper_prediction_speedup=1.0),
    GPipePoint(n_gpus=4, published_speedup=1.8,
               paper_prediction_speedup=1.84),
    GPipePoint(n_gpus=8, published_speedup=3.3,
               paper_prediction_speedup=3.19),
)

#: GPipe's microbatch count in Table III.
GPIPE_N_MICROBATCHES = 32


@dataclass(frozen=True)
class Fig2cPoint:
    """A quoted error bound of Fig. 2c (GPT-3 175B, 96 GPUs, PP only)."""

    microbatch_size: int
    paper_error_percent: float


    def __post_init__(self) -> None:
        require_finite_fields(self)


#: Fig. 2c's quoted endpoints: ~11% error at microbatch 12, ~2% at 60.
FIG2C_ERRORS: Tuple[Fig2cPoint, ...] = (
    Fig2cPoint(microbatch_size=12, paper_error_percent=11.0),
    Fig2cPoint(microbatch_size=60, paper_error_percent=2.0),
)

#: The paper's headline validation claim.
MAX_PAPER_ERROR_PERCENT = 12.0


def table2_point(model_key: str) -> MegatronPoint:
    """Look up a Table II row by zoo key."""
    for point in MEGATRON_TABLE2:
        if point.model_key == model_key:
            return point
    known = ", ".join(p.model_key for p in MEGATRON_TABLE2)
    raise ValidationDataError(
        f"no Table II entry for {model_key!r}; known: {known}")
