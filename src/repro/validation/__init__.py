"""Published reference data and prediction-error reporting (§V)."""

from repro.validation.compare import (
    ComparisonRow,
    ValidationReport,
    compare_series,
)
from repro.validation.published import (
    FIG2C_ERRORS,
    GPIPE_N_MICROBATCHES,
    GPIPE_TABLE3,
    MAX_PAPER_ERROR_PERCENT,
    MEGATRON_TABLE2,
    Fig2cPoint,
    GPipePoint,
    MegatronPoint,
    table2_point,
)

__all__ = [
    "ComparisonRow",
    "ValidationReport",
    "compare_series",
    "MegatronPoint",
    "GPipePoint",
    "Fig2cPoint",
    "MEGATRON_TABLE2",
    "GPIPE_TABLE3",
    "GPIPE_N_MICROBATCHES",
    "FIG2C_ERRORS",
    "MAX_PAPER_ERROR_PERCENT",
    "table2_point",
]
