"""Unit conversions, constants and human-readable formatting.

AMPeD mixes quantities whose natural units differ by many orders of
magnitude: link bandwidths in bits/second, accelerator throughput in
FLOP/second, training times from microseconds per layer to tens of days
per run.  Internally the library sticks to strict SI base units —
**seconds**, **bits**, **FLOPs** (and operations/second, bits/second) —
and this module is the single place where anything else is converted in
or out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Annotated, List

# ---------------------------------------------------------------------------
# Dimension tags
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Dim:
    """A physical-dimension tag attached to a ``float`` via ``Annotated``.

    The tag is metadata only — zero runtime cost, invisible to callers —
    but it lets static tooling (``repro.lint`` rule AMP004, mypy plugins)
    verify that quantities keep their dimension across call boundaries.
    """

    unit: str


#: Wall-clock or modeled time in SI seconds.
Seconds = Annotated[float, Dim("s")]
#: Payload sizes in bits (the library's canonical data-volume unit).
Bits = Annotated[float, Dim("bit")]
#: Memory capacities in bytes (HBM datasheet unit; convert at the edge).
Bytes = Annotated[float, Dim("byte")]
#: Link and fabric bandwidths in bits/second.
BitsPerSecond = Annotated[float, Dim("bit/s")]
#: Operation counts in FLOPs (1 MAC = 2 FLOPs).
Flops = Annotated[float, Dim("FLOP")]
#: Compute throughput in FLOP/second.
FlopsPerSecond = Annotated[float, Dim("FLOP/s")]
#: Electrical power in watts (energy model).
Watts = Annotated[float, Dim("W")]

# ---------------------------------------------------------------------------
# SI prefixes
# ---------------------------------------------------------------------------

KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12
PETA = 1e15

MILLI = 1e-3
MICRO = 1e-6

#: Binary (IEC) multipliers, used only for memory capacities.
KIB = 1024.0
MIB = 1024.0 ** 2
GIB = 1024.0 ** 3
TIB = 1024.0 ** 4

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0

BITS_PER_BYTE = 8.0

#: FLOPs performed by one multiply-accumulate.
FLOPS_PER_MAC = 2.0


def seconds_to_days(seconds: float) -> float:
    """Convert seconds to days (the unit of the paper's case studies)."""
    return seconds / SECONDS_PER_DAY


def days_to_seconds(days: float) -> float:
    """Convert days to seconds."""
    return days * SECONDS_PER_DAY


def seconds_to_hours(seconds: float) -> float:
    """Convert seconds to hours."""
    return seconds / SECONDS_PER_HOUR


def seconds_to_microseconds(seconds: float) -> float:
    """Convert seconds to microseconds (per-token reporting unit)."""
    return seconds / MICRO


def microseconds_to_seconds(microseconds: float) -> float:
    """Convert microseconds (Chrome trace timestamps) to seconds."""
    return microseconds / MEGA


def seconds_to_milliseconds(seconds: float) -> float:
    """Convert seconds to milliseconds (request-latency unit)."""
    return seconds / MILLI


def bytes_to_bits(n_bytes: float) -> float:
    """Convert a byte count to bits."""
    return n_bytes * BITS_PER_BYTE


def bits_to_bytes(n_bits: float) -> float:
    """Convert a bit count to bytes."""
    return n_bits / BITS_PER_BYTE


def gbps_to_bits_per_second(gbps: float) -> float:
    """Convert gigabits/second (network datasheet unit) to bits/second."""
    return gbps * GIGA


def gbytes_per_second_to_bits_per_second(gbs: float) -> float:
    """Convert gigabytes/second (NVLink datasheet unit) to bits/second."""
    return gbs * GIGA * BITS_PER_BYTE


def teraflops(value: float) -> float:
    """Express ``value`` TFLOP/s in FLOP/s."""
    return value * TERA


def to_teraflops(flops_per_second: float) -> float:
    """Express a FLOP/s rate in TFLOP/s (the unit of Table II)."""
    return flops_per_second / TERA


# ---------------------------------------------------------------------------
# Formatting helpers
# ---------------------------------------------------------------------------

_SI_STEPS = (
    (PETA, "P"),
    (TERA, "T"),
    (GIGA, "G"),
    (MEGA, "M"),
    (KILO, "k"),
)


def format_si(value: float, unit: str = "", precision: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(3.12e14, "FLOP/s")
    == '312 TFLOP/s'``.

    Values below 1000 are printed without a prefix.  Negative values keep
    their sign; zero is printed as ``0 <unit>``.
    """
    if value == 0:
        return f"0 {unit}".strip()
    magnitude = abs(value)
    for step, prefix in _SI_STEPS:
        if magnitude >= step:
            scaled = value / step
            return f"{_trim(scaled, precision)} {prefix}{unit}".strip()
    return f"{_trim(value, precision)} {unit}".strip()


def format_duration(seconds: float) -> str:
    """Render a duration at a human scale: us/ms/s/min/h/days.

    >>> format_duration(1.8e6)
    '20.8 days'
    >>> format_duration(0.004)
    '4 ms'
    """
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds == 0:
        return "0 s"
    if seconds < 1e-3:
        return f"{_trim(seconds * 1e6, 3)} us"
    if seconds < 1.0:
        return f"{_trim(seconds * 1e3, 3)} ms"
    if seconds < SECONDS_PER_MINUTE:
        return f"{_trim(seconds, 3)} s"
    if seconds < SECONDS_PER_HOUR:
        return f"{_trim(seconds / SECONDS_PER_MINUTE, 3)} min"
    if seconds < SECONDS_PER_DAY:
        return f"{_trim(seconds / SECONDS_PER_HOUR, 3)} h"
    return f"{_trim(seconds / SECONDS_PER_DAY, 3)} days"


def format_bytes(n_bytes: float) -> str:
    """Render a byte count with IEC prefixes (KiB/MiB/GiB/TiB)."""
    if n_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {n_bytes}")
    for step, prefix in ((TIB, "TiB"), (GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if n_bytes >= step:
            return f"{_trim(n_bytes / step, 3)} {prefix}"
    return f"{_trim(n_bytes, 3)} B"


def _trim(value: float, precision: int) -> str:
    """Format a float to ``precision`` significant digits without trailing
    zeros ('312', '1.84', '0.006')."""
    if value == 0:
        return "0"
    digits = max(precision - 1 - int(math.floor(math.log10(abs(value)))), 0)
    text = f"{value:.{digits}f}"
    if "." in text:
        text = text.rstrip("0").rstrip(".")
    return text


def relative_error(predicted: float, reference: float) -> float:
    """Fractional error ``|predicted - reference| / |reference|``.

    This is the metric the paper quotes ("max. observed error is limited
    to 12%").  Raises :class:`ZeroDivisionError` if ``reference`` is zero.
    """
    return abs(predicted - reference) / abs(reference)


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two (1, 2, 4, ...)."""
    return value >= 1 and (value & (value - 1)) == 0


def divisors(value: int) -> List[int]:
    """All positive divisors of ``value`` in ascending order.

    Used by the design-space explorer to factor accelerator counts into
    parallelism degrees.
    """
    if value < 1:
        raise ValueError(f"value must be >= 1, got {value}")
    small: List[int] = []
    large: List[int] = []
    step = 1
    limit = int(math.isqrt(value))
    for candidate in range(1, limit + 1, step):
        if value % candidate == 0:
            small.append(candidate)
            if candidate != value // candidate:
                large.append(value // candidate)
    return small + large[::-1]
