"""Serving-latency benchmark: cold CLI vs warm daemon.

The daemon's reason to exist is the process-wide compiled-sweep cache:
a one-shot ``amped estimate`` pays interpreter start-up plus the full
table build on every invocation, while the daemon pays them once and
answers repeats from warm tables.  This benchmark measures that gap
for the canonical repeated request (Megatron-1T on the 1024-A100
cluster, the paper's Case Study I config) plus tail latency under a
concurrent burst, and writes ``BENCH_serve.json`` so
``bench_gate.py`` can hold the line against regressions.

Phases recorded:

- ``cold_cli`` — wall-clock of one ``python -m repro estimate``
  subprocess (optional: skipped by the gate, which only compares
  in-process rates).
- ``first_request`` — the daemon's first estimate (cache cold).
- ``warm`` — sequential repeats against the warm cache (p50 latency,
  requests/s).
- ``burst`` — concurrent threads hammering the same request (p50/p99,
  requests/s, error count).
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List

from repro.search.benchmark import GATE_TOLERANCE

#: The repeated request: Case Study I's headline configuration.
CANONICAL_REQUEST = {"model": "megatron-1t", "nodes": 128,
                     "accel_per_node": 8, "tp": 8, "pp": 16, "dp": 8,
                     "batch": 2048}

SERVE_BENCH_SCHEMA = {
    "benchmark": str,
    "request": dict,
    "first_request": dict,
    "warm": dict,
    "burst": dict,
}

#: Phases whose ``requests_per_s`` the CI gate rate-compares when both
#: the measured and committed payloads carry them.
GATED_SERVE_PHASES = ("warm", "burst")


def _percentile(samples: List[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _connect(host: str, port: int) -> "http.client.HTTPConnection":
    """A persistent keep-alive connection with Nagle disabled (the
    header/body write split otherwise costs ~40ms of delayed-ACK
    stall per request)."""
    connection = http.client.HTTPConnection(host, port, timeout=120.0)
    connection.connect()
    connection.sock.setsockopt(socket.IPPROTO_TCP,
                               socket.TCP_NODELAY, 1)
    return connection


def _post(connection: "http.client.HTTPConnection",
          body: bytes) -> float:
    """One estimate round-trip on a persistent keep-alive connection;
    returns its latency in seconds."""
    started = time.perf_counter()
    connection.request("POST", "/v1/estimate", body=body,
                       headers={"Content-Type": "application/json"})
    reply = connection.getresponse()
    payload = reply.read()
    if reply.status != 200:
        raise RuntimeError(
            f"estimate returned {reply.status}: {payload[:200]!r}")
    return time.perf_counter() - started


def _time_cold_cli_s() -> float:
    """Wall-clock of one cold ``amped estimate`` subprocess."""
    request = CANONICAL_REQUEST
    command = [sys.executable, "-m", "repro", "estimate",
               "--model", request["model"],
               "--nodes", str(request["nodes"]),
               "--accel-per-node", str(request["accel_per_node"]),
               "--tp", str(request["tp"]),
               "--pp", str(request["pp"]),
               "--dp", str(request["dp"]),
               "--batch", str(request["batch"])]
    started = time.perf_counter()
    completed = subprocess.run(command, capture_output=True, text=True,
                               env=dict(os.environ), timeout=300)
    elapsed = time.perf_counter() - started
    if completed.returncode != 0:
        raise RuntimeError(
            f"cold CLI estimate failed ({completed.returncode}): "
            f"{completed.stderr[-500:]}")
    return elapsed


def _warm_round(connection: "http.client.HTTPConnection",
                body: bytes, repeats: int) -> Dict[str, Any]:
    started = time.perf_counter()
    latencies = [_post(connection, body) for _ in range(repeats)]
    elapsed = time.perf_counter() - started
    return {
        "repeats": repeats,
        "p50_seconds": _percentile(latencies, 0.50),
        "p99_seconds": _percentile(latencies, 0.99),
        "requests_per_s": repeats / elapsed,
    }


def _burst_round(host: str, port: int, body: bytes,
                 burst_threads: int,
                 burst_requests: int) -> Dict[str, Any]:
    latencies: List[float] = []
    errors = [0]
    lock = threading.Lock()
    per_thread = max(1, burst_requests // burst_threads)

    def hammer() -> None:
        connection = _connect(host, port)
        try:
            for _ in range(per_thread):
                try:
                    latency = _post(connection, body)
                except Exception:  # noqa: BLE001 — supervised boundary: any failure counts as a burst error
                    with lock:
                        errors[0] += 1
                else:
                    with lock:
                        latencies.append(latency)
        finally:
            connection.close()

    threads = [threading.Thread(target=hammer)
               for _ in range(burst_threads)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return {
        "threads": burst_threads,
        "requests": len(latencies),
        "errors": errors[0],
        "p50_seconds": (_percentile(latencies, 0.50)
                        if latencies else float("nan")),
        "p99_seconds": (_percentile(latencies, 0.99)
                        if latencies else float("nan")),
        "requests_per_s": len(latencies) / elapsed,
    }


def run_serve_benchmark(include_cold_cli: bool = True,
                        repeats: int = 64,
                        rounds: int = 3,
                        burst_threads: int = 8,
                        burst_requests: int = 96) -> Dict[str, Any]:
    """Measure the daemon against the canonical repeated request.

    The warm and burst phases each run ``rounds`` times and report the
    fastest round (best-of-N: sub-millisecond HTTP round-trips are
    noise-dominated, and taking the best on both the baseline and the
    gate side keeps the regression comparison stable).  Errors are
    summed across every round — a failure anywhere is real.
    """
    from repro.serve.server import ServeConfig, ServeDaemon

    body = json.dumps(CANONICAL_REQUEST).encode()
    payload: Dict[str, Any] = {
        "benchmark": "serve_latency",
        "request": dict(CANONICAL_REQUEST),
    }

    if include_cold_cli:
        cold_seconds = _time_cold_cli_s()
        payload["cold_cli"] = {"seconds": cold_seconds}

    daemon = ServeDaemon(ServeConfig(port=0, deadline_s=120.0,
                                     queue_limit=max(64, burst_requests)))
    host, port = daemon.start()
    connection = _connect(host, port)
    try:
        first = _post(connection, body)
        payload["first_request"] = {"seconds": first}

        warm_rounds = [_warm_round(connection, body, repeats)
                       for _ in range(rounds)]
        payload["warm"] = max(warm_rounds,
                              key=lambda r: r["requests_per_s"])

        burst_rounds = [_burst_round(host, port, body, burst_threads,
                                     burst_requests)
                        for _ in range(rounds)]
        best_burst = max(burst_rounds,
                         key=lambda r: r["requests_per_s"])
        best_burst["errors"] = sum(r["errors"] for r in burst_rounds)
        payload["burst"] = best_burst
    finally:
        connection.close()
        daemon.shutdown()

    if include_cold_cli:
        payload["warm_speedup_vs_cold_cli"] = (
            payload["cold_cli"]["seconds"]
            / payload["warm"]["p50_seconds"])
    return payload


def validate_serve_bench(payload: dict) -> None:
    """Raise ``ValueError`` when ``payload`` violates the schema."""
    if not isinstance(payload, dict):
        raise ValueError(f"payload must be a dict, got {type(payload)}")
    for key, expected in SERVE_BENCH_SCHEMA.items():
        if key not in payload:
            raise ValueError(f"payload missing key {key!r}")
        if not isinstance(payload[key], expected):
            raise ValueError(
                f"{key!r} must be {expected.__name__}, "
                f"got {payload[key]!r}")
    for phase in GATED_SERVE_PHASES:
        rate = payload[phase].get("requests_per_s")
        if not isinstance(rate, (int, float)) or rate <= 0:
            raise ValueError(
                f"{phase}.requests_per_s must be a positive number, "
                f"got {rate!r}")


def write_serve_bench_json(payload: dict, path) -> Path:
    """Validate and write ``payload`` to ``path``; returns the path."""
    validate_serve_bench(payload)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return target


def check_serve_regression(measured: dict, committed: dict,
                           tolerance: float = GATE_TOLERANCE
                           ) -> List[str]:
    """One failure string per gated phase whose measured
    ``requests_per_s`` fell below ``(1 - tolerance)`` of the committed
    value.  Only phases present in *both* payloads are compared
    (one-sided: faster than baseline is progress)."""
    failures = []
    for phase in GATED_SERVE_PHASES:
        if phase not in measured or phase not in committed:
            continue
        rate = measured[phase].get("requests_per_s")
        baseline = committed[phase].get("requests_per_s")
        if not isinstance(rate, (int, float)) \
                or not isinstance(baseline, (int, float)):
            continue
        floor = (1.0 - tolerance) * baseline
        if rate < floor:
            failures.append(
                f"serve {phase} throughput regressed: "
                f"{rate:.1f} requests/s is below the "
                f"{floor:.1f} floor (committed {baseline:.1f}, "
                f"tolerance {tolerance:.0%})")
    return failures
