"""Serving-latency benchmark: cold CLI vs warm daemon.

The daemon's reason to exist is the process-wide compiled-sweep cache:
a one-shot ``amped estimate`` pays interpreter start-up plus the full
table build on every invocation, while the daemon pays them once and
answers repeats from warm tables.  This benchmark measures that gap
for the canonical repeated request (Megatron-1T on the 1024-A100
cluster, the paper's Case Study I config) plus tail latency under a
concurrent burst, and writes ``BENCH_serve.json`` so
``bench_gate.py`` can hold the line against regressions.

Phases recorded:

- ``cold_cli`` — wall-clock of one ``python -m repro estimate``
  subprocess (optional: skipped by the gate, which only compares
  in-process rates).
- ``first_request`` — the daemon's first estimate (cache cold).
- ``warm`` — sequential repeats against the warm cache (p50 latency,
  requests/s).
- ``burst`` — concurrent threads hammering the same request (p50/p99,
  requests/s, error count).
- ``multi_worker`` — the same burst against pre-fork daemon
  subprocesses (``--workers N`` vs ``--workers 1``), measuring the
  fleet's scale-out (optional: absent where ``os.fork`` is).
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.search.benchmark import GATE_TOLERANCE

#: The repeated request: Case Study I's headline configuration.
CANONICAL_REQUEST = {"model": "megatron-1t", "nodes": 128,
                     "accel_per_node": 8, "tp": 8, "pp": 16, "dp": 8,
                     "batch": 2048}

SERVE_BENCH_SCHEMA = {
    "benchmark": str,
    "request": dict,
    "first_request": dict,
    "warm": dict,
    "burst": dict,
}

#: Phases whose ``requests_per_s`` the CI gate rate-compares when both
#: the measured and committed payloads carry them.  The multi-worker
#: phase is deliberately absent: its rate on a small runner is
#: dominated by fork/scheduler noise, so the gate holds it to absolute
#: one-sided floors (zero errors, and the scale-out bar on real
#: multi-core runners) instead of a committed-baseline comparison.
GATED_SERVE_PHASES = ("warm", "burst")

#: The pre-fork fleet's burst must reach at least this multiple of a
#: single worker's on a runner with >= MULTIWORKER_MIN_CORES cores.
MIN_MULTIWORKER_SPEEDUP = 2.0

#: Worker-count ceiling for the multi-worker phase (also capped by the
#: runner's core count, floor 2 — the phase still runs on small
#: machines, the scale-out assertion just needs real cores).
MULTIWORKER_MAX_WORKERS = 4

#: Cores the runner needs before ``bench_serve.py`` asserts the
#: multi-worker burst's >= 2x scale-out over a single worker.
MULTIWORKER_MIN_CORES = 4


def _percentile(samples: List[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _connect(host: str, port: int) -> "http.client.HTTPConnection":
    """A persistent keep-alive connection with Nagle disabled (the
    header/body write split otherwise costs ~40ms of delayed-ACK
    stall per request)."""
    connection = http.client.HTTPConnection(host, port, timeout=120.0)
    connection.connect()
    connection.sock.setsockopt(socket.IPPROTO_TCP,
                               socket.TCP_NODELAY, 1)
    return connection


def _post(connection: "http.client.HTTPConnection",
          body: bytes) -> float:
    """One estimate round-trip on a persistent keep-alive connection;
    returns its latency in seconds."""
    started = time.perf_counter()
    connection.request("POST", "/v1/estimate", body=body,
                       headers={"Content-Type": "application/json"})
    reply = connection.getresponse()
    payload = reply.read()
    if reply.status != 200:
        raise RuntimeError(
            f"estimate returned {reply.status}: {payload[:200]!r}")
    return time.perf_counter() - started


def _time_cold_cli_s() -> float:
    """Wall-clock of one cold ``amped estimate`` subprocess."""
    request = CANONICAL_REQUEST
    command = [sys.executable, "-m", "repro", "estimate",
               "--model", request["model"],
               "--nodes", str(request["nodes"]),
               "--accel-per-node", str(request["accel_per_node"]),
               "--tp", str(request["tp"]),
               "--pp", str(request["pp"]),
               "--dp", str(request["dp"]),
               "--batch", str(request["batch"])]
    started = time.perf_counter()
    completed = subprocess.run(command, capture_output=True, text=True,
                               env=dict(os.environ), timeout=300)
    elapsed = time.perf_counter() - started
    if completed.returncode != 0:
        raise RuntimeError(
            f"cold CLI estimate failed ({completed.returncode}): "
            f"{completed.stderr[-500:]}")
    return elapsed


def _warm_round(connection: "http.client.HTTPConnection",
                body: bytes, repeats: int) -> Dict[str, Any]:
    started = time.perf_counter()
    latencies = [_post(connection, body) for _ in range(repeats)]
    elapsed = time.perf_counter() - started
    return {
        "repeats": repeats,
        "p50_seconds": _percentile(latencies, 0.50),
        "p99_seconds": _percentile(latencies, 0.99),
        "requests_per_s": repeats / elapsed,
    }


def _burst_round(host: str, port: int, body: bytes,
                 burst_threads: int,
                 burst_requests: int) -> Dict[str, Any]:
    latencies: List[float] = []
    errors = [0]
    lock = threading.Lock()
    per_thread = max(1, burst_requests // burst_threads)

    def hammer() -> None:
        connection = _connect(host, port)
        try:
            for _ in range(per_thread):
                try:
                    latency = _post(connection, body)
                except Exception:  # noqa: BLE001 — supervised boundary: any failure counts as a burst error
                    with lock:
                        errors[0] += 1
                else:
                    with lock:
                        latencies.append(latency)
        finally:
            connection.close()

    threads = [threading.Thread(target=hammer)
               for _ in range(burst_threads)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return {
        "threads": burst_threads,
        "requests": len(latencies),
        "errors": errors[0],
        "p50_seconds": (_percentile(latencies, 0.50)
                        if latencies else float("nan")),
        "p99_seconds": (_percentile(latencies, 0.99)
                        if latencies else float("nan")),
        "requests_per_s": len(latencies) / elapsed,
    }


def _await_serving(proc: "subprocess.Popen",
                   timeout: float = 180.0) -> tuple:
    """Parse the daemon's ``serving on http://host:port`` line."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            if proc.poll() is not None:
                raise RuntimeError(
                    f"daemon exited with {proc.returncode} before "
                    f"announcing its address")
            time.sleep(0.05)
            continue
        match = re.search(r"serving on http://([^\s:]+):(\d+)", line)
        if match:
            return match.group(1), int(match.group(2))
    raise RuntimeError("daemon did not announce within the timeout")


def _await_ready(host: str, port: int,
                 timeout: float = 120.0) -> None:
    """Poll ``/readyz`` until the daemon (or fleet quorum) is ready."""
    deadline = time.monotonic() + timeout
    url = f"http://{host}:{port}/readyz"
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url, timeout=10) as reply:
                if reply.status == 200:
                    return
        except urllib.error.HTTPError:
            pass  # 503: not ready yet
        except OSError:
            pass  # socket not accepting yet
        time.sleep(0.1)
    raise RuntimeError(f"daemon at {host}:{port} never became ready")


def _subprocess_daemon_burst(workers: int, body: bytes,
                             burst_threads: int, burst_requests: int,
                             rounds: int) -> Dict[str, Any]:
    """Best-of-``rounds`` burst against a daemon subprocess running
    ``--workers N`` (errors summed across every round)."""
    command = [sys.executable, "-m", "repro.serve",
               "--workers", str(workers), "--port", "0",
               "--warm", CANONICAL_REQUEST["model"],
               "--queue-limit", str(max(64, burst_requests)),
               "--deadline", "120", "--log-level", "error"]
    proc = subprocess.Popen(command, stdout=subprocess.PIPE,
                            stderr=subprocess.DEVNULL, text=True,
                            env=dict(os.environ))
    try:
        host, port = _await_serving(proc)
        _await_ready(host, port)
        burst_rounds = [_burst_round(host, port, body, burst_threads,
                                     burst_requests)
                        for _ in range(rounds)]
        best = max(burst_rounds, key=lambda r: r["requests_per_s"])
        best["errors"] = sum(r["errors"] for r in burst_rounds)
        return best
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=90)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def run_multiworker_benchmark(workers: Optional[int] = None,
                              burst_threads: int = 8,
                              burst_requests: int = 96,
                              rounds: int = 3
                              ) -> Optional[Dict[str, Any]]:
    """Burst throughput of the pre-fork fleet vs a single worker.

    Both measurements run as real daemon subprocesses (``--workers N``
    and ``--workers 1``), so the comparison includes fork, socket
    strategy and board overhead — the whole multi-worker product, not
    just the handler path.  Returns ``None`` on platforms without
    ``os.fork`` (the payload then lacks the phase; the gate skips it).

    ``speedup_vs_single`` only means scale-out on a multi-core runner:
    on fewer than :data:`MULTIWORKER_MIN_CORES` cores the workers
    time-slice one CPU and the ratio hovers around 1x, which is why
    ``bench_serve.py`` gates its >= 2x assertion on the core count
    (recorded here as ``cpu_count``).
    """
    if not hasattr(os, "fork"):
        return None
    cpu_count = os.cpu_count() or 1
    if workers is None:
        workers = max(2, min(MULTIWORKER_MAX_WORKERS, cpu_count))
    body = json.dumps(CANONICAL_REQUEST).encode()
    single = _subprocess_daemon_burst(1, body, burst_threads,
                                      burst_requests, rounds)
    multi = _subprocess_daemon_burst(workers, body, burst_threads,
                                     burst_requests, rounds)
    return dict(
        multi,
        workers=workers,
        cpu_count=cpu_count,
        single_worker_requests_per_s=single["requests_per_s"],
        single_worker_errors=single["errors"],
        speedup_vs_single=(multi["requests_per_s"]
                           / max(single["requests_per_s"], 1e-12)),
    )


def run_serve_benchmark(include_cold_cli: bool = True,
                        include_multiworker: bool = True,
                        repeats: int = 64,
                        rounds: int = 3,
                        burst_threads: int = 8,
                        burst_requests: int = 96) -> Dict[str, Any]:
    """Measure the daemon against the canonical repeated request.

    The warm and burst phases each run ``rounds`` times and report the
    fastest round (best-of-N: sub-millisecond HTTP round-trips are
    noise-dominated, and taking the best on both the baseline and the
    gate side keeps the regression comparison stable).  Errors are
    summed across every round — a failure anywhere is real.
    """
    from repro.serve.server import ServeConfig, ServeDaemon

    body = json.dumps(CANONICAL_REQUEST).encode()
    payload: Dict[str, Any] = {
        "benchmark": "serve_latency",
        "request": dict(CANONICAL_REQUEST),
    }

    if include_cold_cli:
        cold_seconds = _time_cold_cli_s()
        payload["cold_cli"] = {"seconds": cold_seconds}

    daemon = ServeDaemon(ServeConfig(port=0, deadline_s=120.0,
                                     queue_limit=max(64, burst_requests)))
    host, port = daemon.start()
    connection = _connect(host, port)
    try:
        first = _post(connection, body)
        payload["first_request"] = {"seconds": first}

        warm_rounds = [_warm_round(connection, body, repeats)
                       for _ in range(rounds)]
        payload["warm"] = max(warm_rounds,
                              key=lambda r: r["requests_per_s"])

        burst_rounds = [_burst_round(host, port, body, burst_threads,
                                     burst_requests)
                        for _ in range(rounds)]
        best_burst = max(burst_rounds,
                         key=lambda r: r["requests_per_s"])
        best_burst["errors"] = sum(r["errors"] for r in burst_rounds)
        payload["burst"] = best_burst
    finally:
        connection.close()
        daemon.shutdown()

    if include_multiworker:
        multiworker = run_multiworker_benchmark(
            burst_threads=burst_threads,
            burst_requests=burst_requests)
        if multiworker is not None:
            payload["multi_worker"] = multiworker

    if include_cold_cli:
        payload["warm_speedup_vs_cold_cli"] = (
            payload["cold_cli"]["seconds"]
            / payload["warm"]["p50_seconds"])
    return payload


def validate_serve_bench(payload: dict) -> None:
    """Raise ``ValueError`` when ``payload`` violates the schema."""
    if not isinstance(payload, dict):
        raise ValueError(f"payload must be a dict, got {type(payload)}")
    for key, expected in SERVE_BENCH_SCHEMA.items():
        if key not in payload:
            raise ValueError(f"payload missing key {key!r}")
        if not isinstance(payload[key], expected):
            raise ValueError(
                f"{key!r} must be {expected.__name__}, "
                f"got {payload[key]!r}")
    for phase in GATED_SERVE_PHASES:
        if phase not in SERVE_BENCH_SCHEMA and phase not in payload:
            continue  # optional phase (e.g. multi_worker sans fork)
        rate = payload[phase].get("requests_per_s")
        if not isinstance(rate, (int, float)) or rate <= 0:
            raise ValueError(
                f"{phase}.requests_per_s must be a positive number, "
                f"got {rate!r}")
    multiworker = payload.get("multi_worker")
    if multiworker is not None:
        for key in ("workers", "cpu_count", "speedup_vs_single",
                    "single_worker_requests_per_s"):
            if key not in multiworker:
                raise ValueError(
                    f"'multi_worker' missing key {key!r}")


def write_serve_bench_json(payload: dict, path) -> Path:
    """Validate and write ``payload`` to ``path``; returns the path."""
    validate_serve_bench(payload)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return target


def check_serve_regression(measured: dict, committed: dict,
                           tolerance: float = GATE_TOLERANCE
                           ) -> List[str]:
    """One failure string per gated phase whose measured
    ``requests_per_s`` fell below ``(1 - tolerance)`` of the committed
    value.  Only phases present in *both* payloads are compared
    (one-sided: faster than baseline is progress)."""
    failures = []
    for phase in GATED_SERVE_PHASES:
        if phase not in measured or phase not in committed:
            continue
        rate = measured[phase].get("requests_per_s")
        baseline = committed[phase].get("requests_per_s")
        if not isinstance(rate, (int, float)) \
                or not isinstance(baseline, (int, float)):
            continue
        floor = (1.0 - tolerance) * baseline
        if rate < floor:
            failures.append(
                f"serve {phase} throughput regressed: "
                f"{rate:.1f} requests/s is below the "
                f"{floor:.1f} floor (committed {baseline:.1f}, "
                f"tolerance {tolerance:.0%})")
    multiworker = measured.get("multi_worker")
    if multiworker is not None:
        if multiworker.get("errors"):
            failures.append(
                f"serve multi-worker burst dropped "
                f"{multiworker['errors']} requests")
        if (multiworker.get("cpu_count", 0) >= MULTIWORKER_MIN_CORES
                and multiworker.get("workers", 0) >= 2
                and multiworker.get("speedup_vs_single", 0.0)
                < MIN_MULTIWORKER_SPEEDUP):
            failures.append(
                f"serve multi-worker burst scaled only "
                f"{multiworker['speedup_vs_single']:.2f}x over a "
                f"single worker on {multiworker['cpu_count']} cores "
                f"(bar: {MIN_MULTIWORKER_SPEEDUP:.0f}x)")
    return failures
