"""Circuit breaker + degradation ladder for the estimation service.

Two cooperating pieces of failure containment:

- :class:`DegradationLadder` mirrors ``run_sweep``'s permanent-
  degradation policy at the request boundary: evaluation quality steps
  down ``vectorized → compiled → collapsed → serial`` one rung per
  breaker trip, trading throughput for simpler machinery, and steps
  back up (never above its starting rung) after sustained recovery.
- :class:`CircuitBreaker` is the classic three-state machine
  (``closed → open → half_open``) around the evaluation path: repeated
  evaluation failures trip it, an open breaker sheds requests
  instantly with a retry hint instead of queuing them onto a broken
  backend, and after a cooldown a single half-open probe request
  decides between recovery and re-tripping.

Both are thread-safe, observable (``serve.breaker.*`` and
``serve.degradation_rung`` instruments) and take an injectable clock
so the fault-injection suite can drive every transition
deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.obs.metrics import get_metrics
from repro.search.vectorized import HAVE_NUMPY

#: The degradation ladder, best rung first.  Each rung names the
#: coarse serving mode; :data:`RUNG_EVALUATION_PATHS` maps it to the
#: estimator's ``evaluation_path`` vocabulary (the "serial" rung is
#: the per-layer reference walk — slowest, least machinery).
LADDER_RUNGS = ("vectorized", "compiled", "collapsed", "serial")

RUNG_EVALUATION_PATHS = {
    "vectorized": "vectorized",
    "compiled": "compiled",
    "collapsed": "collapsed",
    "serial": "per_layer",
}

#: Gauge encoding of breaker states.
_STATE_VALUES = {"closed": 0.0, "half_open": 1.0, "open": 2.0}


class DegradationLadder:
    """Current evaluation rung, stepped by the circuit breaker."""

    def __init__(self, start: Optional[str] = None) -> None:
        if start is None:
            start = "vectorized" if HAVE_NUMPY else "compiled"
        if start not in LADDER_RUNGS:
            raise ConfigurationError(
                f"degradation rung must be one of {LADDER_RUNGS}, "
                f"got {start!r}")
        self._start_index = LADDER_RUNGS.index(start)
        self._index = self._start_index
        self._lock = threading.Lock()
        self._publish()

    def _publish(self) -> None:
        get_metrics().gauge("serve.degradation_rung").set(
            float(self._index))

    @property
    def current(self) -> str:
        """The active rung name."""
        with self._lock:
            return LADDER_RUNGS[self._index]

    @property
    def evaluation_path(self) -> str:
        """The estimator ``evaluation_path`` for the active rung."""
        return RUNG_EVALUATION_PATHS[self.current]

    def degrade(self) -> bool:
        """Step one rung down; False when already at the bottom."""
        with self._lock:
            if self._index >= len(LADDER_RUNGS) - 1:
                return False
            self._index += 1
            self._publish()
            return True

    def restore(self) -> bool:
        """Step one rung up, never above the starting rung; False when
        already there."""
        with self._lock:
            if self._index <= self._start_index:
                return False
            self._index -= 1
            self._publish()
            return True


class CircuitBreaker:
    """Three-state breaker around the evaluation backend.

    ``closed``: requests flow; ``failure_threshold`` consecutive
    failures trip it (each trip also steps the ladder down one rung).
    ``open``: :meth:`admit` sheds instantly, reporting the seconds
    until the next probe.  After ``cooldown_s`` the first admission
    becomes the half-open probe.
    ``half_open``: exactly one probe in flight; its success closes the
    breaker, its failure re-opens it (and degrades another rung).
    While closed, ``recovery_successes`` consecutive successes step
    the ladder back *up* one rung — sustained health undoes the
    degradation the same gradual way it accrued.
    """

    def __init__(self, failure_threshold: int = 3,
                 cooldown_s: float = 5.0,
                 recovery_successes: int = 4,
                 ladder: Optional[DegradationLadder] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, "
                f"got {failure_threshold}")
        if cooldown_s < 0:
            raise ConfigurationError(
                f"cooldown_s must be >= 0, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.recovery_successes = recovery_successes
        self.ladder = ladder if ladder is not None else DegradationLadder()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._consecutive_successes = 0
        self._opened_at = 0.0
        self._last_error = ""
        self._publish()

    def _publish(self) -> None:
        get_metrics().gauge("serve.breaker.state").set(
            _STATE_VALUES[self._state])

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def admit(self) -> Optional[float]:
        """``None`` to admit the request; otherwise the suggested
        ``Retry-After`` seconds while the breaker is open.

        The first admission after the cooldown elapses transitions to
        ``half_open`` and *is* admitted — it becomes the probe.
        """
        with self._lock:
            if self._state != "open":
                return None
            remaining = self.cooldown_s - (self._clock()
                                           - self._opened_at)
            if remaining > 0:
                return remaining
            self._transition("half_open")
            return None

    def record_success(self) -> None:
        """One successful evaluation: close a half-open breaker, and
        credit sustained health toward a ladder restore."""
        restore = False
        with self._lock:
            self._consecutive_failures = 0
            if self._state == "half_open":
                self._transition("closed")
                self._consecutive_successes = 1
            elif self._state == "closed":
                self._consecutive_successes += 1
                if self._consecutive_successes \
                        >= self.recovery_successes:
                    self._consecutive_successes = 0
                    restore = True
        if restore and self.ladder.restore():
            get_metrics().counter("serve.ladder.restored").inc()

    def record_failure(self, error: BaseException) -> None:
        """One failed evaluation: re-open a half-open breaker
        immediately, or count toward the closed-state threshold."""
        tripped = False
        with self._lock:
            self._consecutive_successes = 0
            self._last_error = repr(error)
            if self._state == "half_open":
                tripped = True
            elif self._state == "closed":
                self._consecutive_failures += 1
                if self._consecutive_failures \
                        >= self.failure_threshold:
                    tripped = True
            if tripped:
                self._consecutive_failures = 0
                self._opened_at = self._clock()
                self._transition("open")
        if tripped:
            metrics = get_metrics()
            metrics.counter("serve.breaker.opened").inc()
            if self.ladder.degrade():
                metrics.counter("serve.ladder.degraded").inc()

    def _transition(self, state: str) -> None:
        # Caller holds the lock.
        if state != self._state:
            self._state = state  # amplint: disable=AMP204 — caller holds self._lock (documented contract above)
            get_metrics().counter("serve.breaker.transitions").inc()
            self._publish()

    def describe(self) -> Dict[str, object]:
        """State summary for ``/readyz`` and logs."""
        rung = self.ladder.current
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_s": self.cooldown_s,
                "last_error": self._last_error,
                "rung": rung,
            }
