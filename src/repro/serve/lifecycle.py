"""Request lifecycle for the estimation service.

:class:`EstimationService` owns everything between "a validated
request arrived" and "a status + JSON payload is ready":

- **admission control** — a bounded queue; when it is full the request
  is shed immediately with :class:`~repro.errors.ServiceOverloaded`
  (HTTP 429 + ``Retry-After``) instead of letting latency grow without
  bound, and an open circuit breaker sheds before the queue is even
  consulted.
- **deadlines** — every request carries an absolute deadline (client
  ``deadline_s`` capped by the server default).  Requests that expire
  while queued are answered 504 without evaluating; evaluations that
  overrun are abandoned cooperatively (the worker thread is left to
  finish as a daemon — the estimator has no kill switch, but the
  *request* never waits past its deadline and the breaker records the
  overrun so repeats trip it).
- **coalescing** — each dispatch drains up to ``max_batch`` queued
  requests and groups them by :meth:`EstimateRequest.group_key`; a
  group shares one template + compiled-sweep build, and on the
  vectorized rung evaluates as a single batched array pass.
- **graceful degradation** — evaluation failures feed the
  :class:`~repro.serve.breaker.CircuitBreaker`, which steps the
  :class:`~repro.serve.breaker.DegradationLadder` down
  ``vectorized → compiled → collapsed → serial`` and probes its way
  back up.
- **drain** — :meth:`reject_new` flips the service into draining mode
  (new submissions get a structured 503) while queued and in-flight
  requests complete; :meth:`stop` then joins the dispatcher.

The evaluation callable is injectable so the fault-injection suite can
simulate hangs, crashes and slow backends without touching the model.
"""

from __future__ import annotations

import itertools
import logging
import os
import queue
import secrets
import threading
import time
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.model import AMPeD
from repro.errors import (
    DeadlineExceeded,
    MappingError,
    ReproError,
    ServiceOverloaded,
)
from repro.hardware.catalog import ACCELERATORS
from repro.hardware.interconnect import IB_EDR, IB_HDR, IB_NDR, NVLINK3
from repro.hardware.node import NodeSpec
from repro.hardware.system import SystemSpec
from repro.obs.metrics import get_metrics
from repro.obs.trace import span
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.parallelism.spec import spec_from_totals
from repro.search.compiler import compile_sweep, compiled_cache_stats
from repro.search.dse import evaluate_candidate
from repro.search.vectorized import HAVE_NUMPY, evaluate_chunk
from repro.serve.breaker import (
    RUNG_EVALUATION_PATHS,
    CircuitBreaker,
    DegradationLadder,
)
from repro.serve.validation import EstimateRequest, error_body
from repro.transformer.zoo import get_model

_LOG = logging.getLogger("repro.serve")

_INTER_LINKS = {"edr": IB_EDR, "hdr": IB_HDR, "ndr": IB_NDR}

#: Dispatcher shutdown sentinel.
_STOP = object()

#: Monotonic per-process sequence folded into trace ids.
_TRACE_SEQUENCE = itertools.count(1)


def new_trace_id() -> str:
    """A unique request correlation id.

    Stamped on the access log line, the ``serve.evaluate`` span and the
    response, so one grep ties a daemon log entry to the matching span
    in an exported trace.  Process-unique by construction (pid +
    monotonic sequence) with a random suffix so ids stay distinct
    across daemon restarts that reuse a pid.
    """
    return (f"{os.getpid():08x}-{next(_TRACE_SEQUENCE):06x}-"
            f"{secrets.token_hex(4)}")

#: One response: HTTP status + JSON-serializable payload.
Response = Tuple[int, Dict[str, Any]]


class PendingRequest:
    """One admitted request awaiting its response.

    The HTTP handler waits on :attr:`done` (bounded by the request
    deadline) and reads :attr:`status` / :attr:`payload` once set.  If
    the handler gives up first it flips :attr:`abandoned` so the
    dispatcher can skip the evaluation entirely when the request is
    still queued.
    """

    def __init__(self, request: EstimateRequest, deadline: float,
                 enqueued_at: float, trace_id: str = "") -> None:
        self.request = request
        self.deadline = deadline
        self.enqueued_at = enqueued_at
        self.trace_id = trace_id or new_trace_id()
        self.done = threading.Event()
        self.status = 0
        self.payload: Dict[str, Any] = {}
        self.abandoned = False

    def resolve(self, status: int, payload: Dict[str, Any]) -> None:
        # The Event.set() below is the publication point: the handler
        # only reads status/payload after done.wait() returns, so the
        # Event provides the happens-before edge a lock would.
        self.status = status    # amplint: disable=AMP204 — published by done.set()
        self.payload = payload  # amplint: disable=AMP204 — published by done.set()
        self.done.set()


def _call_with_deadline(func: Callable[[], Any],
                        timeout: float) -> Any:
    """Run ``func`` on a worker thread, waiting at most ``timeout``.

    Raises :class:`~repro.errors.DeadlineExceeded` on overrun.  The
    worker thread is a daemon: a genuinely hung evaluation cannot be
    killed from Python, but it also cannot stall the dispatcher or
    block process exit — it is simply disowned, and the breaker trips
    if overruns repeat.
    """
    box: Dict[str, Any] = {}
    finished = threading.Event()

    def runner() -> None:
        try:
            box["value"] = func()
        except BaseException as error:  # noqa: BLE001 — supervised boundary: re-raised on the caller's thread
            box["error"] = error
        finally:
            finished.set()

    worker = threading.Thread(target=runner, name="serve-eval",
                              daemon=True)
    worker.start()
    if not finished.wait(max(0.0, timeout)):
        raise DeadlineExceeded(
            f"evaluation exceeded its {timeout:.3f}s deadline",
            deadline_s=timeout)
    if "error" in box:
        raise box["error"]
    return box["value"]


def system_for(request: EstimateRequest) -> SystemSpec:
    """The :class:`SystemSpec` a request describes (mirrors the CLI's
    ``--nodes/--accel-per-node/--nics/--inter`` construction)."""
    node = NodeSpec(
        accelerator=ACCELERATORS[request.accelerator],
        n_accelerators=request.accel_per_node,
        intra_link=NVLINK3,
        inter_link=_INTER_LINKS[request.inter],
        n_nics=request.nics,
    )
    return SystemSpec(node=node, n_nodes=request.nodes)


class EstimationService:
    """Admission queue + dispatcher + hardened evaluation pipeline."""

    def __init__(self, queue_limit: int = 64,
                 default_deadline_s: float = 10.0,
                 max_batch: int = 16,
                 breaker: Optional[CircuitBreaker] = None,
                 ladder: Optional[DegradationLadder] = None,
                 efficiency: Optional[object] = None,
                 evaluate: Optional[
                     Callable[[EstimateRequest], Response]] = None,
                 drain_timeout_s: float = 10.0,
                 clock: Callable[[], float] = time.monotonic,
                 prewarm: bool = False) -> None:
        self.queue_limit = queue_limit
        self.default_deadline_s = default_deadline_s
        self.max_batch = max_batch
        if breaker is not None:
            self.breaker = breaker
            self.ladder = breaker.ladder
        else:
            self.ladder = ladder if ladder is not None \
                else DegradationLadder()
            self.breaker = CircuitBreaker(ladder=self.ladder)
        self.efficiency = efficiency if efficiency is not None \
            else CASE_STUDY_EFFICIENCY
        self.drain_timeout_s = drain_timeout_s
        self.prewarm = prewarm
        self._evaluate = evaluate
        self._clock = clock
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_limit)
        self._thread: Optional[threading.Thread] = None
        # Guards the _warmed flag: written by the dispatcher thread and
        # by warm() on the main thread, read by status() from handlers.
        self._state_lock = threading.Lock()
        self._draining = False
        self._warmed = False
        #: Group keys whose neighbourhood was already scheduled, so a
        #: traffic burst on one system schedules its neighbours once.
        self._prewarmed_groups: set = set()

    # -- admission ----------------------------------------------------

    def submit(self, request: EstimateRequest,
               trace_id: str = "") -> PendingRequest:
        """Admit one request, or shed it with
        :class:`~repro.errors.ServiceOverloaded`.

        ``trace_id`` correlates the admitted request across the access
        log and the ``serve.evaluate`` span; one is generated when the
        caller does not provide it.
        """
        metrics = get_metrics()
        metrics.counter("serve.requests").inc()
        if self._draining:
            raise ServiceOverloaded(
                "service is draining; not accepting new requests",
                retry_after_s=self.drain_timeout_s, code="draining")
        wait = self.breaker.admit()
        if wait is not None:
            metrics.counter("serve.shed").inc()
            raise ServiceOverloaded(
                f"evaluation circuit breaker is open; "
                f"retry in {wait:.1f}s",
                retry_after_s=wait, code="breaker_open")
        now = self._clock()
        deadline_s = request.deadline_s \
            if request.deadline_s is not None else self.default_deadline_s
        pending = PendingRequest(request, deadline=now + deadline_s,
                                 enqueued_at=now, trace_id=trace_id)
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            metrics.counter("serve.shed").inc()
            raise ServiceOverloaded(
                f"admission queue is full "
                f"({self.queue_limit} requests pending)",
                retry_after_s=1.0, code="queue_full") from None
        metrics.gauge("serve.queue_depth").set(
            float(self._queue.qsize()))
        return pending

    # -- dispatcher ---------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="serve-dispatch", daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            stopping = item is _STOP
            batch: List[PendingRequest] = [] if stopping else [item]
            while len(batch) < self.max_batch and not stopping:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    stopping = True
                    break
                batch.append(extra)
            get_metrics().gauge("serve.queue_depth").set(
                float(self._queue.qsize()))
            if batch:
                try:
                    self.process_batch(batch)
                except Exception:  # noqa: BLE001 — supervised boundary: the dispatcher must never die
                    _LOG.exception("dispatcher batch failed")
                    for pending in batch:
                        if not pending.done.is_set():
                            self._respond(pending, 500, error_body(
                                "internal_error",
                                "unexpected dispatcher failure"))
            if stopping:
                return

    def process_batch(self, batch: List[PendingRequest]) -> None:
        """Answer one drained batch: expire, coalesce, evaluate.

        Public so tests can drive the pipeline deterministically
        without the dispatcher thread.
        """
        metrics = get_metrics()
        now = self._clock()
        live: List[PendingRequest] = []
        for pending in batch:
            if pending.abandoned or now >= pending.deadline:
                metrics.counter("serve.cancelled").inc()
                self._respond(pending, 504, error_body(
                    "deadline_exceeded",
                    "request expired before evaluation started"))
            else:
                live.append(pending)
        groups: Dict[tuple, List[PendingRequest]] = {}
        for pending in live:
            groups.setdefault(pending.request.group_key(),
                              []).append(pending)
        for group in groups.values():
            if len(group) > 1:
                metrics.counter("serve.coalesced").inc(len(group) - 1)
            self._evaluate_group(group)

    def _evaluate_group(self, group: List[PendingRequest]) -> None:
        metrics = get_metrics()
        timeout = min(p.deadline for p in group) - self._clock()
        rung = self.ladder.current
        try:
            with span("serve.evaluate", category="serve",
                      attrs={"group": len(group), "rung": rung,
                             "trace_ids": ",".join(
                                 p.trace_id for p in group)}):
                results = _call_with_deadline(
                    lambda: self._group_results(group), timeout)
        except DeadlineExceeded as error:
            metrics.counter("serve.deadline_hits").inc()
            self.breaker.record_failure(error)
            for pending in group:
                self._respond(pending, 504, error_body(
                    "deadline_exceeded", str(error)))
        except ReproError as error:
            # A structured domain rejection (bad mapping, capacity...)
            # is the client's problem, not backend ill-health.
            for pending in group:
                self._respond(pending, 422, error_body(
                    "evaluation_rejected", str(error)))
        except Exception as error:  # noqa: BLE001 — supervised boundary: crash becomes a 500 + breaker failure
            metrics.counter("serve.worker_errors").inc()
            self.breaker.record_failure(error)
            _LOG.exception("evaluation failed for group of %d",
                           len(group))
            for pending in group:
                self._respond(pending, 500, error_body(
                    "evaluation_failed",
                    f"evaluation failed: {error!r}"))
        else:
            self.breaker.record_success()
            with self._state_lock:
                self._warmed = True
            for pending, (status, payload) in zip(group, results):
                self._respond(pending, status, payload)
            self._schedule_prewarm(group[0].request)

    def _respond(self, pending: PendingRequest, status: int,
                 payload: Dict[str, Any]) -> None:
        metrics = get_metrics()
        metrics.histogram("serve.request_seconds").observe(
            max(0.0, self._clock() - pending.enqueued_at))
        metrics.counter(f"serve.responses.{status // 100}xx").inc()
        pending.resolve(status, payload)

    # -- evaluation ---------------------------------------------------

    def _group_results(self, group: List[PendingRequest]
                       ) -> List[Response]:
        """One response per request; requests in a group share the
        model, system and global batch by construction."""
        if self._evaluate is not None:
            return [self._evaluate(p.request) for p in group]

        first = group[0].request
        rung = self.ladder.current
        path = RUNG_EVALUATION_PATHS[rung]
        system = system_for(first)
        model = get_model(first.model)
        template = AMPeD.for_mapping(
            model, system, dp=system.n_accelerators,
            efficiency=self.efficiency, evaluation_path=path)
        global_batch = first.batch

        responses: List[Optional[Response]] = [None] * len(group)
        unique_specs: List[Any] = []
        spec_position: Dict[Any, int] = {}
        lanes: List[Tuple[int, int]] = []  # (group index, spec lane)
        for index, pending in enumerate(group):
            req = pending.request
            try:
                spec = spec_from_totals(
                    system, tp=req.tp, pp=req.pp, dp=req.dp,
                    n_microbatches=req.microbatches)
            except MappingError as error:
                responses[index] = (422, error_body(
                    "mapping_infeasible", str(error)))
                continue
            # Identical mappings in one group evaluate exactly once:
            # a burst of the same estimate costs one evaluation.
            lane = spec_position.setdefault(spec, len(unique_specs))
            if lane == len(unique_specs):
                unique_specs.append(spec)
            lanes.append((index, lane))

        outcomes: List[Optional[object]] = [None] * len(unique_specs)
        if rung == "vectorized" and HAVE_NUMPY \
                and len(unique_specs) >= 2:
            # The coalescing payoff: one compiled build, one batched
            # array pass over every distinct spec in the group.
            compiled = compile_sweep(template, global_batch)
            __, chunk_outcomes = evaluate_chunk(
                template, compiled, unique_specs, global_batch,
                tune_microbatches=False)
            outcomes = list(chunk_outcomes)
        for lane, spec in enumerate(unique_specs):
            if outcomes[lane] is None:
                # Scalar route: either the rung is non-vectorized, or
                # the array path declined this lane (infeasible /
                # non-finite) and the scalar walk categorizes it.
                outcomes[lane] = evaluate_candidate(
                    template, spec, global_batch,
                    tune_microbatches=False)
        for index, lane in lanes:
            responses[index] = self._response_for(
                group[index].request, template, system,
                outcomes[lane], path)
        return [response if response is not None
                else (500, error_body("internal_error",
                                      "request fell through evaluation"))
                for response in responses]

    def _response_for(self, request: EstimateRequest, template: AMPeD,
                      system: SystemSpec, outcome, path: str
                      ) -> Response:
        if not outcome.evaluated:
            return (422, error_body(
                outcome.skip_category or "infeasible",
                outcome.detail or "candidate mapping was skipped"))
        result = outcome.result
        payload: Dict[str, Any] = {
            "model": request.model,
            "system": system.describe(),
            "mapping": result.parallelism.describe(),
            "global_batch": request.batch,
            "batch_time_s": result.batch_time_s,
            "breakdown": result.breakdown.as_dict(),
            "microbatch_size": result.microbatch_size,
            "microbatch_efficiency": result.microbatch_efficiency,
            "evaluation_path": path,
        }
        if request.tokens is not None:
            bound = replace(template, parallelism=result.parallelism)
            estimate = bound.estimate(request.batch,
                                      total_tokens=request.tokens)
            payload["training_days"] = estimate.total_time_days
            payload["n_batches"] = estimate.n_batches
        return (200, payload)

    # -- neighbourhood pre-warm ---------------------------------------

    def _schedule_prewarm(self, request: EstimateRequest) -> None:
        """Compile neighbouring system sizes in the background.

        Sweep traffic tends to walk the node-count axis (scaling
        studies double or halve the fleet), so after the first
        successful evaluation of a group this schedules compiled-table
        builds for ``nodes*2`` and ``nodes//2``.  ``compile_sweep``
        seeds each build from the cached sweeps via
        :meth:`CompiledSweep.seed_from`, so the neighbour build starts
        from the just-built tables instead of from scratch, and the
        next request for that size hits a warm cache.  Scheduled at
        most once per group key; counted on the ``serve.prewarm.*``
        counters; errors never surface to request handling.
        """
        if not self.prewarm or self._evaluate is not None:
            return
        key = request.group_key()
        with self._state_lock:
            if key in self._prewarmed_groups:
                return
            self._prewarmed_groups.add(key)
        neighbours = sorted({request.nodes * 2,
                             max(1, request.nodes // 2)}
                            - {request.nodes})
        if not neighbours:
            return
        get_metrics().counter("serve.prewarm.scheduled").inc(
            len(neighbours))
        threading.Thread(
            target=self._prewarm_neighbours,
            args=(request, neighbours),
            name="serve-prewarm", daemon=True).start()

    def _prewarm_neighbours(self, request: EstimateRequest,
                            neighbours: List[int]) -> None:
        metrics = get_metrics()
        for nodes in neighbours:
            try:
                neighbour = replace(request, nodes=nodes)
                system = system_for(neighbour)
                model = get_model(neighbour.model)
                template = AMPeD.for_mapping(
                    model, system, dp=system.n_accelerators,
                    efficiency=self.efficiency,
                    evaluation_path=RUNG_EVALUATION_PATHS[
                        self.ladder.current])
                compile_sweep(template, neighbour.batch)
                metrics.counter("serve.prewarm.built").inc()
            except Exception:  # noqa: BLE001 — best-effort cache warming must never disturb serving
                metrics.counter("serve.prewarm.errors").inc()
                _LOG.debug("prewarm failed for %d nodes", nodes,
                           exc_info=True)

    # -- warmup / drain / status -------------------------------------

    def warm(self, request: EstimateRequest) -> None:
        """Evaluate ``request`` synchronously so its template and
        compiled tables are cached before traffic arrives."""
        now = self._clock()
        pending = PendingRequest(request, deadline=now + 300.0,
                                 enqueued_at=now)
        status, __ = self._group_results([pending])[0]
        if status == 200:
            with self._state_lock:
                self._warmed = True

    def reject_new(self) -> None:
        """Enter draining mode: new submissions get a structured 503;
        queued and in-flight requests keep completing."""
        self._draining = True

    def stop(self, timeout: Optional[float] = None) -> bool:
        """Drain the queue and join the dispatcher; True on a clean
        join within ``timeout`` (default ``drain_timeout_s``)."""
        self._draining = True
        if self._thread is None:
            return True
        self._queue.put(_STOP)
        self._thread.join(timeout if timeout is not None
                          else self.drain_timeout_s)
        alive = self._thread.is_alive()
        if alive:
            _LOG.warning("dispatcher did not drain within timeout")
        return not alive

    @property
    def draining(self) -> bool:
        return self._draining

    def status(self) -> Dict[str, Any]:
        """Readiness summary for ``/readyz``."""
        cache_warm = (self._warmed
                      or compiled_cache_stats()["cached_sweeps"] > 0)
        breaker = self.breaker.describe()
        ready = (not self._draining and breaker["state"] != "open"
                 and cache_warm)
        return {
            "ready": ready,
            "draining": self._draining,
            "cache_warm": cache_warm,
            "breaker": breaker,
            "evaluation_path": self.ladder.evaluation_path,
            "queue_depth": self._queue.qsize(),
        }
