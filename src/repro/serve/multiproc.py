"""Pre-fork multi-worker serving: every core behind one port.

The single-process daemon (:mod:`repro.serve.server`) is pinned to one
GIL, so a multi-core machine serves estimation traffic at single-core
speed.  This module scales it out with the classic pre-fork topology:

- A **master** process resolves the listen strategy, optionally
  pre-warms the compiled-sweep cache (the fork then shares the warm
  tables copy-on-write), forks ``workers`` children, supervises them
  (a crashed worker is respawned), and performs a **rolling drain** on
  SIGTERM/SIGINT — workers are drained one at a time so the fleet keeps
  serving until the last one stops accepting.
- Each **worker** runs the ordinary :class:`~repro.serve.server.
  ServeDaemon` — same handlers, same admission control, same breaker —
  on its own socket bound with ``SO_REUSEPORT``, so the kernel load-
  balances accepted connections across workers.  Where the platform
  lacks ``SO_REUSEPORT`` the master binds a single listening socket
  before forking and every worker accepts on the inherited fd.
- Workers heartbeat onto a :class:`WorkerBoard` (atomic JSON slot files
  in a private runtime directory): readiness, degradation rung,
  metrics snapshot, and the shared-memory segments holding compiled
  term tables they have published.  Any worker's ``/readyz`` then
  answers for the **fleet quorum** (majority of expected workers
  ready), and ``/metrics`` aggregates counters across all live slots.
- Compiled term tables cross process boundaries **zero-copy**: on a
  compile-cache miss a worker first consults its peers' advertised
  segments (:func:`repro.search.shm.attach_compiled_segment`) and only
  builds locally when no peer has the sweep, then advertises its own
  build via :func:`repro.search.shm.ship_compiled`.  The warm LRU is
  paid once per sweep, not once per worker.

The board is filesystem-based on purpose: it must work on the no-NumPy
leg and on platforms without ``multiprocessing.shared_memory``, where
only the table exchange (not serving itself) degrades to per-worker
builds.  See ``docs/serving.md`` for the topology diagram, the
SO_REUSEPORT caveats and the runbook.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import socket
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.metrics import collect_cache_metrics, get_metrics
from repro.search import shm
from repro.units import SECONDS_PER_MINUTE
from repro.serve.server import _Handler, _Server, ServeConfig, ServeDaemon

_LOG = logging.getLogger("repro.serve")

#: Seconds between worker heartbeats onto the board.
HEARTBEAT_INTERVAL_S = 0.5

#: A slot older than this is treated as dead for quorum/aggregation.
SLOT_STALE_S = 5.0

#: How long the master waits for workers to start listening before it
#: announces the serving address anyway.
STARTUP_TIMEOUT_S = SECONDS_PER_MINUTE

#: Backoff before respawning a crashed worker, so a worker that dies at
#: startup cannot turn the master into a fork bomb.
RESPAWN_DELAY_S = 0.5


def reuseport_available() -> bool:
    """Whether this platform supports ``SO_REUSEPORT`` load balancing."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    except OSError:
        return False
    finally:
        probe.close()
    return True


class WorkerBoard:
    """Shared fleet state: one atomic JSON slot file per worker.

    Writes go through a temp file + ``os.replace`` so readers never see
    a torn slot; a reader that catches a decode error (a slot mid-
    replace on exotic filesystems) skips that slot for one poll.  The
    board is advisory — serving never blocks on it.
    """

    def __init__(self, root: Path, workers_expected: int) -> None:
        self.root = Path(root)
        self.workers_expected = workers_expected

    def _slot_path(self, index: int) -> Path:
        return self.root / f"worker-{index}.json"

    def write_slot(self, index: int, payload: Dict[str, Any]) -> None:
        payload = dict(payload, index=index, ts=time.time())
        tmp = self.root / f".worker-{index}.tmp"
        try:
            tmp.write_text(json.dumps(payload))
            os.replace(tmp, self._slot_path(index))
        except OSError:  # board gone mid-drain: serving goes on
            _LOG.debug("slot write failed for worker %d", index,
                       exc_info=True)

    def clear_slot(self, index: int) -> None:
        try:
            self._slot_path(index).unlink()
        except OSError:
            pass

    def read_slots(self) -> Dict[int, Dict[str, Any]]:
        """Every parseable, fresh slot on the board, by worker index."""
        slots: Dict[int, Dict[str, Any]] = {}
        now = time.time()
        for index in range(self.workers_expected):
            try:
                payload = json.loads(self._slot_path(index).read_text())
            except (OSError, ValueError):
                continue
            if now - float(payload.get("ts", 0.0)) > SLOT_STALE_S:
                continue  # stale: worker died without cleaning up
            slots[index] = payload
        return slots

    @property
    def quorum(self) -> int:
        """Ready workers needed for the fleet to report ready."""
        return self.workers_expected // 2 + 1

    def quorum_status(self, local_status: Dict[str, Any],
                      local_index: Optional[int]) -> Dict[str, Any]:
        """The fleet ``/readyz`` payload, seen from one worker.

        The answering worker substitutes its own live status for its
        (possibly slightly stale) slot, so a worker that just started
        draining reports the change immediately.
        """
        slots = self.read_slots()
        workers = []
        ready_count = 0
        for index in range(self.workers_expected):
            if index == local_index:
                entry = {"index": index, "pid": os.getpid(),
                         "ready": bool(local_status.get("ready")),
                         "rung": local_status.get("evaluation_path"),
                         "self": True}
            elif index in slots:
                slot = slots[index]
                entry = {"index": index, "pid": slot.get("pid"),
                         "ready": bool(slot.get("ready")),
                         "rung": slot.get("rung")}
            else:
                entry = {"index": index, "pid": None, "ready": False,
                         "rung": None}
            if entry["ready"]:
                ready_count += 1
            workers.append(entry)
        return {
            "ready": ready_count >= self.quorum,
            "workers_expected": self.workers_expected,
            "workers_ready": ready_count,
            "quorum": self.quorum,
            "workers": workers,
            "self": local_status,
        }

    def aggregate_metrics(self, local_snapshot: Dict[str, Any],
                          local_index: Optional[int]) -> Dict[str, Any]:
        """The fleet ``/metrics`` payload: counters and gauges summed
        across every live slot (the answering worker contributes its
        own fresh snapshot), histograms merged where bounds agree."""
        snapshots: Dict[int, Dict[str, Any]] = {}
        for index, slot in self.read_slots().items():
            snapshot = slot.get("metrics")
            if isinstance(snapshot, dict):
                snapshots[index] = snapshot
        if local_index is not None:
            snapshots[local_index] = local_snapshot
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for snapshot in snapshots.values():
            for name, value in snapshot.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                gauges[name] = gauges.get(name, 0) + value
            for name, hist in snapshot.get("histograms", {}).items():
                merged = histograms.get(name)
                if merged is None:
                    histograms[name] = {
                        "count": hist.get("count", 0),
                        "sum": hist.get("sum", 0.0),
                        "bounds": list(hist.get("bounds", [])),
                        "bucket_counts": list(
                            hist.get("bucket_counts", [])),
                    }
                elif merged["bounds"] == list(hist.get("bounds", [])):
                    merged["count"] += hist.get("count", 0)
                    merged["sum"] += hist.get("sum", 0.0)
                    merged["bucket_counts"] = [
                        a + b for a, b in zip(
                            merged["bucket_counts"],
                            hist.get("bucket_counts", []))]
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "workers_reporting": sorted(snapshots),
            "workers_expected": self.workers_expected,
        }

    def peer_segments(self, local_index: int) -> Dict[str, str]:
        """Advertised compiled-sweep segments of every *other* live
        worker: sweep digest -> shared-memory segment name."""
        segments: Dict[str, str] = {}
        for index, slot in self.read_slots().items():
            if index == local_index:
                continue
            advertised = slot.get("segments")
            if isinstance(advertised, dict):
                segments.update(advertised)
        return segments


class _SweepExchange:
    """One worker's half of the zero-copy compiled-sweep exchange.

    ``built`` publishes a freshly compiled sweep's term tables into a
    shared-memory segment (kept alive for the worker's lifetime and
    advertised on the board slot); ``fetch`` attaches a peer's segment
    on a local cache miss.  Both ends are installed as
    :func:`repro.search.compiler.set_sweep_exchange_hooks`.
    """

    def __init__(self, board: WorkerBoard, index: int) -> None:
        self.board = board
        self.index = index
        self._lock = threading.Lock()
        self._published: Dict[str, shm.CompiledShipment] = {}

    def advertised(self) -> Dict[str, str]:
        with self._lock:
            return {digest: shipment.handle.name
                    for digest, shipment in self._published.items()}

    def built(self, compiled: Any) -> None:
        if compiled.cache_key is None or not shm.HAVE_SHM:
            return
        digest = shm.shm_digest(compiled.cache_key)
        with self._lock:
            if digest in self._published:
                return
        shipped = shm.ship_compiled(compiled)
        if not isinstance(shipped, shm.CompiledShipment):
            return  # publish fell back; nothing to advertise
        with self._lock:
            self._published[digest] = shipped
        get_metrics().counter("serve.segments.published").inc()

    def fetch(self, key: tuple) -> Optional[Any]:
        if not shm.HAVE_SHM:
            return None
        digest = shm.shm_digest(key)
        name = self.board.peer_segments(self.index).get(digest)
        if name is None:
            return None
        try:
            compiled = shm.attach_compiled_segment(name)
        except Exception:  # noqa: BLE001 — fallback boundary: the peer (and its segment) may be gone
            return None
        get_metrics().counter("serve.segments.attached").inc()
        return compiled  # compile_sweep verifies cache_key == key

    def release_all(self) -> None:
        with self._lock:
            published = list(self._published.values())
            self._published.clear()
        for shipment in published:
            shm.release_shipment(shipment)


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _reuseport_factory(config: ServeConfig, port: int):
    """Server factory binding this worker's own SO_REUSEPORT socket."""
    def factory(handler=_Handler):
        server = _Server((config.host, port), handler,
                         bind_and_activate=False)
        server.socket.setsockopt(socket.SOL_SOCKET,
                                 socket.SO_REUSEPORT, 1)
        try:
            server.server_bind()
            server.server_activate()
        except BaseException:  # noqa: BLE001 — cleanup-then-reraise: close the half-bound socket
            server.server_close()
            raise
        return server
    return factory


def _inherited_factory(listen_sock: socket.socket):
    """Server factory adopting the master's pre-bound listening socket
    (the fallback where SO_REUSEPORT is unavailable: every worker
    accepts on the same inherited fd)."""
    def factory(handler=_Handler):
        address = listen_sock.getsockname()[:2]
        server = _Server(address, handler, bind_and_activate=False)
        server.socket.close()
        server.socket = listen_sock
        server.server_address = address
        server.server_name = socket.getfqdn(address[0])
        server.server_port = address[1]
        return server  # already bound + listening in the master
    return factory


def _worker_main(config: ServeConfig, index: int, board: WorkerBoard,
                 port: int,
                 listen_sock: Optional[socket.socket]) -> int:
    """Everything one worker does between fork and ``os._exit``."""
    # The master's supervision handlers are not this process's
    # business; ServeDaemon.run installs the drain handlers.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)

    exchange = _SweepExchange(board, index)
    from repro.search.compiler import set_sweep_exchange_hooks
    set_sweep_exchange_hooks(fetch=exchange.fetch, built=exchange.built)

    if listen_sock is not None:
        factory = _inherited_factory(listen_sock)
    else:
        factory = _reuseport_factory(config, port)
    daemon = ServeDaemon(config, server_factory=factory, board=board,
                         worker_index=index)

    stop_heartbeat = threading.Event()
    master_pid = os.getppid()

    def heartbeat() -> None:
        while True:
            if os.getppid() != master_pid:
                # The master died without signalling us (SIGKILL'd or
                # crashed): drain and exit instead of serving forever
                # as an orphan on a port nobody supervises.
                _LOG.warning("master %d gone; draining orphaned "
                             "worker %d", master_pid, index)
                daemon.request_shutdown()
                return
            try:
                status = daemon.service.status()
                snapshot = collect_cache_metrics(
                    get_metrics()).snapshot()
                board.write_slot(index, {
                    "pid": os.getpid(),
                    "listening": daemon.httpd is not None,
                    "ready": bool(status.get("ready")),
                    "rung": status.get("evaluation_path"),
                    "status": status,
                    "metrics": snapshot,
                    "segments": exchange.advertised(),
                })
            except Exception:  # noqa: BLE001 — the heartbeat must outlive any one bad snapshot
                _LOG.debug("heartbeat failed", exc_info=True)
            if stop_heartbeat.wait(HEARTBEAT_INTERVAL_S):
                return

    ticker = threading.Thread(target=heartbeat, name="serve-heartbeat",
                              daemon=True)
    ticker.start()
    try:
        code = daemon.run(announce=False)
    finally:
        stop_heartbeat.set()
        ticker.join(2 * HEARTBEAT_INTERVAL_S)
        board.clear_slot(index)
        exchange.release_all()
        shm.cleanup_all_segments()
    return code


# ---------------------------------------------------------------------------
# Master process
# ---------------------------------------------------------------------------


class MultiWorkerDaemon:
    """The pre-fork master: bind, warm, fork, supervise, drain."""

    def __init__(self, config: ServeConfig) -> None:
        if not hasattr(os, "fork"):
            raise RuntimeError(
                "multi-worker serving requires os.fork; "
                "run with --workers 1 on this platform")
        self.config = config
        self.workers = max(1, int(config.workers))
        self.board: Optional[WorkerBoard] = None
        self._pids: Dict[int, int] = {}
        self._stop = threading.Event()

    # -- socket strategy ----------------------------------------------------

    def _resolve_sockets(self):
        """``(host, port, anchor, listen_sock)`` for the fleet.

        With SO_REUSEPORT the master binds an *anchor* socket that
        never listens: it pins the port (surviving any individual
        worker's restart, and resolving ``port 0`` once for everyone)
        while receiving no connections, since the kernel only balances
        across listening sockets.  Without SO_REUSEPORT the master
        binds one listening socket that all workers inherit.
        """
        if reuseport_available():
            anchor = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            anchor.setsockopt(socket.SOL_SOCKET,
                              socket.SO_REUSEADDR, 1)
            anchor.setsockopt(socket.SOL_SOCKET,
                              socket.SO_REUSEPORT, 1)
            anchor.bind((self.config.host, self.config.port))
            host, port = anchor.getsockname()[:2]
            return host, port, anchor, None
        listen_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listen_sock.setsockopt(socket.SOL_SOCKET,
                               socket.SO_REUSEADDR, 1)
        listen_sock.bind((self.config.host, self.config.port))
        listen_sock.listen(128)
        host, port = listen_sock.getsockname()[:2]
        _LOG.info("SO_REUSEPORT unavailable; workers accept on one "
                  "inherited listening socket")
        return host, port, None, listen_sock

    # -- worker lifecycle ---------------------------------------------------

    def _spawn(self, index: int, port: int,
               listen_sock: Optional[socket.socket]) -> None:
        pid = os.fork()
        if pid == 0:
            code = 1
            try:
                code = _worker_main(self.config, index, self.board,
                                    port, listen_sock)
            except BaseException:  # noqa: BLE001 — a worker must never fall back into the master's stack
                _LOG.exception("worker %d crashed", index)
            finally:
                # Skip atexit/stdio teardown shared with the master.
                os._exit(code)
        self._pids[index] = pid
        _LOG.info("worker %d started (pid %d)", index, pid)

    def _await_listening(self, timeout: float = STARTUP_TIMEOUT_S
                         ) -> bool:
        """Wait until every worker slot reports a bound socket (so the
        announced address is immediately connectable)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            slots = self.board.read_slots()
            if (len(slots) == self.workers
                    and all(slot.get("listening")
                            for slot in slots.values())):
                return True
            time.sleep(0.05)
        _LOG.warning("not all workers reported listening within %.0fs",
                     timeout)
        return False

    def _reap_and_respawn(self, port: int,
                          listen_sock: Optional[socket.socket]) -> None:
        for index, pid in list(self._pids.items()):
            try:
                done, status = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                done = pid
                status = 0
            if done == 0:
                continue
            del self._pids[index]
            if self._stop.is_set():
                continue
            _LOG.warning(
                "worker %d (pid %d) exited unexpectedly "
                "(status %d); respawning", index, pid, status)
            time.sleep(RESPAWN_DELAY_S)
            self._spawn(index, port, listen_sock)

    def _rolling_drain(self) -> None:
        """Drain workers one at a time: each gets SIGTERM and up to
        ``drain_timeout_s`` (plus margin) to finish in-flight requests;
        the rest of the fleet keeps serving until its own turn.  A
        worker that overstays is SIGKILLed — the drain never hangs."""
        budget = self.config.drain_timeout_s + 5.0
        for index, pid in sorted(self._pids.items()):
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
            if not self._wait_pid(pid, budget):
                _LOG.warning("worker %d (pid %d) did not drain; "
                             "killing", index, pid)
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                self._wait_pid(pid, 5.0)
        self._pids.clear()

    @staticmethod
    def _wait_pid(pid: int, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                done, _status = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                return True
            if done == pid:
                return True
            time.sleep(0.05)
        return False

    # -- foreground entry ---------------------------------------------------

    def _prefork_warm(self) -> None:
        """Compile the warm model's tables in the master, *before*
        forking: every worker then inherits the warm cache through
        copy-on-write pages instead of paying its own build."""
        from repro.serve.lifecycle import EstimationService
        from repro.serve.validation import warm_request
        try:
            service = EstimationService()
            service.warm(warm_request(self.config.warm_model))
            _LOG.info("pre-fork warmed compile cache for %s",
                      self.config.warm_model)
        except Exception:  # noqa: BLE001 — warm-up is an optimization; workers can warm themselves
            _LOG.warning("pre-fork warm failed for %s",
                         self.config.warm_model, exc_info=True)

    def run(self) -> int:
        host, port, anchor, listen_sock = self._resolve_sockets()
        root = Path(tempfile.mkdtemp(prefix="amped-serve-board-"))
        self.board = WorkerBoard(root, self.workers)
        if self.config.warm_model:
            self._prefork_warm()

        def _on_signal(signum: int, frame: Any) -> None:
            _LOG.info("master received signal %d; draining fleet",
                      signum)
            self._stop.set()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)
        for index in range(self.workers):
            self._spawn(index, port, listen_sock)
        self._await_listening()
        # The smoke script and tests parse this exact line.
        print(f"serving on http://{host}:{port}", flush=True)
        while not self._stop.is_set():
            self._reap_and_respawn(port, listen_sock)
            self._stop.wait(0.2)
        self._rolling_drain()
        if anchor is not None:
            anchor.close()
        if listen_sock is not None:
            listen_sock.close()
        for index in range(self.workers):
            self.board.clear_slot(index)
        try:
            root.rmdir()
        except OSError:
            pass  # a straggler slot file; the tempdir is per-run
        print("shutdown complete", flush=True)
        return 0


__all__ = [
    "HEARTBEAT_INTERVAL_S",
    "MultiWorkerDaemon",
    "SLOT_STALE_S",
    "WorkerBoard",
    "reuseport_available",
]
