"""Estimation-as-a-service: a hardened daemon over the AMPeD model.

``python -m repro.serve`` (or ``amped serve``) exposes the analytical
estimator over HTTP/JSON with the robustness machinery a long-lived
process needs: strict request validation, a bounded admission queue,
per-request deadlines, a circuit breaker that degrades evaluation
quality (``vectorized → compiled → collapsed → serial``) instead of
failing, and a graceful SIGTERM drain.  The process-wide
compiled-sweep cache stays warm across requests, so repeat estimates
skip the table builds entirely.

See ``docs/serving.md`` for endpoints, schemas and the failure-mode
table.
"""

from repro.serve.breaker import (
    LADDER_RUNGS,
    RUNG_EVALUATION_PATHS,
    CircuitBreaker,
    DegradationLadder,
)
from repro.serve.lifecycle import EstimationService, PendingRequest
from repro.serve.server import (
    ServeConfig,
    ServeDaemon,
    add_serve_args,
    config_from_args,
    main,
    run_daemon,
)
from repro.serve.validation import (
    INTER_LINK_CHOICES,
    MAX_DEADLINE_S,
    EstimateRequest,
    error_body,
    parse_estimate_request,
    warm_request,
)

__all__ = [
    "LADDER_RUNGS",
    "RUNG_EVALUATION_PATHS",
    "CircuitBreaker",
    "DegradationLadder",
    "EstimationService",
    "PendingRequest",
    "ServeConfig",
    "ServeDaemon",
    "add_serve_args",
    "config_from_args",
    "main",
    "run_daemon",
    "INTER_LINK_CHOICES",
    "MAX_DEADLINE_S",
    "EstimateRequest",
    "error_body",
    "parse_estimate_request",
    "warm_request",
]
