"""Request schema validation for the estimation service.

One strict, explicit schema: every field of an ``/v1/estimate`` body is
checked for type, domain membership and finiteness (reusing the
library-wide :func:`repro.errors.require_finite` guard) before any
model code runs.  Violations raise
:class:`~repro.errors.RequestValidationError` with a stable machine
code and the offending field name; the HTTP layer maps that to a
structured 400 body via :func:`error_body` — a malformed request can
never surface as a traceback or a 500.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Optional

import json
import math

from repro.errors import RequestValidationError, require_finite
from repro.hardware.catalog import ACCELERATORS
from repro.transformer.zoo import MODELS

#: Inter-node link choices, mirroring the CLI's ``--inter`` flag.
INTER_LINK_CHOICES = ("edr", "hdr", "ndr")

#: Hard ceiling on a client-requested deadline, seconds.  Anything
#: longer would let one request pin a dispatcher slot near-forever.
MAX_DEADLINE_S = 300.0

#: Integer request fields that must be >= 1.
_POSITIVE_INT_FIELDS = ("nodes", "accel_per_node", "nics", "tp", "pp",
                        "dp", "batch")


@dataclass(frozen=True)
class EstimateRequest:
    """A validated ``/v1/estimate`` request.

    Field names match the CLI's ``estimate`` flags one for one, so a
    request body reads exactly like a command line (``{"model":
    "megatron-1t", "nodes": 128, "tp": 8, "pp": 16, "dp": 8}``).
    """

    model: str
    accelerator: str = "a100"
    nodes: int = 16
    accel_per_node: int = 8
    nics: int = 8
    inter: str = "hdr"
    tp: int = 1
    pp: int = 1
    dp: int = 1
    microbatches: Optional[int] = None  # None = pipeline-degree default
    batch: int = 2048
    tokens: Optional[float] = None
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.tokens is not None:
            require_finite("tokens", self.tokens)
        if self.deadline_s is not None:
            require_finite("deadline_s", self.deadline_s)

    def group_key(self) -> tuple:
        """Requests sharing this key evaluate against the same compiled
        sweep (same model, system and global batch), so the dispatcher
        can coalesce them into one batched evaluation."""
        return (self.model, self.accelerator, self.nodes,
                self.accel_per_node, self.nics, self.inter, self.batch)


_FIELD_NAMES = tuple(item.name for item in fields(EstimateRequest))


def _require_int(name: str, value: Any) -> int:
    """A real integer >= 1 (bools and floats are rejected — a JSON
    ``true`` or ``8.0`` arriving where a degree belongs is a client
    bug worth surfacing, not coercing)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestValidationError(
            f"{name} must be an integer, got {value!r}",
            field=name, code="invalid_value")
    if value < 1:
        raise RequestValidationError(
            f"{name} must be >= 1, got {value}",
            field=name, code="invalid_value")
    return value


def _require_positive_finite(name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestValidationError(
            f"{name} must be a number, got {value!r}",
            field=name, code="invalid_value")
    if not math.isfinite(value) or value <= 0:
        raise RequestValidationError(
            f"{name} must be positive and finite, got {value!r}",
            field=name, code="invalid_value")
    return float(value)


def parse_estimate_request(body: bytes) -> EstimateRequest:
    """Validate a raw request body into an :class:`EstimateRequest`.

    Raises :class:`~repro.errors.RequestValidationError` — never
    anything else — for any malformed input: undecodable bytes,
    invalid JSON, a non-object payload, unknown fields, out-of-domain
    choices, non-integer degrees, non-finite numbers.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise RequestValidationError(
            f"request body is not valid JSON: {error}",
            code="invalid_json") from None
    if not isinstance(payload, dict):
        raise RequestValidationError(
            f"request body must be a JSON object, got "
            f"{type(payload).__name__}", code="invalid_request")

    unknown = sorted(set(payload) - set(_FIELD_NAMES))
    if unknown:
        raise RequestValidationError(
            f"unknown request field {unknown[0]!r} (accepted: "
            f"{', '.join(_FIELD_NAMES)})",
            field=unknown[0], code="unknown_field")

    if "model" not in payload:
        raise RequestValidationError(
            "request is missing the required field 'model'",
            field="model", code="missing_field")
    model = payload["model"]
    if model not in MODELS:
        raise RequestValidationError(
            f"unknown model {model!r} (choices: "
            f"{', '.join(sorted(MODELS))})",
            field="model", code="invalid_value")

    accelerator = payload.get("accelerator", "a100")
    if accelerator not in ACCELERATORS:
        raise RequestValidationError(
            f"unknown accelerator {accelerator!r} (choices: "
            f"{', '.join(sorted(ACCELERATORS))})",
            field="accelerator", code="invalid_value")

    inter = payload.get("inter", "hdr")
    if inter not in INTER_LINK_CHOICES:
        raise RequestValidationError(
            f"unknown inter-node link {inter!r} (choices: "
            f"{', '.join(INTER_LINK_CHOICES)})",
            field="inter", code="invalid_value")

    values: Dict[str, Any] = {"model": model,
                              "accelerator": accelerator,
                              "inter": inter}
    defaults = EstimateRequest(model=model)
    for name in _POSITIVE_INT_FIELDS:
        values[name] = _require_int(
            name, payload.get(name, getattr(defaults, name)))

    microbatches = payload.get("microbatches")
    if microbatches is not None:
        microbatches = _require_int("microbatches", microbatches)
    values["microbatches"] = microbatches

    tokens = payload.get("tokens")
    if tokens is not None:
        tokens = _require_positive_finite("tokens", tokens)
    values["tokens"] = tokens

    deadline_s = payload.get("deadline_s")
    if deadline_s is not None:
        deadline_s = _require_positive_finite("deadline_s", deadline_s)
        if deadline_s > MAX_DEADLINE_S:
            raise RequestValidationError(
                f"deadline_s must be <= {MAX_DEADLINE_S:g} seconds, "
                f"got {deadline_s:g}",
                field="deadline_s", code="invalid_value")
    values["deadline_s"] = deadline_s

    return EstimateRequest(**values)


def warm_request(model: str) -> EstimateRequest:
    """A guaranteed-feasible request for pre-warming caches.

    The raw defaults (``tp = pp = dp = 1``) never match the default
    128-accelerator system, so warming with them would 422 silently and
    leave ``/readyz`` unready forever.  Pure data parallelism across
    every accelerator is feasible for any model the zoo knows."""
    defaults = EstimateRequest(model=model)
    return replace(defaults,
                   dp=defaults.nodes * defaults.accel_per_node)


def error_body(code: str, message: str,
               field: Optional[str] = None) -> Dict[str, Any]:
    """The structured error payload every non-2xx response carries."""
    error: Dict[str, Any] = {"code": code, "message": message}
    if field is not None:
        error["field"] = field
    return {"error": error}
