"""The estimation daemon: stdlib HTTP front-end over the service.

``python -m repro.serve`` (or ``amped serve``) binds a
:class:`ThreadingHTTPServer` whose handlers validate, admit and wait on
requests through one process-wide :class:`EstimationService`, keeping
the compiled-sweep cache warm across requests.  Endpoints:

- ``GET /healthz`` — liveness: 200 as long as the process serves.
- ``GET /readyz`` — readiness: 200 only when not draining, the breaker
  is not open, and the compile cache is warm; 503 otherwise, always
  with the full status body.
- ``GET /metrics`` — live snapshot of the ``repro.obs`` registry
  (``serve.*`` instruments plus the library's cache gauges).
- ``POST /v1/estimate`` — validated estimate round-trip.

Failure containment at this layer: bodies over ``max_body_bytes`` are
refused 413 before being read; validation failures are structured 400s
(never a traceback); shed load maps to 429/503 with ``Retry-After``;
a handler abandoned by its deadline answers 504 and flags the pending
request so the dispatcher skips it.  SIGTERM/SIGINT trigger a graceful
drain: stop accepting, finish in-flight handlers
(``block_on_close``), drain the dispatcher, exit 0.
"""

from __future__ import annotations

import argparse
import json
import logging
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from math import ceil
from typing import Any, Dict, Optional, Tuple

from repro.errors import (
    ReproError,
    RequestValidationError,
    ServiceOverloaded,
)
from repro.obs.logs import LOG_LEVELS, configure_logging
from repro.obs.metrics import collect_cache_metrics, get_metrics
from repro.serve.lifecycle import EstimationService, new_trace_id
from repro.serve.validation import error_body, parse_estimate_request
from repro.units import seconds_to_milliseconds

_LOG = logging.getLogger("repro.serve")

DEFAULT_MAX_BODY_BYTES = 64 * 1024


class ServeConfig:
    """Daemon knobs, one attribute per ``amped serve`` flag."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 queue_limit: int = 64, deadline_s: float = 10.0,
                 max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
                 warm_model: Optional[str] = None,
                 breaker_threshold: int = 3,
                 breaker_cooldown_s: float = 5.0,
                 drain_timeout_s: float = 10.0,
                 workers: int = 1,
                 prewarm: bool = True) -> None:
        self.host = host
        self.port = port  # 0 = ephemeral (tests, smoke)
        self.queue_limit = queue_limit
        self.deadline_s = deadline_s
        self.max_body_bytes = max_body_bytes
        self.warm_model = warm_model
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.drain_timeout_s = drain_timeout_s
        self.workers = workers  # >1 = pre-fork multi-worker daemon
        self.prewarm = prewarm


class _Server(ThreadingHTTPServer):
    # In-flight handler threads are joined by server_close(): the
    # natural drain point.  Handler waits are deadline-bounded, so the
    # join cannot hang past the longest remaining request deadline.
    daemon_threads = False
    block_on_close = True
    service: EstimationService
    max_body_bytes: int
    #: Multi-worker mode only: the worker board this process heartbeats
    #: on, making /readyz a fleet quorum and /metrics an aggregate.
    board: Optional[object] = None
    worker_index: Optional[int] = None


class _Handler(BaseHTTPRequestHandler):
    server: _Server
    # HTTP/1.1 keep-alive: every response carries Content-Length, so
    # clients can hold one connection across repeated estimates
    # instead of paying connect + handler-thread churn per request.
    protocol_version = "HTTP/1.1"
    # TCP_NODELAY: the headers/body write split otherwise costs a
    # ~40ms Nagle + delayed-ACK stall per keep-alive round-trip.
    disable_nagle_algorithm = True

    # Route http.server's stderr chatter into our logger.
    def log_message(self, format: str, *args: Any) -> None:
        _LOG.debug("%s - %s", self.address_string(), format % args)

    def _send_json(self, status: int, payload: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to salvage

    def do_GET(self) -> None:
        service = self.server.service
        board = self.server.board
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok",
                                  "draining": service.draining})
        elif self.path == "/readyz":
            status = service.status()
            if board is not None:
                # Fleet view: this worker answers for the quorum, not
                # just itself, so any worker's socket reports whether
                # the daemon as a whole can take traffic.
                status = board.quorum_status(
                    status, self.server.worker_index)
            self._send_json(200 if status["ready"] else 503, status)
        elif self.path == "/metrics":
            snapshot = collect_cache_metrics(get_metrics()).snapshot()
            if board is not None:
                snapshot = board.aggregate_metrics(
                    snapshot, self.server.worker_index)
            self._send_json(200, snapshot)
        else:
            self._send_json(404, error_body(
                "not_found", f"no such endpoint: {self.path}"))

    def do_POST(self) -> None:
        # One structured access-log line per request: the trace_id
        # printed here is also stamped on the matching serve.evaluate
        # span (attr "trace_ids"), so daemon logs correlate with
        # exported traces by a single grep.
        trace_id = new_trace_id()
        started = time.perf_counter()
        status, payload, headers = self._handle_post(trace_id)
        self._send_json(status, payload, headers)
        _LOG.info(
            "access trace_id=%s method=POST path=%s status=%d "
            "duration_ms=%.2f client=%s code=%s",
            trace_id, self.path, status,
            seconds_to_milliseconds(time.perf_counter() - started),
            self.address_string(),
            payload.get("error", {}).get("code", "ok")
            if isinstance(payload.get("error"), dict) else "ok")

    def _handle_post(self, trace_id: str) -> Tuple[
            int, Dict[str, Any], Optional[Dict[str, str]]]:
        """The POST pipeline as (status, payload, headers)."""
        if self.path != "/v1/estimate":
            return 404, error_body(
                "not_found", f"no such endpoint: {self.path}"), None
        service = self.server.service
        metrics = get_metrics()
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            return 400, error_body(
                "invalid_request",
                "a Content-Length header is required"), None
        if length > self.server.max_body_bytes:
            # Refuse before reading: an oversized body never costs
            # more than its headers.
            return 413, error_body(
                "body_too_large",
                f"request body of {length} bytes exceeds the "
                f"{self.server.max_body_bytes} byte limit"), None
        body = self.rfile.read(max(0, length))
        try:
            request = parse_estimate_request(body)
        except RequestValidationError as error:
            metrics.counter("serve.validation_errors").inc()
            return 400, error_body(
                error.code, str(error), field=error.field), None
        try:
            pending = service.submit(request, trace_id=trace_id)
        except ServiceOverloaded as error:
            status = 429 if error.code == "queue_full" else 503
            retry_after = max(1, ceil(error.retry_after_s))
            return (status, error_body(error.code, str(error)),
                    {"Retry-After": str(retry_after)})
        remaining = pending.deadline - service._clock()
        if not pending.done.wait(max(0.0, remaining)):
            # Abandon: the dispatcher will skip it if still queued;
            # an in-flight evaluation resolves into the void.
            pending.abandoned = True
            metrics.counter("serve.deadline_hits").inc()
            return 504, error_body(
                "deadline_exceeded",
                f"no result within the {remaining:.3f}s deadline"), None
        return pending.status, pending.payload, None


class ServeDaemon:
    """Owns the server socket, the service and the shutdown sequence."""

    def __init__(self, config: ServeConfig,
                 service: Optional[EstimationService] = None,
                 server_factory: Optional[Any] = None,
                 board: Optional[object] = None,
                 worker_index: Optional[int] = None) -> None:
        self.config = config
        if service is None:
            from repro.serve.breaker import CircuitBreaker
            service = EstimationService(
                queue_limit=config.queue_limit,
                default_deadline_s=config.deadline_s,
                breaker=CircuitBreaker(
                    failure_threshold=config.breaker_threshold,
                    cooldown_s=config.breaker_cooldown_s),
                drain_timeout_s=config.drain_timeout_s,
                prewarm=config.prewarm)
        self.service = service
        #: Callable ``handler_class -> _Server``; multi-worker workers
        #: inject this to bind SO_REUSEPORT sockets or adopt the
        #: master's inherited listener instead of a plain bind.
        self._server_factory = server_factory
        self._board = board
        self._worker_index = worker_index
        self.httpd: Optional[_Server] = None
        self._serve_thread: Optional[threading.Thread] = None
        self._shutdown_requested = threading.Event()

    def start(self) -> Tuple[str, int]:
        """Start the service + socket; returns the bound address."""
        self.service.start()
        if self.config.warm_model:
            from repro.serve.validation import warm_request
            self.service.warm(warm_request(self.config.warm_model))
            _LOG.info("warmed compile cache for %s",
                      self.config.warm_model)
        if self._server_factory is not None:
            self.httpd = self._server_factory(_Handler)
        else:
            self.httpd = _Server((self.config.host, self.config.port),
                                 _Handler)
        self.httpd.service = self.service
        self.httpd.max_body_bytes = self.config.max_body_bytes
        self.httpd.board = self._board
        self.httpd.worker_index = self._worker_index
        self._serve_thread = threading.Thread(
            target=self.httpd.serve_forever, name="serve-http",
            daemon=True)
        self._serve_thread.start()
        return self.httpd.server_address[0], self.httpd.server_address[1]

    def request_shutdown(self) -> None:
        """Signal-safe: ask the run loop to begin the graceful drain."""
        self._shutdown_requested.set()

    def shutdown(self) -> None:
        """Graceful drain: refuse new work, finish in-flight requests,
        stop the dispatcher, close the socket."""
        self.service.reject_new()
        if self.httpd is not None:
            self.httpd.shutdown()       # stop accepting
            self.httpd.server_close()   # join in-flight handlers
        self.service.stop(self.config.drain_timeout_s)
        if self._serve_thread is not None:
            self._serve_thread.join(self.config.drain_timeout_s)

    def run(self, install_signal_handlers: bool = True,
            announce: bool = True) -> int:
        """Foreground entry: serve until SIGTERM/SIGINT, then drain.

        ``announce=False`` suppresses the startup/shutdown lines —
        multi-worker workers stay quiet so the master prints exactly
        one ``serving on ...`` line for the whole fleet.
        """
        host, port = self.start()
        if install_signal_handlers:
            def _on_signal(signum: int, frame: Any) -> None:
                _LOG.info("received signal %d; draining", signum)
                self.request_shutdown()
            signal.signal(signal.SIGTERM, _on_signal)
            signal.signal(signal.SIGINT, _on_signal)
        if announce:
            # The smoke script and tests parse this exact line.
            print(f"serving on http://{host}:{port}", flush=True)
        self._shutdown_requested.wait()
        self.shutdown()
        if announce:
            print("shutdown complete", flush=True)
        return 0


def add_serve_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="listen port (0 = ephemeral)")
    parser.add_argument("--queue-limit", type=int, default=64,
                        help="admission queue bound; beyond it "
                             "requests shed with 429")
    parser.add_argument("--deadline", type=float, default=10.0,
                        dest="deadline_s", metavar="SECONDS",
                        help="default per-request deadline")
    parser.add_argument("--max-body-bytes", type=int,
                        default=DEFAULT_MAX_BODY_BYTES)
    parser.add_argument("--warm", default=None, metavar="MODEL",
                        dest="warm_model",
                        help="pre-compile this model's sweep tables "
                             "before accepting traffic")
    parser.add_argument("--breaker-threshold", type=int, default=3,
                        help="consecutive failures that trip the "
                             "circuit breaker")
    parser.add_argument("--breaker-cooldown", type=float, default=5.0,
                        dest="breaker_cooldown_s", metavar="SECONDS")
    parser.add_argument("--drain-timeout", type=float, default=10.0,
                        dest="drain_timeout_s", metavar="SECONDS",
                        help="how long shutdown waits for in-flight "
                             "work")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes; >1 runs the pre-fork "
                             "multi-worker daemon (SO_REUSEPORT when "
                             "the platform supports it)")
    parser.add_argument("--prewarm", default=True,
                        action=argparse.BooleanOptionalAction,
                        help="pre-compile neighbouring system sizes in "
                             "the background after each cache miss")


def config_from_args(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        host=args.host, port=args.port,
        queue_limit=args.queue_limit, deadline_s=args.deadline_s,
        max_body_bytes=args.max_body_bytes,
        warm_model=args.warm_model,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown_s,
        drain_timeout_s=args.drain_timeout_s,
        workers=args.workers,
        prewarm=args.prewarm)


def run_daemon(config: ServeConfig) -> int:
    """Run the daemon the configuration asks for: the single-process
    :class:`ServeDaemon` (``workers <= 1``, today's exact behavior) or
    the pre-fork multi-worker master from
    :mod:`repro.serve.multiproc`."""
    if config.workers > 1:
        from repro.serve.multiproc import MultiWorkerDaemon
        return MultiWorkerDaemon(config).run()
    return ServeDaemon(config).run()


def main(argv: Optional[list] = None) -> int:
    """``python -m repro.serve`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro.serve",
        description="hardened estimation-as-a-service daemon")
    add_serve_args(parser)
    parser.add_argument("--log-level", default="info",
                        choices=sorted(LOG_LEVELS))
    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    try:
        return run_daemon(config_from_args(args))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
