"""``python -m repro.serve`` — run the estimation daemon."""

import sys

from repro.serve.server import main

if __name__ == "__main__":
    sys.exit(main())
