"""Multi-point calibration: fit the model's free coefficients to traces.

The one-anchor workflows in :mod:`repro.fitting.calibration` move a
single knob to hit a single number.  This module fits **all** of the
model's free coefficients at once from many aligned (measured, modeled)
per-term pairs — the observations :mod:`repro.obs.ingest` extracts from
a Chrome trace or CSV timing file:

==========================  =============================================
``efficiency_a``            microbatch-efficiency asymptote ``a``
``efficiency_b``            half-saturation microbatch size ``b``
``flops_fraction``          achievable fraction of the datasheet peak
                            (whole-chip clock derate)
``link_latency_scale``      uniform multiplier on link latencies ``C``
``link_bandwidth_scale``    uniform multiplier on link bandwidths ``BW``
==========================  =============================================

The solver is a damped Gauss–Newton iteration on the **relative**
per-term residuals, run in log-parameter space (every coefficient is
positive, and log-space makes the step scale-free across ``a`` ~ 1 and
``b`` ~ 40).  The Jacobian is numeric (central differences); the normal
equations are solved with NumPy when it is installed (the same optional
dependency as the ``vectorized`` sweep backend) and with a pure-python
Gaussian elimination otherwise — both produce the same fit to solver
tolerance, which the no-numpy CI leg checks.

The result reports per-term residuals, R², parameter standard errors
(Gauss–Newton covariance), and *identifiability* diagnostics: the
condition number of the Jacobian and warnings for parameters the data
cannot constrain.  The classic trap is ``efficiency_a`` vs
``flops_fraction``: while ``eff(ub) = a·ub/(b+ub)`` is unclamped, every
compute term sees only the product ``a · fraction`` — only observations
where the efficiency ceiling binds (large microbatches) separate them.
See ``docs/calibration.md`` §4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.model import AMPeD
from repro.errors import ConfigurationError, require_finite_fields
from repro.hardware.catalog_io import derated_system
from repro.obs.ingest import TERM_NAMES, EstimateObservation
from repro.obs.trace import span
from repro.parallelism.microbatch import MicrobatchEfficiency

try:  # Optional extra, mirroring repro.search.vectorized.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on the no-numpy leg
    _np = None

HAVE_NUMPY = _np is not None

#: Every coefficient the fitter knows, in report order.
FIT_PARAMETERS: Tuple[str, ...] = (
    "efficiency_a", "efficiency_b", "flops_fraction",
    "link_latency_scale", "link_bandwidth_scale")

#: Condition number above which the fit is flagged as ill-conditioned.
CONDITION_WARNING_THRESHOLD = 1e8


@dataclass(frozen=True)
class FittedCoefficients:
    """The five fitted coefficients (identity values = uncalibrated)."""

    efficiency_a: float = 1.0
    efficiency_b: float = 4.0
    flops_fraction: float = 1.0
    link_latency_scale: float = 1.0
    link_bandwidth_scale: float = 1.0

    def __post_init__(self) -> None:
        require_finite_fields(self)
        for name in FIT_PARAMETERS:
            if not getattr(self, name) > 0:
                raise ConfigurationError(
                    f"{name} must be positive, got "
                    f"{getattr(self, name)!r}")

    def as_dict(self) -> Dict[str, float]:
        """Coefficients as a plain name→value dict (report order)."""
        return {name: getattr(self, name) for name in FIT_PARAMETERS}

    def apply(self, base: AMPeD) -> AMPeD:
        """``base`` recalibrated with these coefficients.

        The efficiency curve keeps the base's floor/ceiling clamps; the
        flops fraction and link scales derate the system through
        :func:`~repro.hardware.catalog_io.derated_system`.
        """
        template = base.efficiency
        efficiency = MicrobatchEfficiency(
            a=self.efficiency_a, b=self.efficiency_b,
            floor=template.floor, ceiling=template.ceiling)
        system = derated_system(
            base.system, flops_fraction=self.flops_fraction,
            link_latency_scale=self.link_latency_scale,
            link_bandwidth_scale=self.link_bandwidth_scale)
        return replace(base, efficiency=efficiency, system=system)


@dataclass(frozen=True)
class TermResidual:
    """One aligned (measured, modeled) pair at the fitted coefficients."""

    observation: str
    term: str
    measured_s: float
    modeled_s: float

    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def error_s(self) -> float:
        """Signed absolute error (modeled − measured)."""
        return self.modeled_s - self.measured_s

    @property
    def relative_error(self) -> float:
        """Signed relative error, against the measured value."""
        if self.measured_s != 0.0:
            return self.error_s / self.measured_s
        return 0.0 if self.modeled_s == 0.0 else math.inf  # amplint: disable=AMP003 — reporting value: a zero measurement against a non-zero prediction is infinitely wrong


@dataclass
class TraceFitResult:  # amplint: disable=AMP005 — condition_number and stderr carry inf as designed "unidentifiable" reporting values
    """Everything :func:`fit_from_observations` learned.

    ``stderr`` maps each *fitted* parameter to its log-space standard
    error — for small values this reads directly as a relative
    one-sigma uncertainty; :meth:`confidence_interval` converts it to
    multiplicative bounds.  ``condition_number`` is ``σmax/σmin`` of
    the final Jacobian over the fitted parameters (``inf`` when a
    parameter has no effect at all).
    """

    coefficients: FittedCoefficients
    fitted_parameters: Tuple[str, ...]
    residuals: List[TermResidual]
    r_squared: float
    sum_squared_relative: float
    iterations: int
    converged: bool
    condition_number: float
    stderr: Dict[str, float]
    warnings: List[str]
    backend: str
    n_observations: int

    def confidence_interval(self, name: str, sigmas: float = 2.0
                            ) -> Tuple[float, float]:
        """Multiplicative ``±sigmas`` bound on a fitted parameter."""
        value = getattr(self.coefficients, name)
        spread = self.stderr.get(name)
        if spread is None or not math.isfinite(spread):
            return (0.0, math.inf)  # amplint: disable=AMP003 — reporting value: unbounded interval for an unknown stderr
        return (value * math.exp(-sigmas * spread),
                value * math.exp(sigmas * spread))


def _aligned_pairs(observations: Sequence[EstimateObservation],
                   terms: Optional[Sequence[str]]
                   ) -> List[Tuple[EstimateObservation, str, float]]:
    wanted = tuple(terms) if terms is not None else TERM_NAMES
    pairs = []
    for observation in observations:
        for term in wanted:
            if term in observation.terms:
                pairs.append((observation, term,
                              float(observation.terms[term])))
    return pairs


def _prepare(base: AMPeD, observations: Sequence[EstimateObservation]
             ) -> List[Tuple[AMPeD, int]]:
    """One evaluation template per observation (mapping + batch bound,
    coefficients left for the solver to move)."""
    prepared = []
    for observation in observations:
        mapping = observation.mapping or base.parallelism
        global_batch = observation.global_batch
        if global_batch <= 0:
            raise ConfigurationError(
                f"observation {observation.source or '<unknown>'} "
                f"carries no positive global_batch; calibration needs "
                f"the batch size each measurement was taken at")
        # Collapsed path: exact, cheap, and free of the compiled-table
        # LRU (whose entries would be invalidated every solver step
        # anyway, since each step evaluates a different system).
        prepared.append((replace(base, parallelism=mapping,
                                 evaluation_path="collapsed",
                                 validate=False), global_batch))
    return prepared


def fit_from_observations(base: AMPeD,
                          observations: Sequence[EstimateObservation],
                          parameters: Sequence[str] = FIT_PARAMETERS,
                          terms: Optional[Sequence[str]] = None,
                          max_iterations: int = 60,
                          tolerance: float = 1e-12) -> TraceFitResult:
    """Fit the model's free coefficients to measured per-term times.

    Parameters
    ----------
    base:
        The scenario to calibrate — its model/precision/topologies are
        held fixed; its efficiency curve and system provide the
        starting coefficients.  Each observation's mapping and batch
        size override ``base``'s.
    observations:
        Aligned measurements from :mod:`repro.obs.ingest`.
    parameters:
        Subset of :data:`FIT_PARAMETERS` to fit (the rest stay at their
        base values).
    terms:
        Breakdown components to align on (default: every component
        present in an observation).
    max_iterations, tolerance:
        Gauss–Newton iteration cap and log-space step-norm stop.
    """
    fitted = tuple(parameters)
    for name in fitted:
        if name not in FIT_PARAMETERS:
            raise ConfigurationError(
                f"unknown fit parameter {name!r}; choose from "
                f"{FIT_PARAMETERS}")
    if not fitted:
        raise ConfigurationError("no parameters selected to fit")
    pairs = _aligned_pairs(observations, terms)
    if not pairs:
        raise ConfigurationError(
            "no aligned (measured, modeled) term pairs — the "
            "observations carry no recognizable breakdown terms")

    with span("calibrate.fit", category="fitting",
              attrs={"parameters": ",".join(fitted),
                     "n_observations": len(observations),
                     "n_residuals": len(pairs),
                     "backend": "numpy" if HAVE_NUMPY else "python"}):
        return _fit(base, observations, fitted, pairs,
                    max_iterations, tolerance)


def _fit(base: AMPeD, observations: Sequence[EstimateObservation],
         fitted: Tuple[str, ...],
         pairs: List[Tuple[EstimateObservation, str, float]],
         max_iterations: int, tolerance: float) -> TraceFitResult:
    prepared = _prepare(base, observations)
    by_observation: Dict[int, List[Tuple[str, float]]] = {}
    for index, observation in enumerate(observations):
        by_observation[index] = [
            (term, measured) for source, term, measured in pairs
            if source is observation]

    start = FittedCoefficients(
        efficiency_a=base.efficiency.a, efficiency_b=base.efficiency.b)
    measured_scale = max((measured for _, _, measured in pairs),
                         default=1.0) or 1.0

    def coefficients_at(x: Sequence[float]) -> FittedCoefficients:
        values = start.as_dict()
        for name, log_value in zip(fitted, x):
            values[name] = math.exp(log_value)
        return FittedCoefficients(**values)

    def residual_vector(x: Sequence[float]) -> List[float]:
        coefficients = coefficients_at(x)
        residuals: List[float] = []
        for index, (template, global_batch) in enumerate(prepared):
            wanted = by_observation[index]
            if not wanted:
                continue
            modeled = coefficients.apply(template) \
                .estimate_batch(global_batch).as_dict()
            for term, measured in wanted:
                scale = measured if measured > 0 else measured_scale
                residuals.append((modeled[term] - measured) / scale)
        return residuals

    x = [math.log(getattr(start, name)) for name in fitted]
    r = residual_vector(x)
    ssr = sum(value * value for value in r)
    n = len(fitted)
    damping = 0.0
    converged = False
    iterations = 0
    jacobian: List[List[float]] = []

    for iterations in range(1, max_iterations + 1):
        jacobian = _numeric_jacobian(residual_vector, x, r)
        step = None
        for _ in range(10):
            try:
                step = _solve_normal_equations(jacobian, r, damping)
            except ConfigurationError:
                damping = max(damping * 10.0, 1e-8)
                continue
            trial = [xi + di for xi, di in zip(x, step)]
            trial_r = residual_vector(trial)
            trial_ssr = sum(value * value for value in trial_r)
            if trial_ssr <= ssr or trial_ssr <= ssr * (1 + 1e-14):
                x, r, ssr = trial, trial_r, trial_ssr
                damping /= 10.0
                if damping < 1e-14:
                    damping = 0.0
                break
            damping = max(damping * 10.0, 1e-8)
            step = None
        if step is None:
            # Even a heavily damped step cannot reduce the residual:
            # the gradient is numerically zero, i.e. the iteration sits
            # on a stationary point (typically the noise floor of a
            # noisy fit).  That *is* convergence.
            converged = True
            break
        if max(abs(value) for value in step) < tolerance:
            converged = True
            break

    coefficients = coefficients_at(x)
    warnings: List[str] = []
    condition = _condition_number(jacobian, n, fitted, warnings)
    stderr = _parameter_stderr(jacobian, ssr, len(r), fitted, warnings)
    if not converged and iterations >= max_iterations:
        warnings.append(
            f"did not converge within {max_iterations} iterations "
            f"(last sum of squares {ssr:.3e})")

    residuals: List[TermResidual] = []
    for index, (template, global_batch) in enumerate(prepared):
        wanted = by_observation[index]
        if not wanted:
            continue
        modeled = coefficients.apply(template) \
            .estimate_batch(global_batch).as_dict()
        for term, measured in wanted:
            residuals.append(TermResidual(
                observation=observations[index].source,
                term=term, measured_s=measured,
                modeled_s=modeled[term]))

    measured_values = [item.measured_s for item in residuals]
    mean_measured = sum(measured_values) / len(measured_values)
    total_ss = sum((value - mean_measured) ** 2
                   for value in measured_values)
    residual_ss = sum(item.error_s ** 2 for item in residuals)
    if total_ss > 0:
        r_squared = 1.0 - residual_ss / total_ss
    else:
        r_squared = 1.0 if residual_ss == 0 else 0.0

    return TraceFitResult(
        coefficients=coefficients,
        fitted_parameters=fitted,
        residuals=residuals,
        r_squared=r_squared,
        sum_squared_relative=ssr,
        iterations=iterations,
        converged=converged,
        condition_number=condition,
        stderr=stderr,
        warnings=warnings,
        backend="numpy" if HAVE_NUMPY else "python",
        n_observations=len(observations),
    )


# ---------------------------------------------------------------------------
# Numerics (NumPy fast path + pure-python fallback)
# ---------------------------------------------------------------------------


def _numeric_jacobian(residual_fn: Callable[[Sequence[float]],
                                            List[float]],
                      x: Sequence[float],
                      r0: List[float],
                      step: float = 1e-6) -> List[List[float]]:
    """Central-difference Jacobian, rows = residuals, cols = params."""
    m, n = len(r0), len(x)
    jacobian = [[0.0] * n for _ in range(m)]
    for column in range(n):
        forward = list(x)
        backward = list(x)
        forward[column] += step
        backward[column] -= step
        r_forward = residual_fn(forward)
        r_backward = residual_fn(backward)
        inv = 1.0 / (2.0 * step)
        for row in range(m):
            jacobian[row][column] = (r_forward[row]
                                     - r_backward[row]) * inv
    return jacobian


def _solve_normal_equations(jacobian: List[List[float]],
                            residuals: List[float],
                            damping: float) -> List[float]:
    """Solve ``(JᵀJ + λ diag(JᵀJ)) δ = -Jᵀ r`` (Levenberg damping)."""
    n = len(jacobian[0])
    if HAVE_NUMPY:
        j = _np.asarray(jacobian, dtype=_np.float64)
        r = _np.asarray(residuals, dtype=_np.float64)
        jtj = j.T @ j
        if damping:
            jtj = jtj + damping * _np.diag(_np.maximum(
                _np.diag(jtj), 1e-30))
        rhs = -(j.T @ r)
        try:
            return list(_np.linalg.solve(jtj, rhs))
        except _np.linalg.LinAlgError as error:
            raise ConfigurationError(
                f"normal equations are singular ({error})") from None
    jtj = [[sum(jacobian[k][i] * jacobian[k][j]
                for k in range(len(jacobian)))
            for j in range(n)] for i in range(n)]
    if damping:
        for i in range(n):
            jtj[i][i] += damping * max(jtj[i][i], 1e-30)
    rhs = [-sum(jacobian[k][i] * residuals[k]
                for k in range(len(jacobian))) for i in range(n)]
    return _solve_linear(jtj, rhs)


def _solve_linear(matrix: List[List[float]],
                  rhs: List[float]) -> List[float]:
    """Gaussian elimination with partial pivoting (n ≤ 5 here)."""
    n = len(rhs)
    a = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for column in range(n):
        pivot = max(range(column, n), key=lambda r: abs(a[r][column]))
        if abs(a[pivot][column]) < 1e-300:
            raise ConfigurationError("normal equations are singular")
        a[column], a[pivot] = a[pivot], a[column]
        inv = 1.0 / a[column][column]
        for row in range(column + 1, n):
            factor = a[row][column] * inv
            if factor == 0.0:
                continue
            for k in range(column, n + 1):
                a[row][k] -= factor * a[column][k]
    solution = [0.0] * n
    for row in range(n - 1, -1, -1):
        accumulated = a[row][n] - sum(a[row][k] * solution[k]
                                      for k in range(row + 1, n))
        solution[row] = accumulated / a[row][row]
    return solution


def _symmetric_eigenvalues(matrix: List[List[float]],
                           sweeps: int = 50) -> List[float]:
    """Eigenvalues of a small symmetric matrix (cyclic Jacobi)."""
    n = len(matrix)
    a = [row[:] for row in matrix]
    for _ in range(sweeps):
        off = math.sqrt(sum(a[i][j] ** 2 for i in range(n)
                            for j in range(n) if i != j))
        if off < 1e-300:
            break
        for p in range(n - 1):
            for q in range(p + 1, n):
                if a[p][q] == 0.0:
                    continue
                theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q])
                t = math.copysign(
                    1.0 / (abs(theta) + math.sqrt(theta * theta + 1.0)),
                    theta) if theta != 0 else 1.0
                c = 1.0 / math.sqrt(t * t + 1.0)
                s = t * c
                for k in range(n):
                    akp, akq = a[k][p], a[k][q]
                    a[k][p] = c * akp - s * akq
                    a[k][q] = s * akp + c * akq
                for k in range(n):
                    apk, aqk = a[p][k], a[q][k]
                    a[p][k] = c * apk - s * aqk
                    a[q][k] = s * apk + c * aqk
    return [a[i][i] for i in range(n)]


def _condition_number(jacobian: List[List[float]], n: int,
                      fitted: Tuple[str, ...],
                      warnings: List[str]) -> float:
    """``σmax/σmin`` of the Jacobian + per-parameter zero-column and
    overall conditioning warnings."""
    if not jacobian:
        return math.inf  # amplint: disable=AMP003 — reporting value: no residuals means no conditioning at all
    column_norms = [math.sqrt(sum(row[i] ** 2 for row in jacobian))
                    for i in range(n)]
    largest = max(column_norms) or 1.0
    for name, norm in zip(fitted, column_norms):
        if norm < 1e-12 * largest:
            warnings.append(
                f"parameter {name!r} has no measurable effect on the "
                f"aligned terms (zero Jacobian column) — it is not "
                f"identifiable from this data")
    if HAVE_NUMPY:
        singular = _np.linalg.svd(
            _np.asarray(jacobian, dtype=_np.float64),
            compute_uv=False)
        smallest = float(singular[-1])
        if smallest == 0.0:
            condition = math.inf  # amplint: disable=AMP003 — reporting value: zero singular value = unidentifiable direction
        else:
            condition = float(singular[0]) / smallest
    else:
        jtj = [[sum(jacobian[k][i] * jacobian[k][j]
                    for k in range(len(jacobian)))
                for j in range(n)] for i in range(n)]
        eigenvalues = [max(value, 0.0)
                       for value in _symmetric_eigenvalues(jtj)]
        largest_eig = max(eigenvalues)
        smallest_eig = min(eigenvalues)
        if smallest_eig <= 0.0:
            condition = math.inf  # amplint: disable=AMP003 — reporting value: zero eigenvalue = unidentifiable direction
        else:
            condition = math.sqrt(largest_eig / smallest_eig)
    if condition > CONDITION_WARNING_THRESHOLD:
        warnings.append(
            f"ill-conditioned fit (condition number {condition:.2e}) — "
            f"some parameter combination is nearly degenerate; the "
            f"usual suspect is efficiency_a vs flops_fraction when no "
            f"observation saturates the efficiency ceiling")
    return condition


def _parameter_stderr(jacobian: List[List[float]], ssr: float,
                      n_residuals: int, fitted: Tuple[str, ...],
                      warnings: List[str]) -> Dict[str, float]:
    """Log-space standard errors from the Gauss–Newton covariance
    ``σ² (JᵀJ)⁻¹``."""
    n = len(fitted)
    dof = n_residuals - n
    if dof <= 0:
        warnings.append(
            f"{n_residuals} residuals for {n} parameters — no degrees "
            f"of freedom left, uncertainty is unreported")
        return {name: math.inf for name in fitted}  # amplint: disable=AMP003 — reporting value: unknown uncertainty
    sigma_sq = ssr / dof
    jtj = [[sum(jacobian[k][i] * jacobian[k][j]
                for k in range(len(jacobian)))
            for j in range(n)] for i in range(n)]
    stderr: Dict[str, float] = {}
    try:
        for index, name in enumerate(fitted):
            basis = [1.0 if i == index else 0.0 for i in range(n)]
            inverse_column = _solve_linear(jtj, basis)
            variance = sigma_sq * inverse_column[index]
            stderr[name] = math.sqrt(variance) if variance > 0 else 0.0
    except ConfigurationError:
        return {name: math.inf for name in fitted}  # amplint: disable=AMP003 — reporting value: singular JtJ leaves uncertainty unknown
    return stderr
