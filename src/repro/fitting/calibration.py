"""Calibration workflows: anchor AMPeD's knobs on measurements.

The paper's method statement — "AMPeD can use empirically derived
efficiency factors to accurately predict the training time" — becomes a
reusable workflow here: pick one measured anchor (a published
TFLOP/s/GPU, a measured batch time), solve for the efficiency scale
that reproduces it, and apply the calibrated model to everything else.
The Table II experiment uses exactly this, anchored on its first row.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.model import AMPeD
from repro.errors import ConfigurationError, require_finite_fields
from repro.fitting.overlap_fit import bisect_scalar
from repro.parallelism.microbatch import MicrobatchEfficiency
from repro.units import Seconds


@dataclass(frozen=True)
class CalibrationResult:
    """A calibrated model plus what the calibration did."""

    amped: AMPeD
    efficiency: MicrobatchEfficiency
    anchor_value: float
    achieved_value: float


    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def anchor_error(self) -> float:
        """Residual fractional error at the anchor (should be tiny)."""
        return abs(self.achieved_value - self.anchor_value) \
            / self.anchor_value


def calibrate_efficiency_to_tflops(amped: AMPeD, global_batch: int,
                                   target_tflops_per_gpu: float,
                                   a_bounds=(0.05, 1.5)
                                   ) -> CalibrationResult:
    """Solve for the efficiency scale ``a`` that hits a measured
    TFLOP/s/GPU at the anchor configuration.

    The shape parameter ``b`` and the clamps of the template's
    efficiency fit are preserved; only the asymptote ``a`` moves.
    """
    if target_tflops_per_gpu <= 0:
        raise ConfigurationError(
            f"target throughput must be positive, got "
            f"{target_tflops_per_gpu}")
    template = amped.efficiency

    def with_a(a: float) -> AMPeD:
        efficiency = MicrobatchEfficiency(
            a=a, b=template.b, floor=template.floor,
            ceiling=template.ceiling)
        return replace(amped, efficiency=efficiency)

    def tflops(a: float) -> float:
        return with_a(a).achieved_tflops_per_gpu(global_batch)

    fitted_a = bisect_scalar(tflops, target_tflops_per_gpu,
                             low=a_bounds[0], high=a_bounds[1],
                             tolerance=1e-4)
    calibrated = with_a(fitted_a)
    return CalibrationResult(
        amped=calibrated,
        efficiency=calibrated.efficiency,
        anchor_value=target_tflops_per_gpu,
        achieved_value=calibrated.achieved_tflops_per_gpu(global_batch),
    )


def calibrate_efficiency_to_batch_time(amped: AMPeD, global_batch: int,
                                       target_batch_time_s: float,
                                       a_bounds=(0.05, 1.5)
                                       ) -> CalibrationResult:
    """Solve for the efficiency scale that reproduces a measured batch
    time (the in-house-experiment flavor of calibration)."""
    if target_batch_time_s <= 0:
        raise ConfigurationError(
            f"target batch time must be positive, got "
            f"{target_batch_time_s}")
    template = amped.efficiency

    def with_a(a: float) -> AMPeD:
        efficiency = MicrobatchEfficiency(
            a=a, b=template.b, floor=template.floor,
            ceiling=template.ceiling)
        return replace(amped, efficiency=efficiency)

    def batch_time(a: float) -> Seconds:
        return with_a(a).estimate_batch(global_batch).total

    fitted_a = bisect_scalar(batch_time, target_batch_time_s,
                             low=a_bounds[0], high=a_bounds[1],
                             tolerance=target_batch_time_s * 1e-6)
    calibrated = with_a(fitted_a)
    return CalibrationResult(
        amped=calibrated,
        efficiency=calibrated.efficiency,
        anchor_value=target_batch_time_s,
        achieved_value=calibrated.estimate_batch(global_batch).total,
    )
