"""Estimating the bubble-overlap ratio ``R`` of Eq. 8.

The paper sets R = 1 for its Table II estimates and observes that the
resulting error grows with pipeline depth because the published runs
used *interleaved* pipelining, which overlaps bubbles: "R can be tuned
to fit the data or can be modeled in more detail as a function of
pipeline stages and interleaving".  This module does both:

- :func:`measure_overlap_ratio` — run the discrete-event pipeline
  simulator with an interleaved schedule and report the measured bubble
  fraction relative to the naive bound, i.e. an *a priori* R for a
  given (stages, microbatches, chunks).
- :func:`interleaving_overlap_model` — the closed-form ``R ~ 1/v`` for
  ``v`` model chunks per stage (Narayanan et al.'s analysis), which the
  simulator-based estimate validates.
- :func:`fit_overlap_to_target` — invert AMPeD for R by bisection so a
  measured throughput pins the ratio (the "tuned to fit" reading).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.core.model import AMPeD
from repro.errors import ConfigurationError
from repro.pipeline.simulator import (
    PipelineWorkload,
    naive_bubble_fraction,
    simulate_pipeline,
)


def interleaving_overlap_model(n_chunks: int) -> float:
    """Closed-form overlap ratio for ``v`` chunks per stage: ``R = 1/v``.

    With each stage holding ``v`` interleaved model chunks, fill/drain
    idle time shrinks by the chunk count (each warm-up step now covers
    ``1/v`` of a stage's work).
    """
    if n_chunks < 1:
        raise ConfigurationError(
            f"n_chunks must be >= 1, got {n_chunks}")
    return 1.0 / n_chunks


def measure_overlap_ratio(n_stages: int, n_microbatches: int,
                          n_chunks: int,
                          forward_time: float = 1.0,
                          backward_time: float = 2.0,
                          comm_time: float = 0.0) -> float:
    """Empirical ``R`` from the discrete-event simulator.

    Runs the interleaved schedule with per-chunk task times scaled by
    ``1/n_chunks`` (the same total work) and reports its bubble fraction
    over the naive GPipe bound.
    """
    if n_stages < 2:
        raise ConfigurationError(
            f"need at least 2 stages to have a bubble, got {n_stages}")
    result = simulate_pipeline(
        PipelineWorkload(forward_time=forward_time / n_chunks,
                         backward_time=backward_time / n_chunks,
                         comm_time=comm_time),
        n_stages=n_stages,
        n_microbatches=n_microbatches,
        schedule="interleaved" if n_chunks > 1 else "gpipe",
        n_chunks=n_chunks,
    )
    naive = naive_bubble_fraction(n_stages, n_microbatches)
    return result.overlap_ratio(naive)


def fit_overlap_to_target(amped: AMPeD, global_batch: int,
                          target_tflops_per_gpu: float,
                          tolerance: float = 1e-3,
                          max_iterations: int = 60) -> float:
    """Bisection for the ``R`` that makes AMPeD hit a measured
    throughput.

    Returns the fitted ratio in [0, 1].  Raises
    :class:`ConfigurationError` when the target is unreachable: above
    the R = 0 (bubble-free) prediction or below the R = 1 one.
    """
    if target_tflops_per_gpu <= 0:
        raise ConfigurationError(
            f"target throughput must be positive, got "
            f"{target_tflops_per_gpu}")

    def tflops_at(ratio: float) -> float:
        tuned = replace(
            amped,
            parallelism=amped.parallelism.with_overlap(ratio))
        return tuned.achieved_tflops_per_gpu(global_batch)

    low, high = 0.0, 1.0  # tflops decreases as R grows
    top, bottom = tflops_at(low), tflops_at(high)
    if not bottom <= target_tflops_per_gpu <= top:
        raise ConfigurationError(
            f"target {target_tflops_per_gpu:.1f} TFLOP/s/GPU outside "
            f"the reachable range [{bottom:.1f}, {top:.1f}] for this "
            f"configuration")
    for _ in range(max_iterations):
        mid = (low + high) / 2.0
        value = tflops_at(mid)
        if abs(value - target_tflops_per_gpu) <= tolerance:
            return mid
        if value > target_tflops_per_gpu:
            low = mid  # too fast -> need more bubble
        else:
            high = mid
    return (low + high) / 2.0


def bisect_scalar(function: Callable[[float], float], target: float,  # amplint: disable=AMP104 — generic bisection: target/tolerance carry whatever unit `function` returns
                  low: float, high: float,
                  tolerance: float = 1e-6,
                  max_iterations: int = 100) -> float:
    """Generic monotone-function bisection (exposed for calibration
    workflows; ``function`` may be increasing or decreasing)."""
    f_low, f_high = function(low), function(high)
    if f_low == f_high:
        raise ConfigurationError(
            "function is constant on the bracket; cannot bisect")
    increasing = f_high > f_low
    lo_val, hi_val = (f_low, f_high) if increasing else (f_high, f_low)
    if not lo_val <= target <= hi_val:
        raise ConfigurationError(
            f"target {target:.4g} outside bracket "
            f"[{lo_val:.4g}, {hi_val:.4g}]")
    for _ in range(max_iterations):
        mid = (low + high) / 2.0
        value = function(mid)
        if abs(value - target) <= tolerance:
            return mid
        if (value < target) == increasing:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0
