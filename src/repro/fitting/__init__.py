"""Fitting and calibration: the paper's empirical knobs, made rigorous.

- efficiency-curve fitting (``eff(ub) = a*ub/(b+ub)``) from measured
  points — the paper's declared future work;
- bubble-overlap ratio ``R`` estimation, both a priori (from the
  discrete-event simulator) and a posteriori (fit to a measured
  throughput);
- one-anchor calibration workflows.
"""

from repro.fitting.calibration import (
    CalibrationResult,
    calibrate_efficiency_to_batch_time,
    calibrate_efficiency_to_tflops,
)
from repro.fitting.efficiency_fit import (
    EfficiencyFitResult,
    fit_efficiency,
)
from repro.fitting.overlap_fit import (
    bisect_scalar,
    fit_overlap_to_target,
    interleaving_overlap_model,
    measure_overlap_ratio,
)

__all__ = [
    "fit_efficiency",
    "EfficiencyFitResult",
    "measure_overlap_ratio",
    "interleaving_overlap_model",
    "fit_overlap_to_target",
    "bisect_scalar",
    "calibrate_efficiency_to_tflops",
    "calibrate_efficiency_to_batch_time",
    "CalibrationResult",
]
