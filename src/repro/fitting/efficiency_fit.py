"""Fitting the microbatch-efficiency curve from measurements.

The paper derives ``eff(ub) = a*ub/(b+ub)`` "by fitting the experimental
data" and leaves "a predictive model for eff(ub) ... for future work".
This module implements the fitting half rigorously:

- :func:`fit_efficiency` — least-squares fit of (a, b) through any
  number of measured ``(ub, eff)`` points.  The model linearizes
  exactly: ``1/eff = 1/a + (b/a) * (1/ub)``, so ordinary least squares
  on reciprocals recovers the parameters without iteration.
- :class:`EfficiencyFitResult` — the fitted curve plus goodness-of-fit
  diagnostics (RMSE, coefficient of determination).

The reciprocal linearization weights small-``ub`` points more heavily
(their reciprocals are larger); that is usually desirable here because
the small-microbatch regime is where the fit drives mapping decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError, require_finite_fields
from repro.parallelism.microbatch import MicrobatchEfficiency


@dataclass(frozen=True)
class EfficiencyFitResult:
    """A fitted efficiency curve with diagnostics."""

    efficiency: MicrobatchEfficiency
    points: Tuple[Tuple[float, float], ...]
    rmse: float
    r_squared: float


    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def a(self) -> float:
        """Fitted asymptote parameter."""
        return self.efficiency.a

    @property
    def b(self) -> float:
        """Fitted half-saturation microbatch size."""
        return self.efficiency.b

    def residuals(self) -> List[float]:
        """Measured minus fitted efficiency, per point."""
        return [eff - self.efficiency(ub) for ub, eff in self.points]


def fit_efficiency(points: Sequence[Tuple[float, float]],
                   floor: float = 0.0,
                   ceiling: float = 1.0) -> EfficiencyFitResult:
    """Least-squares fit of ``eff(ub) = a*ub/(b+ub)`` through points.

    Parameters
    ----------
    points:
        Measured ``(microbatch_size, efficiency)`` pairs; at least two
        distinct microbatch sizes, efficiencies in (0, 1].
    floor, ceiling:
        Clamps applied to the resulting
        :class:`~repro.parallelism.microbatch.MicrobatchEfficiency`.

    Raises
    ------
    ConfigurationError
        On degenerate inputs or when the points imply a non-saturating
        curve (negative fitted ``b``).
    """
    cleaned = [(float(ub), float(eff)) for ub, eff in points]
    if len(cleaned) < 2:
        raise ConfigurationError(
            f"need at least two points to fit, got {len(cleaned)}")
    for ub, eff in cleaned:
        if ub <= 0:
            raise ConfigurationError(
                f"microbatch sizes must be positive, got {ub}")
        if not 0 < eff <= 1:
            raise ConfigurationError(
                f"efficiencies must be in (0, 1], got {eff}")
    if len({ub for ub, _ in cleaned}) < 2:
        raise ConfigurationError(
            "need at least two distinct microbatch sizes")

    # Exact linearization: y = 1/eff, x = 1/ub, y = c0 + c1 * x with
    # c0 = 1/a, c1 = b/a.
    xs = [1.0 / ub for ub, _ in cleaned]
    ys = [1.0 / eff for _, eff in cleaned]
    c0, c1 = _linear_least_squares(xs, ys)
    if c0 <= 0:
        raise ConfigurationError(
            f"points imply a non-physical asymptote (1/a = {c0:.3g}); "
            f"check the measurements")
    a = 1.0 / c0
    b = c1 * a
    if b < 0:
        raise ConfigurationError(
            f"points imply a non-saturating curve (b = {b:.3g}); "
            f"efficiency should increase with microbatch size")

    efficiency = MicrobatchEfficiency(a=a, b=b, floor=floor,
                                      ceiling=ceiling)
    fitted = [efficiency(ub) for ub, _ in cleaned]
    measured = [eff for _, eff in cleaned]
    rmse = (sum((f - m) ** 2 for f, m in zip(fitted, measured))
            / len(cleaned)) ** 0.5
    mean = sum(measured) / len(measured)
    total_ss = sum((m - mean) ** 2 for m in measured)
    residual_ss = sum((f - m) ** 2 for f, m in zip(fitted, measured))
    r_squared = 1.0 if total_ss == 0 else 1.0 - residual_ss / total_ss
    return EfficiencyFitResult(
        efficiency=efficiency,
        points=tuple(cleaned),
        rmse=rmse,
        r_squared=r_squared,
    )


def _linear_least_squares(xs: Sequence[float],
                          ys: Sequence[float]) -> Tuple[float, float]:
    """Ordinary least squares for ``y = c0 + c1 x`` (closed form)."""
    n = len(xs)
    sum_x = sum(xs)
    sum_y = sum(ys)
    sum_xx = sum(x * x for x in xs)
    sum_xy = sum(x * y for x, y in zip(xs, ys))
    denominator = n * sum_xx - sum_x * sum_x
    if denominator == 0:
        raise ConfigurationError(
            "degenerate regression: all microbatch sizes equal")
    c1 = (n * sum_xy - sum_x * sum_y) / denominator
    c0 = (sum_y - c1 * sum_x) / n
    return c0, c1
