"""Command-line interface: ``amped`` / ``python -m repro``.

Subcommands:

- ``estimate`` — one AMPeD evaluation with a printed breakdown.
- ``sweep`` — exhaustive mapping exploration on a system, best-first.
- ``validate`` — reproduce the paper's validation artifacts
  (Table II, Table III, Fig. 2a/2b) and print error reports.
- ``experiment`` — run a named experiment (fig3, fig4..fig9, fig10,
  fig11, fig2c) and print its series.
- ``recommend`` — the paper's conclusions as a one-step mapping
  recommendation, with its rationale.
- ``sensitivity`` — per-knob elasticity of batch time (co-design
  tornado).
- ``cost`` — dollars, energy and CO2 for a full training run.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

from repro.core.model import AMPeD
from repro.errors import ReproError
from repro.obs.export import write_chrome_trace, write_metrics_snapshot
from repro.obs.logs import LOG_LEVELS, configure_logging
from repro.obs.metrics import collect_cache_metrics, get_metrics
from repro.obs.trace import get_tracer, span
from repro.hardware.catalog import ACCELERATORS
from repro.hardware.interconnect import IB_EDR, IB_HDR, IB_NDR, NVLINK3
from repro.hardware.node import NodeSpec
from repro.hardware.system import SystemSpec
from repro.parallelism.microbatch import (
    CASE_STUDY_EFFICIENCY,
    MicrobatchEfficiency,
)
from repro.parallelism.spec import spec_from_totals
from repro.reporting.tables import render_table
from repro.transformer.zoo import MODELS, get_model
from repro.units import format_duration, seconds_to_microseconds

_INTER_LINKS = {"edr": IB_EDR, "hdr": IB_HDR, "ndr": IB_NDR}

#: The CLI's user-facing output channel (see :mod:`repro.obs.logs`):
#: INFO lands on stdout bare, ERROR on stderr, levels honor
#: ``--log-level``.  At the default level the output is byte-identical
#: to the historical ``print()`` behaviour.
_OUT = logging.getLogger("repro.cli")


def _say(message: str = "") -> None:
    """Emit one line of user-facing CLI output."""
    _OUT.info(message)


def build_parser() -> argparse.ArgumentParser:
    """The ``amped`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="amped",
        description="AMPeD: analytical performance model for distributed "
                    "transformer training (ISPASS 2023 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    estimate = sub.add_parser(
        "estimate", help="evaluate one configuration")
    _add_system_args(estimate)
    _add_catalog_entry_arg(estimate)
    estimate.add_argument("--tp", type=int, default=1)
    estimate.add_argument("--pp", type=int, default=1)
    estimate.add_argument("--dp", type=int, default=1)
    estimate.add_argument("--batch", type=int, default=2048)
    estimate.add_argument("--tokens", type=float, default=None,
                          help="corpus size; prints total training days")

    sweep = sub.add_parser(
        "sweep", help="explore every parallelism mapping")
    _add_system_args(sweep)
    _add_catalog_entry_arg(sweep)
    sweep.add_argument("--batch", type=int, default=2048)
    sweep.add_argument("--top", type=int, default=10)
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the sweep "
                            "(1 = serial; ranking is identical)")
    sweep.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock limit per batch of worker "
                            "results before the batch is retried")
    sweep.add_argument("--retries", type=int, default=2,
                       help="consecutive worker failures tolerated "
                            "(with exponential backoff) before the "
                            "sweep degrades to serial execution")
    sweep.add_argument("--journal", default=None, metavar="PATH",
                       help="append progress to a JSONL sweep journal "
                            "(resumable with --resume)")
    sweep.add_argument("--resume", default=None, metavar="JOURNAL",
                       help="resume an interrupted sweep from its "
                            "journal; finished candidates are never "
                            "re-evaluated")
    sweep.add_argument("--eval-mode", default="compiled",
                       metavar="{per_layer,collapsed,compiled,"
                               "vectorized}",
                       dest="eval_mode",
                       help="evaluation path for every candidate "
                            "(default: compiled — term-table lookups, "
                            "auto-upgraded to vectorized on large "
                            "sweeps when NumPy is available; all "
                            "paths rank identically)")

    validate = sub.add_parser(
        "validate", help="reproduce the paper's validation tables")

    experiment = sub.add_parser(
        "experiment", help="run a named paper experiment")
    experiment.add_argument(
        "name",
        choices=["fig2a", "fig2b", "fig2c", "fig3", "fig4", "fig5",
                 "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
                 "table2-interleaved", "scaling", "family", "context"])

    recommend = sub.add_parser(
        "recommend", help="one-step mapping recommendation")
    _add_system_args(recommend)

    sensitivity = sub.add_parser(
        "sensitivity", help="per-knob elasticity of batch time")
    _add_system_args(sensitivity)
    sensitivity.add_argument("--tp", type=int, default=8)
    sensitivity.add_argument("--pp", type=int, default=1)
    sensitivity.add_argument("--dp", type=int, default=16)
    sensitivity.add_argument("--batch", type=int, default=2048)

    cost = sub.add_parser(
        "cost", help="dollars, energy and CO2 for a training run")
    _add_system_args(cost)
    cost.add_argument("--tp", type=int, default=8)
    cost.add_argument("--pp", type=int, default=1)
    cost.add_argument("--dp", type=int, default=16)
    cost.add_argument("--batch", type=int, default=2048)
    cost.add_argument("--tokens", type=float, default=3e11)
    cost.add_argument("--usd-per-gpu-hour", type=float, default=4.1)

    export = sub.add_parser(
        "export", help="write every experiment's data series to CSV")
    export.add_argument("--outdir", default="results",
                        help="output directory (created if missing)")
    export.add_argument("--skip-sweeps", action="store_true",
                        help="skip the slow Case Study I sweeps")

    serve = sub.add_parser(
        "serve", help="run the estimation-as-a-service HTTP daemon")
    from repro.serve.server import add_serve_args
    add_serve_args(serve)

    calibrate = sub.add_parser(
        "calibrate",
        help="fit model coefficients to measured per-term timings "
             "and report model-vs-measured drift")
    _add_system_args(calibrate)
    calibrate.add_argument(
        "--trace", dest="trace_input", default=None, metavar="PATH",
        help="Chrome trace-event JSON (as written by --trace on other "
             "subcommands / repro.obs.export) to ingest")
    calibrate.add_argument(
        "--csv", dest="csv_input", default=None, metavar="PATH",
        help="CSV timing file (term,seconds[,...] — see "
             "docs/calibration.md) to ingest")
    calibrate.add_argument(
        "--batch", type=int, default=None,
        help="global batch size for observations that do not carry "
             "one (CSV files without a global_batch column)")
    calibrate.add_argument(
        "--fit", default=",".join(
            ("efficiency_a", "efficiency_b", "flops_fraction",
             "link_latency_scale", "link_bandwidth_scale")),
        metavar="PARAMS",
        help="comma-separated coefficients to fit (default: all five)")
    calibrate.add_argument(
        "--threshold", type=float, default=0.05,
        help="relative-error threshold above which a term is flagged "
             "as drifted (default: 0.05)")
    calibrate.add_argument(
        "--write-catalog", dest="write_catalog", default=None,
        metavar="PATH",
        help="write the calibrated system + efficiency curve as a "
             "catalog entry JSON")
    calibrate.add_argument(
        "--catalog-name", dest="catalog_name", default=None,
        help="name recorded in the catalog entry (default: "
             "'<accelerator>-calibrated')")
    calibrate.add_argument(
        "--report", dest="report", default=None, metavar="PATH",
        help="write the drift report as JSON")

    for command_parser in sub.choices.values():
        _add_obs_args(command_parser)
    return parser


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability")
    if "--trace" not in parser._option_string_actions:
        # `calibrate` claims --trace as its *input* flag (the trace to
        # ingest); every other subcommand gets the trace-output flag.
        group.add_argument(
            "--trace", default=None, metavar="PATH",
            help="record spans and modeled-time events, and "
                 "write a Chrome trace-event JSON (open in "
                 "chrome://tracing or ui.perfetto.dev)")
    group.add_argument("--metrics", nargs="?", const="", default=None,
                       metavar="PATH",
                       help="print a metrics snapshot after the "
                            "command (or write it as JSON to PATH)")
    group.add_argument("--log-level", default="info",
                       choices=sorted(LOG_LEVELS), dest="log_level",
                       help="verbosity of CLI output and library "
                            "diagnostics (default: info)")


def _add_system_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="megatron-145b",
                        choices=sorted(MODELS))
    parser.add_argument("--accelerator", default="a100",
                        choices=sorted(ACCELERATORS))
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--accel-per-node", type=int, default=8)
    parser.add_argument("--nics", type=int, default=8)
    parser.add_argument("--inter", default="hdr",
                        choices=sorted(_INTER_LINKS))


def _add_catalog_entry_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--catalog-entry", default=None, metavar="PATH",
        dest="catalog_entry",
        help="evaluate against a calibrated catalog entry written by "
             "'amped calibrate --write-catalog' instead of the stock "
             "hardware flags (--accelerator/--nodes/... are ignored; "
             "--model still selects the transformer)")


def _system_from_args(args) -> SystemSpec:
    node = NodeSpec(
        accelerator=ACCELERATORS[args.accelerator],
        n_accelerators=args.accel_per_node,
        intra_link=NVLINK3,
        inter_link=_INTER_LINKS[args.inter],
        n_nics=args.nics,
    )
    return SystemSpec(node=node, n_nodes=args.nodes)


def _efficiency() -> MicrobatchEfficiency:
    return CASE_STUDY_EFFICIENCY


def _resolve_system(args):
    """``(system, efficiency, note)`` for estimate/sweep.

    ``--catalog-entry`` swaps in the calibrated system and efficiency
    curve written by ``amped calibrate --write-catalog``; otherwise the
    stock hardware flags and the paper's case-study curve apply.
    ``note`` names the entry for the report header (None for stock)."""
    path = getattr(args, "catalog_entry", None)
    if path is None:
        return _system_from_args(args), _efficiency(), None
    from repro.hardware.catalog_io import load_catalog_entry
    name, system, efficiency, _provenance = load_catalog_entry(path)
    return system, efficiency, f"calibrated entry {name!r} ({path})"


def _cmd_estimate(args) -> int:
    from repro.errors import MappingError
    from repro.search.diagnose import diagnose_mapping

    system, efficiency, catalog_note = _resolve_system(args)
    model = get_model(args.model)
    spec = spec_from_totals(system, tp=args.tp, pp=args.pp, dp=args.dp)
    try:
        amped = AMPeD(model=model, system=system, parallelism=spec,
                      efficiency=efficiency)
    except MappingError:
        diagnosis = diagnose_mapping(spec, model, system,
                                     global_batch=args.batch)
        _say(diagnosis.explain())
        return 1
    breakdown = amped.estimate_batch(args.batch)
    _say(f"model:   {model.name}")
    _say(f"system:  {system.describe()}")
    if catalog_note is not None:
        _say(f"         {catalog_note}")
    _say(f"mapping: {spec.describe()}  "
          f"(ub={amped.microbatch(args.batch):g}, "
          f"eff={amped.microbatch_efficiency(args.batch):.2f})")
    _say()
    _say(breakdown.format_table())
    if args.tokens:
        estimate = amped.estimate(args.batch, total_tokens=args.tokens)
        _say(f"\ntraining {args.tokens:g} tokens: "
              f"{estimate.total_time_days:.1f} days "
              f"({estimate.n_batches} batches)")
    return 0


def _cmd_sweep(args) -> int:
    from repro.search.resilience import run_sweep

    system, efficiency, catalog_note = _resolve_system(args)
    model = get_model(args.model)
    template = AMPeD.for_mapping(model, system, dp=system.n_accelerators,
                                 efficiency=efficiency)
    journal_path = args.resume or args.journal
    outcome = run_sweep(template, args.batch, max_results=args.top,
                        workers=args.jobs, timeout=args.timeout,
                        retries=args.retries, journal_path=journal_path,
                        resume=args.resume is not None,
                        evaluation_path=args.eval_mode)
    rows = [(r.label, format_duration(r.batch_time_s),
             f"{r.microbatch_size:g}", f"{r.microbatch_efficiency:.2f}",
             format_duration(r.breakdown.comm_time),
             format_duration(r.breakdown.bubble))
            for r in outcome.results]
    title = f"{model.name} on {system.describe()} @ batch {args.batch}"
    if catalog_note is not None:
        title += f" [{catalog_note}]"
    if outcome.partial:
        title += " [PARTIAL]"
    _say(render_table(
        ["mapping", "batch time", "ub", "eff", "comm", "bubble"], rows,
        title=title))
    _say()
    _say(outcome.report.format_table())
    if outcome.cumulative is not None:
        counters = outcome.cumulative["counters"]
        _say(f"journal cumulative: {counters['runs']} run(s), "
             f"{counters['evaluated']} evaluated, "
             f"{counters['retried']} batch retries, "
             f"{counters['worker_errors']} worker errors, "
             f"{counters['interrupts']} interrupt(s)")
    if outcome.partial:
        if journal_path:
            _say(f"\nsweep interrupted — continue with: "
                  f"amped sweep --resume {journal_path}")
        else:
            _say("\nsweep interrupted — rerun with --journal to make "
                  "future runs resumable")
        return 130
    return 0


def _cmd_validate(args) -> int:
    from repro.experiments.fig2_validation import (
        data_parallel_scaling,
        pipeline_parallel_scaling,
    )
    from repro.experiments.table2 import reproduce_table2
    from repro.experiments.table3 import reproduce_table3

    __, table2_report = reproduce_table2()
    _say(table2_report.format_table())
    _say()
    __, table3_report = reproduce_table3()
    _say(table3_report.format_table())
    _say()
    _say(data_parallel_scaling().report().format_table())
    _say()
    _say(pipeline_parallel_scaling().report().format_table())
    return 0


def _cmd_experiment(args) -> int:
    name = args.name
    if name == "fig2a":
        from repro.experiments.fig2_validation import data_parallel_scaling
        _say(data_parallel_scaling().report().format_table())
    elif name == "fig2b":
        from repro.experiments.fig2_validation import (
            pipeline_parallel_scaling)
        _say(pipeline_parallel_scaling().report().format_table())
    elif name == "fig2c":
        from repro.experiments.fig2_validation import batch_size_saturation
        points = batch_size_saturation()
        _say(render_table(
            ["microbatch", "global batch", "TFLOP/s/GPU", "eff"],
            [(p.microbatch_size, p.global_batch, p.tflops_per_gpu,
              p.efficiency) for p in points],
            title="Fig. 2c: GPT-3 175B on 96 GPUs (PP only)"))
    elif name == "fig3":
        from repro.experiments.fig3_breakdown import reproduce_fig3
        for case in reproduce_fig3():
            _say(case.breakdown.format_table(title=case.label))
            _say()
    elif name in ("fig4", "fig5", "fig6", "fig7", "fig8", "fig9"):
        from repro.experiments.casestudy1 import ALL_FIGURES
        series = ALL_FIGURES[name]()
        headers = ["inter split"] + [f"batch {b} (days)"
                                     for b in sorted(series.points[0].days)]
        rows = [[p.label] + [("n/a" if p.days[b] is None
                              else f"{p.days[b]:.1f}")
                             for b in sorted(p.days)]
                for p in series.points]
        _say(render_table(headers, rows, title=series.figure))
    elif name == "fig10":
        from repro.experiments.casestudy2 import reproduce_fig10
        rows = [(k, f"{v.dp_days:.1f}", f"{v.pp_days:.1f}", v.winner,
                 f"{v.pp_bubble_share:.1%}")
                for k, v in reproduce_fig10().items()]
        _say(render_table(
            ["accel+NICs/node", "DP days", "PP days", "winner",
             "PP bubble"],
            rows, title="Fig. 10: low-end inter-node DP vs PP"))
    elif name == "fig11":
        from repro.experiments.casestudy3 import reproduce_fig11
        bars = reproduce_fig11()
        reference = bars[0]
        rows = [(bar.label, f"{bar.training_days_per_epoch:.2f}",
                 f"{bar.speedup_over(reference):.2f}x") for bar in bars]
        _say(render_table(
            ["configuration", "days/100B tokens", "speedup"],
            rows, title="Fig. 11: optical communication substrates"))
    elif name == "table2-interleaved":
        from repro.experiments.table2_interleaved import (
            reproduce_table2_interleaved)
        __, report = reproduce_table2_interleaved()
        _say(report.format_table())
    elif name == "scaling":
        from repro.experiments.scaling_study import run_scaling_study
        points = run_scaling_study()
        base = points[0]
        _say(render_table(
            ["GPUs", "best mapping", "s/batch", "speedup",
             "efficiency"],
            [(p.n_accelerators, p.mapping, round(p.batch_time_s, 1),
              f"x{p.speedup_over(base):.2f}",
              f"{p.efficiency_over(base):.0%}") for p in points],
            title="Strong scaling (Megatron 145B)"))
    elif name == "family":
        from repro.experiments.family_study import run_family_study
        _say(render_table(
            ["model", "best mapping", "TFLOP/s/GPU", "MFU"],
            [(p.model_key, p.mapping, round(p.tflops_per_gpu, 1),
              f"{p.mfu:.0%}") for p in run_family_study()],
            title="Megatron family on 512 A100s"))
    elif name == "context":
        from repro.experiments.context_study import run_context_study
        _say(render_table(
            ["context", "batch", "s/batch", "us/token",
             "attention share"],
            [(p.sequence_length, p.global_batch,
              round(p.batch_time_s, 1),
              round(seconds_to_microseconds(p.time_per_token_s), 2),
              f"{p.attention_flop_share:.1%}")
             for p in run_context_study()],
            title="Long-context cost (7.5B arch, 4M tokens/batch)"))
    return 0


def _cmd_recommend(args) -> int:
    from repro.search.heuristics import recommend_mapping

    system = _system_from_args(args)
    model = get_model(args.model)
    recommendation = recommend_mapping(model, system)
    _say(f"model:   {model.name}")
    _say(f"system:  {system.describe()}")
    _say(f"mapping: {recommendation.parallelism.describe()}")
    _say(recommendation.explain())
    return 0


def _cmd_sensitivity(args) -> int:
    from repro.sensitivity.elasticity import sensitivity_profile

    system = _system_from_args(args)
    model = get_model(args.model)
    spec = spec_from_totals(system, tp=args.tp, pp=args.pp, dp=args.dp)
    amped = AMPeD(model=model, system=system, parallelism=spec,
                  efficiency=_efficiency())
    profile = sensitivity_profile(amped, args.batch)
    _say(render_table(
        ["knob", "elasticity", "interpretation"],
        [(e.knob, f"{e.elasticity:+.4f}",
          "raising it helps" if e.improves_when_increased
          else "negligible / cost")
         for e in profile],
        title=f"batch-time elasticities ({spec.describe()}, "
              f"batch {args.batch})"))
    return 0


def _cmd_cost(args) -> int:
    from repro.cost.carbon import EU_AVERAGE_GRID, estimate_carbon
    from repro.cost.pricing import CloudPricing, estimate_cost
    from repro.energy.energy import estimate_energy
    from repro.energy.power import PowerModel

    system = _system_from_args(args)
    model = get_model(args.model)
    spec = spec_from_totals(system, tp=args.tp, pp=args.pp, dp=args.dp)
    amped = AMPeD(model=model, system=system, parallelism=spec,
                  efficiency=_efficiency())
    estimate = amped.estimate(args.batch, total_tokens=args.tokens)
    pricing = CloudPricing("cli", args.usd_per_gpu_hour)
    cost = estimate_cost(estimate, system.n_accelerators, pricing)
    power = PowerModel.for_accelerator(system.accelerator)
    energy = estimate_energy(estimate.breakdown, power,
                             system.n_accelerators)
    carbon = estimate_carbon(energy, EU_AVERAGE_GRID)
    _say(f"model:    {model.name} ({args.tokens:.0e} tokens, "
          f"batch {args.batch})")
    _say(f"system:   {system.describe()}")
    _say(f"mapping:  {spec.describe()}")
    _say(f"duration: {estimate.total_time_days:.1f} days")
    _say(f"usage:    {cost.gpu_hours:,.0f} GPU-hours "
          f"({cost.billed_gpu_hours:,.0f} billed)")
    _say(f"cost:     ${cost.usd:,.0f} at "
          f"${pricing.effective_rate:.2f}/GPU-hour")
    _say(f"energy:   {energy.total_kwh:,.0f} kWh")
    _say(f"carbon:   {carbon.tonnes_co2:,.1f} t CO2 "
          f"({EU_AVERAGE_GRID.name} grid, PUE "
          f"{EU_AVERAGE_GRID.pue})")
    return 0


def _cmd_serve(args) -> int:
    from repro.serve.server import config_from_args, run_daemon

    return run_daemon(config_from_args(args))


def _cmd_calibrate(args) -> int:
    import dataclasses
    import json as _json

    from repro.fitting.trace_fit import (
        FIT_PARAMETERS,
        fit_from_observations,
    )
    from repro.hardware.catalog_io import write_catalog_entry
    from repro.obs.ingest import load_observations
    from repro.reporting.drift import compute_drift

    observations = load_observations(args.trace_input, args.csv_input)
    if args.batch:
        observations = [
            dataclasses.replace(item, global_batch=args.batch)
            if item.global_batch <= 0 else item
            for item in observations]
    system = _system_from_args(args)
    model = get_model(args.model)
    fallback = next((item.mapping for item in observations
                     if item.mapping is not None), None) \
        or spec_from_totals(system, dp=system.n_accelerators)
    base = AMPeD(model=model, system=system, parallelism=fallback,
                 efficiency=_efficiency(), validate=False)
    for item in observations:
        if item.model and item.model != model.name:
            _say(f"note: observation {item.source or '<unknown>'} was "
                 f"recorded for {item.model!r}, calibrating "
                 f"{model.name!r} — pass --model to match")
            break

    parameters = tuple(name.strip() for name in args.fit.split(",")
                       if name.strip()) or FIT_PARAMETERS
    fit = fit_from_observations(base, observations,
                                parameters=parameters)

    _say(f"calibrated {model.name} against {len(observations)} "
         f"observation(s), {len(fit.residuals)} aligned term pair(s) "
         f"[{fit.backend} backend, {fit.iterations} iteration(s)"
         f"{'' if fit.converged else ', NOT converged'}]")
    _say()
    rows = []
    for name in fit.fitted_parameters:
        value = getattr(fit.coefficients, name)
        low, high = fit.confidence_interval(name)
        rows.append((name, f"{value:.6g}",
                     f"[{low:.6g}, {high:.6g}]"))
    _say(render_table(["coefficient", "fitted", "95% interval"], rows,
                      title=f"fit: R^2 = {fit.r_squared:.6f}, "
                            f"condition = {fit.condition_number:.3g}"))
    for warning in fit.warnings:
        _say(f"warning: {warning}")

    calibrated = fit.coefficients.apply(base)
    drift = compute_drift(calibrated, observations,
                          threshold=args.threshold)
    _say()
    _say(drift.format_table())

    if args.report:
        import math as _math
        from pathlib import Path

        def finite_or_none(value):
            return value if _math.isfinite(value) else None

        payload = {"fit": {
            "coefficients": fit.coefficients.as_dict(),
            "fitted_parameters": list(fit.fitted_parameters),
            "stderr": {name: finite_or_none(value)
                       for name, value in fit.stderr.items()},
            "r_squared": fit.r_squared,
            "condition_number": finite_or_none(fit.condition_number),
            "converged": fit.converged,
            "backend": fit.backend,
            "warnings": fit.warnings,
        }, "drift": drift.as_dict()}
        Path(args.report).write_text(
            _json.dumps(payload, indent=2, allow_nan=False) + "\n")
        _say(f"\nwrote report to {args.report}")

    if args.write_catalog:
        entry_name = args.catalog_name \
            or f"{args.accelerator}-calibrated"
        write_catalog_entry(
            args.write_catalog, entry_name, calibrated.system,
            calibrated.efficiency,
            provenance={
                "model": model.name,
                "observations": len(observations),
                "r_squared": fit.r_squared,
                "fitted_parameters": list(fit.fitted_parameters),
                "coefficients": fit.coefficients.as_dict(),
                "trace": args.trace_input,
                "csv": args.csv_input,
            })
        _say(f"wrote catalog entry {entry_name!r} to "
             f"{args.write_catalog}")
    return 0


def _cmd_export(args) -> int:
    from repro.experiments.casestudy1 import ALL_FIGURES
    from repro.experiments.casestudy2 import reproduce_fig10
    from repro.experiments.casestudy3 import reproduce_fig11
    from repro.experiments.fig2_validation import (
        batch_size_saturation,
        data_parallel_scaling,
        pipeline_parallel_scaling,
    )
    from repro.experiments.table2 import reproduce_table2
    from repro.experiments.table3 import reproduce_table3
    from repro.reporting.export import export_csv

    outdir = args.outdir
    written = []

    for name, result in (("fig2a", data_parallel_scaling()),
                         ("fig2b", pipeline_parallel_scaling())):
        rows = [(p.n_gpus, predicted, measured)
                for p, predicted, measured in zip(
                    result.points, result.predicted_normalized,
                    result.measured_normalized)]
        written.append(export_csv(
            f"{outdir}/{name}.csv",
            ["gpus", "predicted_normalized", "measured_normalized"],
            rows))

    written.append(export_csv(
        f"{outdir}/fig2c.csv",
        ["microbatch", "global_batch", "tflops_per_gpu", "efficiency"],
        [(p.microbatch_size, p.global_batch, p.tflops_per_gpu,
          p.efficiency) for p in batch_size_saturation()]))

    rows2, _ = reproduce_table2()
    written.append(export_csv(
        f"{outdir}/table2.csv",
        ["model", "tp", "pp", "dp", "predicted_tflops",
         "published_tflops", "error_percent"],
        [(r.point.model_key, r.point.tp, r.point.pp, r.point.dp,
          r.predicted_tflops, r.point.published_tflops,
          r.error_percent) for r in rows2]))

    rows3, _ = reproduce_table3()
    written.append(export_csv(
        f"{outdir}/table3.csv",
        ["gpus", "batch_time_s", "simulated_time_s"],
        [(r.n_gpus, r.batch_time_s, r.simulated_time_s)
         for r in rows3]))

    written.append(export_csv(
        f"{outdir}/fig10.csv",
        ["accel_per_node", "dp_days", "pp_days", "winner",
         "pp_bubble_share"],
        [(k, v.dp_days, v.pp_days, v.winner, v.pp_bubble_share)
         for k, v in sorted(reproduce_fig10().items())]))

    bars = reproduce_fig11()
    written.append(export_csv(
        f"{outdir}/fig11.csv",
        ["configuration", "accel_per_node", "days", "speedup"],
        [(b.label, b.accelerators_per_node, b.training_days_per_epoch,
          b.speedup_over(bars[0])) for b in bars]))

    if not args.skip_sweeps:
        for name, figure in ALL_FIGURES.items():
            series = figure()
            batches = sorted(series.points[0].days)
            written.append(export_csv(
                f"{outdir}/{name}.csv",
                ["inter_split"] + [f"days_batch_{b}" for b in batches],
                [[p.label] + [("" if p.days[b] is None else p.days[b])
                              for b in batches]
                 for p in series.points]))

    written.append(_write_summary_report(outdir, rows2, rows3, bars))

    for path in written:
        _say(f"wrote {path}")
    return 0


def _write_summary_report(outdir: str, table2_rows, table3_rows,
                          fig11_bars):
    """The committed-artifact summary: report.md."""
    from pathlib import Path

    from repro.core.metrics import speedups
    from repro.reporting.markdown import MarkdownReport
    from repro.validation.published import GPIPE_TABLE3

    report = MarkdownReport("AMPeD reproduction summary")
    report.add_section(
        "Table II — AMPeD vs published Megatron TFLOP/s/GPU",
        "Efficiency calibrated on the 145B row only; the rest are "
        "predictions.")
    report.add_table(
        ["Model", "TP/PP/DP", "published", "predicted", "error %"],
        [(f"{r.point.n_parameters_b:g}B",
          f"{r.point.tp}/{r.point.pp}/{r.point.dp}",
          r.point.published_tflops, round(r.predicted_tflops, 1),
          round(r.error_percent, 2)) for r in table2_rows])

    predicted = speedups([r.batch_time_s for r in table3_rows])
    report.add_section("Table III — GPipe normalized throughput")
    report.add_table(
        ["GPUs", "published", "predicted"],
        [(point.n_gpus, point.published_speedup, round(p, 2))
         for point, p in zip(GPIPE_TABLE3, predicted)])

    report.add_section("Fig. 11 — optical substrate ladder")
    report.add_table(
        ["configuration", "speedup"],
        [(bar.label, f"x{bar.speedup_over(fig11_bars[0]):.2f}")
         for bar in fig11_bars],
        caption="cumulative over the reference system")

    target = Path(outdir) / "report.md"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(report.render())
    return target


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``amped`` and ``python -m repro``."""
    args = build_parser().parse_args(argv)
    configure_logging(getattr(args, "log_level", "info"))
    tracer = get_tracer()
    trace_path = getattr(args, "trace", None)
    if trace_path:
        tracer.enable(reset=True)
    handlers = {
        "estimate": _cmd_estimate,
        "sweep": _cmd_sweep,
        "validate": _cmd_validate,
        "experiment": _cmd_experiment,
        "recommend": _cmd_recommend,
        "sensitivity": _cmd_sensitivity,
        "cost": _cmd_cost,
        "export": _cmd_export,
        "serve": _cmd_serve,
        "calibrate": _cmd_calibrate,
    }
    try:
        with span(f"cli.{args.command}", category="cli"):
            code = handlers[args.command](args)
    except ReproError as error:
        _OUT.error(f"error: {error}")
        code = 2
    if trace_path:
        tracer.disable()
        try:
            write_chrome_trace(tracer.records(), trace_path)
            _say(f"wrote trace to {trace_path}")
        except (OSError, ValueError) as error:
            _OUT.error(f"error: could not write trace: {error}")
            code = code or 1
    metrics_path = getattr(args, "metrics", None)
    if metrics_path is not None:
        registry = collect_cache_metrics(get_metrics())
        if metrics_path:
            try:
                write_metrics_snapshot(registry.snapshot(), metrics_path)
                _say(f"wrote metrics to {metrics_path}")
            except (OSError, ValueError) as error:
                _OUT.error(f"error: could not write metrics: {error}")
                code = code or 1
        else:
            _say(registry.format_table())
    return code


if __name__ == "__main__":
    sys.exit(main())
