"""Communication-time estimators: Eqs. 5, 6, 7, 9, 10 and 11.

The estimators share a :class:`CommEnvironment` bundling the system, the
parallelism mapping, the precision policy and the collective topologies.
All per-layer results are for one *global batch* traversal of that layer,
mirroring Eq. 1's accounting (communication terms are not divided by the
worker count — they describe wall-clock collectives).

Volume conventions (§IV-B):

- TP all-reduces move ``N_act,TP = 2 b s h`` activations per layer
  (two all-reduce steps — attention and MLP — of ``b s h`` each), where
  ``b`` is the per-DP-replica batch.
- PP moves ``N_act,PP = b s h`` activations per stage boundary; the
  ``1/L`` prefactor of Eq. 7 spreads the (layer-count-independent)
  pipeline communication over the per-layer sum of Eq. 1.
- MoE dispatch/combine moves ``2 N_act,MoE = 2 b s h`` activations per
  expert layer, split between intra- and inter-node destinations by the
  uniform-routing probabilities of Eq. 9.
- The DP gradient all-reduce moves each layer's gradients, hierarchically
  (intra-node then inter-node, Eq. 10); with tensor parallelism each TP
  rank only reduces its own ``1/N_TP`` weight shard, so the volume is
  ``N_g(l) = parameters(l) / N_TP``.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError, require_finite_fields
from repro.hardware.interconnect import LinkSpec
from repro.hardware.precision import PrecisionPolicy
from repro.hardware.system import SystemSpec
from repro.parallelism.spec import ParallelismSpec
from repro.parallelism.topology import (
    PAIRWISE_ALLTOALL,
    RING,
    CollectiveTopology,
)
from repro.transformer.config import TransformerConfig
from repro.units import BitsPerSecond, Seconds


@dataclass(frozen=True)
class CommEnvironment:
    """Everything the communication equations need besides the layer.

    Parameters
    ----------
    system, parallelism, precision:
        The hardware, the mapping, and the operand widths.
    intra_topology, inter_topology:
        Collective topology for intra-node and inter-node all-reduces
        (ring by default, the paper's worked example).
    moe_topology:
        All-to-all topology for expert dispatch (pairwise exchange by
        default, ``T_MoE = (N_nodes - 1) / N_nodes``).
    zero_forward_overhead:
        ``M_f_DP`` — Eq. 5's ZeRO overhead factor (0 for plain DP).
    moe_volume_multiplier:
        Scales the MoE all-to-all volume; 1.0 follows the paper
        (``N_act,MoE = N_act,PP``), while ``top_k * capacity_factor``
        models GShard-style over-dispatch.
    moe_tp_sharding:
        When tensor parallelism is active, each TP rank dispatches only
        its ``1/N_TP`` hidden-dimension shard of every routed token, so
        the per-accelerator all-to-all volume divides by ``N_TP``
        (default).  Disable for a literal reading of Eq. 9, whose
        volume is independent of the TP degree.
    """

    system: SystemSpec
    parallelism: ParallelismSpec
    precision: PrecisionPolicy
    intra_topology: CollectiveTopology = RING
    inter_topology: CollectiveTopology = RING
    moe_topology: CollectiveTopology = PAIRWISE_ALLTOALL
    zero_forward_overhead: float = 0.0
    moe_volume_multiplier: float = 1.0
    moe_tp_sharding: bool = True

    def __post_init__(self) -> None:
        require_finite_fields(self)
        if self.zero_forward_overhead < 0:
            raise ConfigurationError(
                f"zero_forward_overhead must be non-negative, got "
                f"{self.zero_forward_overhead}")
        if self.moe_volume_multiplier <= 0:
            raise ConfigurationError(
                f"moe_volume_multiplier must be positive, got "
                f"{self.moe_volume_multiplier}")

    @property
    def intra_link(self) -> LinkSpec:
        """The intra-node fabric link."""
        return self.system.node.intra_link

    @property
    def inter_link(self) -> LinkSpec:
        """The inter-node link as seen by one accelerator (its share of
        the node's aggregate NIC bandwidth)."""
        return self.system.node.effective_inter_link


# ---------------------------------------------------------------------------
# Memoized collective-time lookups
# ---------------------------------------------------------------------------
#
# A design-space sweep evaluates the same physical collective — one
# topology, one link, one payload — for every layer class, microbatch
# candidate and mapping that shares the degree; the closed form depends
# only on the scalars below, so the lookup is cached at module level.
# Topology singletons hash by identity, making the key cheap.


@functools.lru_cache(maxsize=131072)
def _collective_time(topology: CollectiveTopology, link_latency_s: Seconds,
                     bandwidth_bits_per_s: BitsPerSecond, n_values: float,
                     value_bits: float, n_participants: int) -> Seconds:
    """Latency + volume terms of one collective (Eqs. 6 and 11)."""
    return (topology.latency_term(link_latency_s, n_participants)
            + topology.volume_term(n_values, value_bits,
                                   bandwidth_bits_per_s, n_participants))


def comm_cache_stats() -> Dict[str, Optional[int]]:
    """Hit/miss counters of the collective-time memo."""
    info = _collective_time.cache_info()
    return {"hits": info.hits, "misses": info.misses,
            "maxsize": info.maxsize, "currsize": info.currsize}


def clear_comm_cache() -> None:
    """Drop every memoized collective time (benchmarks use this to
    compare cold paths fairly)."""
    _collective_time.cache_clear()


# ---------------------------------------------------------------------------
# Activation volumes (§IV-B1, §IV-B2, §IV-D)
# ---------------------------------------------------------------------------


def tp_activation_count(model: TransformerConfig,
                        replica_batch: float) -> float:
    """``N_act,TP(l) = 2 b s h`` activations all-reduced per layer."""
    return 2.0 * replica_batch * model.sequence_length * model.hidden_size


def pp_activation_count(model: TransformerConfig,
                        replica_batch: float) -> float:
    """``N_act,PP(l) = b s h`` activations crossing a stage boundary."""
    return replica_batch * model.sequence_length * model.hidden_size


# ---------------------------------------------------------------------------
# Eq. 6 — tensor-parallel all-reduce
# ---------------------------------------------------------------------------


def tp_comm_time(env: CommEnvironment, model: TransformerConfig,
                 replica_batch: float, level: str) -> Seconds:
    """Eq. 6: TP all-reduce time per layer at ``level``.

    ``M_f,TP = C * T * N_TP + N_act,TP * S_act / BW * T``

    ``level`` is ``"intra"`` or ``"inter"``; a degree of 1 at that level
    costs nothing (the topology factor vanishes).

    For the inter-node phase of a *hierarchical* all-reduce (§IV-B1:
    "activations are first reduced within the node and then across
    nodes"), the intra phase leaves each of the ``tp_intra`` node-local
    ranks holding a ``1/tp_intra`` shard, so each rank's NIC carries
    only its shard across nodes — the inter volume is divided by
    ``tp_intra``.  With ``tp_intra == 1`` no sharding is possible and
    the full payload crosses the rank's NIC.
    """
    if level == "intra":
        participants = env.parallelism.tp_intra
        link, topology = env.intra_link, env.intra_topology
        shard = 1
    elif level == "inter":
        participants = env.parallelism.tp_inter
        link, topology = env.inter_link, env.inter_topology
        shard = env.parallelism.tp_intra
    else:
        raise ConfigurationError(
            f"level must be 'intra' or 'inter', got {level!r}")
    if participants <= 1:
        return 0.0
    n_act = tp_activation_count(model, replica_batch) / shard
    return _collective_time(topology, link.latency_s,
                            link.bandwidth_bits_per_s, n_act,
                            env.precision.activation_bits, participants)


# ---------------------------------------------------------------------------
# Eq. 7 — pipeline-parallel point-to-point
# ---------------------------------------------------------------------------


def pp_comm_time(env: CommEnvironment, model: TransformerConfig,
                 replica_batch: float, level: str) -> Seconds:
    """Eq. 7: PP stage-boundary communication, expressed per layer.

    ``M_f,PP = (1/L) [C + N_act,PP * S_act / BW]``

    Pipeline links are one-to-one, so no topology factor applies, and
    the ``1/L`` spreads the layer-count-independent cost over Eq. 1's
    per-layer sum.  A degree of 1 at the level costs nothing.
    """
    if level == "intra":
        degree, link = env.parallelism.pp_intra, env.intra_link
    elif level == "inter":
        degree, link = env.parallelism.pp_inter, env.inter_link
    else:
        raise ConfigurationError(
            f"level must be 'intra' or 'inter', got {level!r}")
    if degree <= 1:
        return 0.0
    n_act = pp_activation_count(model, replica_batch)
    n_bits = n_act * env.precision.activation_bits
    return (link.latency_s + n_bits / link.bandwidth_bits_per_s) \
        / model.n_layers


# ---------------------------------------------------------------------------
# Eq. 9 — Mixture-of-Experts all-to-all
# ---------------------------------------------------------------------------


def moe_comm_time(env: CommEnvironment, model: TransformerConfig,
                  replica_batch: float) -> Seconds:
    """Eq. 9: the two all-to-alls (dispatch + combine) of an expert layer.

    ``M_f,MoE = 2 C_inter T_MoE N_nodes
      + 2 N_act,MoE S_act T_MoE [1/(N_nodes BW_intra)
                                 + (N_nodes - 1)/(N_nodes BW_inter)]``

    With uniform routing and perfect load balance a token lands in the
    sender's own node with probability ``1/N_nodes`` (intra-node hop) and
    elsewhere with probability ``(N_nodes - 1)/N_nodes`` (inter-node hop).
    """
    n_nodes = env.system.n_nodes
    if n_nodes <= 1:
        return 0.0
    factor = env.moe_topology.factor(n_nodes)
    n_act = (pp_activation_count(model, replica_batch)
             * env.moe_volume_multiplier)
    if env.moe_tp_sharding:
        n_act /= env.parallelism.tp
    s_act = env.precision.activation_bits
    latency = 2.0 * env.inter_link.latency_s * factor * n_nodes
    volume = 2.0 * n_act * s_act * factor * (
        1.0 / (n_nodes * env.intra_link.bandwidth_bits_per_s)
        + (n_nodes - 1.0)
        / (n_nodes * env.inter_link.bandwidth_bits_per_s))
    return latency + volume


# ---------------------------------------------------------------------------
# Eq. 5 — forward-pass communication per layer
# ---------------------------------------------------------------------------


def forward_comm_components(env: CommEnvironment, model: TransformerConfig,
                            replica_batch: float,
                            layer_is_moe: bool) -> dict:
    """The individual terms of Eq. 5 for one layer, ZeRO factor applied.

    Returns a dict with keys ``tp_intra``, ``tp_inter``, ``pp``, ``moe``
    whose values sum to ``M_f(l)``.
    """
    scale = 1.0 + env.zero_forward_overhead
    tp_intra = tp_comm_time(env, model, replica_batch, "intra")
    tp_inter = tp_comm_time(env, model, replica_batch, "inter")
    pp = max(pp_comm_time(env, model, replica_batch, "intra"),
             pp_comm_time(env, model, replica_batch, "inter"))
    moe = 0.0
    if layer_is_moe and env.parallelism.expert_parallel:
        moe = moe_comm_time(env, model, replica_batch)
    return {
        "tp_intra": scale * tp_intra,
        "tp_inter": scale * tp_inter,
        "pp": scale * pp,
        "moe": scale * moe,
    }


def forward_comm_time(env: CommEnvironment, model: TransformerConfig,
                      replica_batch: float, layer_is_moe: bool) -> Seconds:
    """``M_f(l)`` (Eq. 5): total forward communication of one layer."""
    return sum(forward_comm_components(
        env, model, replica_batch, layer_is_moe).values())


def backward_comm_time(env: CommEnvironment, model: TransformerConfig,
                       replica_batch: float, layer_is_moe: bool,
                       volume_ratio: float = 1.0) -> Seconds:
    """``M_b(l)`` (§IV-E): backward communication mirrors the forward
    pass with activations replaced by errors of the same shape; the
    optional ``volume_ratio`` scales it for asymmetric schemes."""
    if volume_ratio < 0:
        raise ConfigurationError(
            f"volume_ratio must be non-negative, got {volume_ratio}")
    return volume_ratio * forward_comm_time(env, model, replica_batch,
                                            layer_is_moe)


# ---------------------------------------------------------------------------
# Eqs. 10-11 — gradient all-reduce
# ---------------------------------------------------------------------------


def gradient_comm_components(env: CommEnvironment,
                             layer_parameters: float) -> dict:
    """Eq. 10's two terms for one layer: hierarchical all-reduce of the
    layer's gradients, first among intra-node DP ranks, then across
    nodes.

    Each TP rank reduces only its own weight shard, so the per-rank
    gradient count is ``N_g(l) = parameters(l) / N_TP``; the inter-node
    phase of the hierarchical reduction additionally carries only a
    ``1/dp_intra`` shard per NIC (the intra phase reduce-scatters the
    payload across the node's DP ranks).
    """
    if layer_parameters < 0:
        raise ConfigurationError(
            f"layer_parameters must be non-negative, got "
            f"{layer_parameters}")
    n_g = layer_parameters / env.parallelism.tp
    s_g = env.precision.gradient_bits
    components = {"intra": 0.0, "inter": 0.0}
    if env.parallelism.dp_intra > 1:
        components["intra"] = _collective_time(
            env.intra_topology, env.intra_link.latency_s,
            env.intra_link.bandwidth_bits_per_s, n_g, s_g,
            env.parallelism.dp_intra)
    if env.parallelism.dp_inter > 1:
        components["inter"] = _collective_time(
            env.inter_topology, env.inter_link.latency_s,
            env.inter_link.bandwidth_bits_per_s,
            n_g / env.parallelism.dp_intra, s_g,
            env.parallelism.dp_inter)
    return components


def gradient_comm_time(env: CommEnvironment,
                       layer_parameters: float) -> Seconds:
    """``M_g(l)`` (Eq. 10): hierarchical gradient all-reduce time."""
    return sum(gradient_comm_components(env, layer_parameters).values())


# ---------------------------------------------------------------------------
# ZeRO-3 explicit parameter gathering (extension beyond Eq. 5's factor)
# ---------------------------------------------------------------------------


def zero_gather_components(env: CommEnvironment,
                           layer_parameters: float) -> dict:
    """Per-layer ZeRO-3 parameter all-gather time (one gather; the
    caller charges it once for the forward and once for the backward
    pass).

    The paper folds ZeRO into Eq. 5's ``(1 + M_f_DP)`` factor; this
    models it explicitly instead: a hierarchical all-gather of the
    layer's TP-sharded parameters across the DP dimension, using the
    same ring topology and sharding conventions as the gradient
    all-reduce of Eqs. 10-11 but **half** the ring volume (all-gather
    is one phase where all-reduce is two).
    """
    if layer_parameters < 0:
        raise ConfigurationError(
            f"layer_parameters must be non-negative, got "
            f"{layer_parameters}")
    n_values = layer_parameters / env.parallelism.tp
    bits = env.precision.parameter_bits
    components = {"intra": 0.0, "inter": 0.0}
    if env.parallelism.dp_intra > 1:
        components["intra"] = 0.5 * _collective_time(
            env.intra_topology, env.intra_link.latency_s,
            env.intra_link.bandwidth_bits_per_s, n_values, bits,
            env.parallelism.dp_intra)
    if env.parallelism.dp_inter > 1:
        components["inter"] = 0.5 * _collective_time(
            env.inter_topology, env.inter_link.latency_s,
            env.inter_link.bandwidth_bits_per_s,
            n_values / env.parallelism.dp_intra, bits,
            env.parallelism.dp_inter)
    return components


def zero_gather_time(env: CommEnvironment,
                     layer_parameters: float) -> Seconds:
    """Total per-layer ZeRO-3 parameter-gather time (one gather)."""
    return sum(zero_gather_components(env, layer_parameters).values())
