"""Derived metrics and series helpers.

The paper reports results in three currencies: absolute training time
(days, case studies), normalized training time / speedup (validation
figures, Table III), and achieved TFLOP/s per GPU (Table II, Fig. 2c).
This module holds the small amount of arithmetic shared by all of them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ConfigurationError


def normalize_to_first(values: Sequence[float]) -> List[float]:
    """Each value divided by the first — 'normalized training time with
    respect to the time on the smallest configuration' (Fig. 2a/2b)."""
    if not values:
        raise ConfigurationError("cannot normalize an empty series")
    first = values[0]
    if first == 0:
        raise ConfigurationError("first value is zero; cannot normalize")
    return [value / first for value in values]


def speedups(times: Sequence[float]) -> List[float]:
    """Throughput speedup of each entry relative to the first
    (Table III's convention: time(first) / time(entry))."""
    if not times:
        raise ConfigurationError("cannot compute speedups of an empty series")
    first = times[0]
    if any(t <= 0 for t in times):
        raise ConfigurationError(f"times must be positive, got {list(times)}")
    return [first / t for t in times]


def efficiency_of_scaling(times: Sequence[float],
                          workers: Sequence[int]) -> List[float]:
    """Parallel efficiency: achieved speedup over ideal speedup."""
    if len(times) != len(workers):
        raise ConfigurationError(
            f"times ({len(times)}) and workers ({len(workers)}) must have "
            f"equal length")
    gains = speedups(times)
    base = workers[0]
    if base <= 0:
        raise ConfigurationError(f"worker counts must be positive: {workers}")
    return [gain / (count / base) for gain, count in zip(gains, workers)]


def best_configuration(results: Dict) -> tuple:
    """The (key, value) pair with the smallest value — used by sweeps to
    pick the fastest mapping."""
    if not results:
        raise ConfigurationError("cannot pick the best of an empty sweep")
    key = min(results, key=results.get)
    return key, results[key]
