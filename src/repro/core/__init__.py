"""AMPeD's core: the analytical training-time model (Eqs. 1-12).

The package-level import surface is the :class:`AMPeD` model plus the
breakdown containers and the individual equation implementations for
callers that want to compose them differently.
"""

from repro.core.breakdown import TrainingEstimate, TrainingTimeBreakdown
from repro.core.bubbles import bubble_fraction, bubble_time
from repro.core.communication import (
    CommEnvironment,
    backward_comm_time,
    clear_comm_cache,
    comm_cache_stats,
    forward_comm_components,
    forward_comm_time,
    gradient_comm_components,
    gradient_comm_time,
    moe_comm_time,
    pp_activation_count,
    pp_comm_time,
    tp_activation_count,
    tp_comm_time,
    zero_gather_components,
    zero_gather_time,
)
from repro.core.compute import (
    backward_compute_time,
    forward_compute_time,
    mac_time_per_op,
    nonlinear_time_per_op,
    weight_update_time,
)
from repro.core.metrics import (
    best_configuration,
    efficiency_of_scaling,
    normalize_to_first,
    speedups,
)
from repro.core.model import EVALUATION_PATHS, AMPeD
from repro.core.operations import (
    LayerClass,
    LayerOperations,
    ModelOperations,
    build_operations,
    cache_stats,
    collapse_layer_classes,
    configure_operations_cache,
)
from repro.core.zero import NO_ZERO, ZeroConfig

__all__ = [
    "AMPeD",
    "EVALUATION_PATHS",
    "TrainingTimeBreakdown",
    "TrainingEstimate",
    "CommEnvironment",
    "LayerClass",
    "LayerOperations",
    "ModelOperations",
    "build_operations",
    "collapse_layer_classes",
    "configure_operations_cache",
    "cache_stats",
    "comm_cache_stats",
    "clear_comm_cache",
    "mac_time_per_op",
    "nonlinear_time_per_op",
    "forward_compute_time",
    "backward_compute_time",
    "weight_update_time",
    "tp_comm_time",
    "pp_comm_time",
    "moe_comm_time",
    "forward_comm_time",
    "forward_comm_components",
    "backward_comm_time",
    "gradient_comm_time",
    "gradient_comm_components",
    "zero_gather_time",
    "zero_gather_components",
    "tp_activation_count",
    "pp_activation_count",
    "bubble_time",
    "bubble_fraction",
    "ZeroConfig",
    "NO_ZERO",
    "normalize_to_first",
    "speedups",
    "efficiency_of_scaling",
    "best_configuration",
]
