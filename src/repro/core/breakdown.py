"""Training-time breakdown containers.

Fig. 3 of the paper shows "a detailed breakdown of the time spent in
computation and communication due to TP, PP, and DP individually" — this
module is that capability.  A :class:`TrainingTimeBreakdown` holds the
per-batch contribution of every Eq. 1 term; scaling by the batch count
gives the run-level breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import ConfigurationError, require_finite
from repro.units import Seconds, format_duration, seconds_to_days


@dataclass(frozen=True)
class TrainingTimeBreakdown:
    """Per-batch training time split into Eq. 1's components (seconds).

    Compute fields are *after* division by ``N_TP N_DP N_PP`` (i.e. the
    wall-clock share of one worker); communication and bubble fields are
    wall-clock collective/idle times, exactly as Eq. 1 adds them.
    """

    compute_forward: float = 0.0
    compute_backward: float = 0.0
    compute_weight_update: float = 0.0
    comm_tp_intra: float = 0.0
    comm_tp_inter: float = 0.0
    comm_pp: float = 0.0
    comm_moe: float = 0.0
    comm_gradient_intra: float = 0.0
    comm_gradient_inter: float = 0.0
    comm_zero: float = 0.0
    bubble: float = 0.0

    def __post_init__(self) -> None:
        for item in fields(self):
            value = getattr(self, item.name)
            # A NaN component would pass `< 0` (every NaN comparison is
            # false) and poison batch-time rankings downstream.
            require_finite(item.name, value)
            if value < 0:
                raise ConfigurationError(
                    f"{item.name} must be non-negative, got {value}")

    # -- aggregates ----------------------------------------------------------

    @property
    def compute_time(self) -> Seconds:
        """All computation: forward + backward + weight update."""
        return (self.compute_forward + self.compute_backward
                + self.compute_weight_update)

    @property
    def comm_tp(self) -> Seconds:
        """Tensor-parallel communication (both levels, fwd+bwd)."""
        return self.comm_tp_intra + self.comm_tp_inter

    @property
    def comm_gradient(self) -> Seconds:
        """Data-parallel gradient all-reduce (both levels)."""
        return self.comm_gradient_intra + self.comm_gradient_inter

    @property
    def comm_time(self) -> Seconds:
        """All communication terms of Eq. 1 (plus the explicit ZeRO-3
        parameter gathers when that modeling is enabled)."""
        return (self.comm_tp + self.comm_pp + self.comm_moe
                + self.comm_gradient + self.comm_zero)

    @property
    def total(self) -> Seconds:
        """The full Eq. 1 bracket: compute + communication + bubbles."""
        return self.compute_time + self.comm_time + self.bubble

    # -- algebra --------------------------------------------------------------

    def scaled(self, factor: float) -> "TrainingTimeBreakdown":
        """Every component multiplied by ``factor`` (e.g. ``N_batch``)."""
        if factor < 0:
            raise ConfigurationError(
                f"scale factor must be non-negative, got {factor}")
        return TrainingTimeBreakdown(**{
            item.name: getattr(self, item.name) * factor
            for item in fields(self)})

    def __add__(self, other: "TrainingTimeBreakdown") -> "TrainingTimeBreakdown":
        if not isinstance(other, TrainingTimeBreakdown):
            return NotImplemented
        return TrainingTimeBreakdown(**{
            item.name: getattr(self, item.name) + getattr(other, item.name)
            for item in fields(self)})

    # -- presentation ----------------------------------------------------------

    def as_dict(self) -> dict:
        """Raw component values, keyed by field name."""
        # The instance dict holds exactly the declared fields in
        # declaration order (frozen dataclass, no extra attributes), so
        # copying it sidesteps fields() introspection on a path the
        # tracer hits once per evaluated mapping.
        return dict(self.__dict__)

    def summary_dict(self) -> dict:
        """Fig. 3's categories: computation, TP/PP/MoE/DP communication,
        bubble."""
        return {
            "compute": self.compute_time,
            "tp_comm": self.comm_tp,
            "pp_comm": self.comm_pp,
            "moe_comm": self.comm_moe,
            "dp_comm": self.comm_gradient,
            "zero_comm": self.comm_zero,
            "bubble": self.bubble,
        }

    def format_table(self, title: str = "training time breakdown") -> str:
        """A small aligned text table of the Fig. 3 categories."""
        rows = self.summary_dict()
        total = self.total
        width = max(len(k) for k in rows)
        lines = [title, "-" * len(title)]
        for key, value in rows.items():
            share = 0.0 if total == 0 else 100.0 * value / total
            lines.append(f"{key.ljust(width)}  {format_duration(value):>12}"
                         f"  {share:6.2f}%")
        lines.append(f"{'total'.ljust(width)}  "
                     f"{format_duration(total):>12}  100.00%")
        return "\n".join(lines)


@dataclass(frozen=True)
class TrainingEstimate:
    """A full-run estimate: per-batch breakdown times the batch count."""

    per_batch: TrainingTimeBreakdown
    n_batches: int

    def __post_init__(self) -> None:
        if self.n_batches < 1:
            raise ConfigurationError(
                f"n_batches must be >= 1, got {self.n_batches}")

    @property
    def batch_time_s(self) -> Seconds:
        """Seconds per training batch."""
        return self.per_batch.total

    @property
    def total_time_s(self) -> Seconds:
        """Seconds for the whole run (Eq. 1's ``N_batch`` scaling)."""
        return self.per_batch.total * self.n_batches

    @property
    def total_time_days(self) -> float:
        """Run length in days — the case studies' reporting unit."""
        return seconds_to_days(self.total_time_s)

    @property
    def breakdown(self) -> TrainingTimeBreakdown:
        """Run-level breakdown (per-batch components times N_batch)."""
        return self.per_batch.scaled(self.n_batches)
