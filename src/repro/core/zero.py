"""ZeRO-powered data parallelism (§II-B1, Eq. 5's ``M_f_DP`` factor).

Plain DP replicates parameters, gradients and optimizer states on every
worker and only communicates the gradient all-reduce.  ZeRO shards those
states across DP ranks and communicates them on demand, which the paper
models as a single multiplicative overhead factor ``(1 + M_f_DP)`` on the
forward/backward communication time.

The memory-side benefit of each stage lives in
:mod:`repro.memory.footprint`; this module only owns the communication
overhead and the stage bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError, require_finite_fields

#: Default forward/backward communication overhead per ZeRO stage.
#:
#: Stages 1 (optimizer states) and 2 (+gradients) keep DP's communication
#: volume; stage 3 (+parameters) adds a parameter all-gather in the
#: forward and backward pass — a 50% volume increase over baseline DP in
#: the ZeRO paper's accounting.
DEFAULT_STAGE_OVERHEAD = {0: 0.0, 1: 0.0, 2: 0.0, 3: 0.5}


@dataclass(frozen=True)
class ZeroConfig:
    """ZeRO stage selection plus an optional overhead override.

    Parameters
    ----------
    stage:
        0 (plain DP) through 3 (parameters + gradients + optimizer
        states sharded).
    forward_overhead:
        Explicit ``M_f_DP``; when ``None`` the stage default applies.
    """

    stage: int = 0
    forward_overhead: Optional[float] = None

    def __post_init__(self) -> None:
        require_finite_fields(self)
        if self.stage not in DEFAULT_STAGE_OVERHEAD:
            raise ConfigurationError(
                f"ZeRO stage must be one of "
                f"{sorted(DEFAULT_STAGE_OVERHEAD)}, got {self.stage}")
        if self.forward_overhead is not None and self.forward_overhead < 0:
            raise ConfigurationError(
                f"forward_overhead must be non-negative, got "
                f"{self.forward_overhead}")

    @property
    def communication_overhead(self) -> float:
        """``M_f_DP`` — the additive overhead inside Eq. 5's
        ``(1 + M_f_DP)`` factor."""
        if self.forward_overhead is not None:
            return self.forward_overhead
        return DEFAULT_STAGE_OVERHEAD[self.stage]

    @property
    def shards_optimizer_states(self) -> bool:
        """Stage >= 1: optimizer states divided across DP ranks."""
        return self.stage >= 1

    @property
    def shards_gradients(self) -> bool:
        """Stage >= 2: gradients divided across DP ranks."""
        return self.stage >= 2

    @property
    def shards_parameters(self) -> bool:
        """Stage 3: parameters divided across DP ranks."""
        return self.stage >= 3


#: Plain data parallelism — the library default.
NO_ZERO = ZeroConfig(stage=0)


def parameter_gather_bits(layer_parameters: float,
                          parameter_bits: int,
                          tp_degree: int = 1) -> float:
    """Bits each ZeRO-3 rank must *receive* to materialize one layer.

    Under ZeRO-3 every DP rank stores only a ``1/N_DP`` parameter
    shard; before computing a layer it all-gathers the layer's full
    (TP-sharded) parameters.  An all-gather over ``N`` ranks delivers
    ``(N-1)/N`` of the result to each rank — approximated as the full
    payload here and exactly handled by the ring topology factor in
    :func:`repro.core.communication.zero_gather_components`.
    """
    if layer_parameters < 0:
        raise ConfigurationError(
            f"layer_parameters must be non-negative, got "
            f"{layer_parameters}")
    if tp_degree < 1:
        raise ConfigurationError(
            f"tp_degree must be >= 1, got {tp_degree}")
    return layer_parameters / tp_degree * parameter_bits
