"""Pipeline-bubble waiting time: Eq. 8.

A pipeline of ``N_PP`` stages fed ``N_ub`` microbatches idles for
``N_PP - 1`` step times while filling and draining.  Eq. 8 expresses the
per-layer waiting time as

    W(l) = R * (N_PP - 1) / N_ub
         * [ (U_f(l) + U_b(l)) / (L * N_TP * N_DP * N_PP)
             + M_b(l) + M_f(l) ]

``R`` is the overlap ratio: 1 for naive/GPipe schedules, below 1 for
interleaved schedules that hide part of the bubble (the paper sets R = 1
for its Table II estimates and attributes the growing error at deep PP
to exactly this).  Weight updates and the gradient all-reduce happen
outside the pipeline and do not appear here.

Two interpretations of the compute term are provided:

- ``"physical"`` (default): drop Eq. 8's ``1/L`` on the compute term, so
  the layer sum of ``W(l)`` equals the classic bubble bound — idle
  fraction ``(N_PP - 1) / N_ub`` times the per-worker batch compute
  time.  This is what the discrete-event pipeline simulator measures and
  what the GPipe speedups of Table III require.
- ``"eq8"``: the equation exactly as printed, whose ``1/L`` makes
  bubbles nearly negligible for deep models (consistent with the
  paper's Fig. 3 narrative of "negligible" bubbles).

The communication term is common to both modes: summed over layers it
charges ``(N_PP - 1)`` per-microbatch communication steps, which is the
physically correct fill/drain cost (see DESIGN.md).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.parallelism.spec import ParallelismSpec
from repro.units import Seconds

#: Recognized bubble-model interpretations.
BUBBLE_MODELS = ("physical", "eq8")


def bubble_time(forward_compute: Seconds, backward_compute: Seconds,
                forward_comm: Seconds, backward_comm: Seconds,
                n_layers: int, parallelism: ParallelismSpec,
                model: str = "physical") -> Seconds:
    """``W(l)`` (Eq. 8) for one layer.

    Parameters
    ----------
    forward_compute, backward_compute:
        ``U_f(l)`` and ``U_b(l)`` — global-batch compute times of the
        layer (Eq. 8 scales them down by the worker count).
    forward_comm, backward_comm:
        ``M_f(l)`` and ``M_b(l)`` — per-layer communication as it enters
        Eq. 1 (pipeline-stage concurrency already applied by the caller).
    n_layers:
        ``L``, total transformer layers.
    parallelism:
        Supplies ``N_PP``, ``N_ub``, worker counts and the overlap
        ratio ``R``.
    model:
        ``"physical"`` or ``"eq8"`` (see module docstring).
    """
    if n_layers < 1:
        raise ConfigurationError(
            f"n_layers must be >= 1, got {n_layers}")
    if model not in BUBBLE_MODELS:
        raise ConfigurationError(
            f"bubble model must be one of {BUBBLE_MODELS}, got {model!r}")
    for name, value in (("forward_compute", forward_compute),
                        ("backward_compute", backward_compute),
                        ("forward_comm", forward_comm),
                        ("backward_comm", backward_comm)):
        if value < 0:
            raise ConfigurationError(
                f"{name} must be non-negative, got {value}")

    n_pp = parallelism.pp
    if n_pp <= 1:
        return 0.0
    n_ub = parallelism.microbatches
    compute_divisor = parallelism.tp * parallelism.dp * n_pp
    if model == "eq8":
        compute_divisor *= n_layers
    step_time = ((forward_compute + backward_compute) / compute_divisor
                 + backward_comm + forward_comm)
    return (parallelism.bubble_overlap_ratio
            * (n_pp - 1) / n_ub * step_time)


def bubble_fraction(parallelism: ParallelismSpec) -> float:
    """The classic bubble-fraction bound ``R (N_PP - 1) / N_ub`` — the
    share of pipeline time spent idle when step durations are uniform.

    Case Study II quotes this directly ("pipeline bubbles (~11% in this
    case)"); it is also what the discrete-event pipeline simulator
    measures empirically.
    """
    if parallelism.pp <= 1:
        return 0.0
    return (parallelism.bubble_overlap_ratio
            * (parallelism.pp - 1) / parallelism.microbatches)
