"""The AMPeD model: Eq. 1 assembled from its parts.

:class:`AMPeD` binds a transformer, a system, a parallelism mapping, a
precision policy and an efficiency fit, and evaluates

    Time = N_batch * sum_l [ (U_f(l) + U_b(l) + U_w(l)) / (N_TP N_DP N_PP)
                             + M_f(l) + M_b(l) + M_g(l) + W(l) ]

returning the result as a :class:`TrainingTimeBreakdown` so every term
stays inspectable (the paper's Fig. 3 capability).

Typical use::

    from repro import AMPeD
    from repro.hardware import megatron_a100_cluster
    from repro.transformer import MEGATRON_145B
    from repro.parallelism import spec_from_totals, CASE_STUDY_EFFICIENCY

    system = megatron_a100_cluster()
    amped = AMPeD(
        model=MEGATRON_145B,
        system=system,
        parallelism=spec_from_totals(system, tp=8, pp=8, dp=16),
        efficiency=CASE_STUDY_EFFICIENCY,
    )
    estimate = amped.estimate(global_batch=2048, n_batches=10_000)
    print(estimate.total_time_days)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields, replace
from typing import Optional

from repro.core.breakdown import TrainingEstimate, TrainingTimeBreakdown
from repro.core.bubbles import bubble_time
from repro.core.communication import (
    CommEnvironment,
    forward_comm_components,
    gradient_comm_components,
    zero_gather_time,
)
from repro.core.compute import (
    backward_compute_time,
    forward_compute_time,
    weight_update_time,
)
from repro.core.operations import build_operations

#: Recognized Eq. 1 evaluation strategies (see :class:`AMPeD`).
EVALUATION_PATHS = ("collapsed", "per_layer", "compiled", "vectorized")

#: Fields that do NOT identify a sweep (see :meth:`AMPeD.sweep_identity`):
#: the mapping varies per candidate, the evaluation path is a strategy
#: choice over the same arithmetic, and ``validate`` is a construction
#: knob with no effect on the estimate.
_SWEEP_IDENTITY_EXCLUDED = ("parallelism", "evaluation_path", "validate")
from repro.core.zero import NO_ZERO, ZeroConfig
from repro.errors import ConfigurationError, require_finite_fields
from repro.hardware.precision import MIXED_FP16, PrecisionPolicy
from repro.obs.trace import emit_component_events, get_tracer
from repro.hardware.system import SystemSpec
from repro.parallelism.microbatch import (
    MicrobatchEfficiency,
    microbatch_size,
    replica_batch_size,
)
from repro.parallelism.spec import ParallelismSpec, spec_from_totals
from repro.parallelism.topology import (
    PAIRWISE_ALLTOALL,
    RING,
    CollectiveTopology,
)
from repro.transformer.config import TransformerConfig
from repro.transformer.params import model_flops_per_batch
from repro.units import to_teraflops


@dataclass(frozen=True)
class AMPeD:
    """The analytical model, fully configured for one scenario.

    Parameters beyond the obvious:

    backward_compute_multiplier:
        ``U_b / U_f`` (2.0 standard; 3.0 models activation
        recomputation).
    backward_comm_ratio:
        ``M_b / M_f`` (1.0: errors mirror activations).
    optimizer_macs_per_parameter:
        MACs per weight in Eq. 12 (1.0 = the paper's plain update).
    include_embeddings:
        Fold embedding + vocabulary-projection compute (and their
        gradient all-reduce) into the estimate as a pseudo-layer.
    concurrent_stage_comm:
        With pipeline parallelism each layer lives on exactly one stage,
        and different stages execute their TP/MoE all-reduces and DP
        gradient reductions concurrently, so Eq. 1's per-layer sum of
        those terms is divided by ``N_PP`` (wall-clock = one stage's
        share).  Disable for a literal reading of Eq. 1.  Eq. 7's PP
        term carries its own ``1/L`` concurrency accounting and is
        never rescaled.
    bubble_model:
        ``"physical"`` (classic bubble bound; default) or ``"eq8"``
        (the printed equation, whose extra ``1/L`` makes bubbles nearly
        negligible for deep models) — see :mod:`repro.core.bubbles`.
    comm_overlap_fraction:
        Fraction of communication time hidden behind computation
        (0 = AMPeD's fully-exposed default; modern frameworks overlap
        the DP gradient all-reduce and parts of the TP traffic with
        compute, approaching ~0.5-0.8).  Applied uniformly to every
        communication component; bubbles are computed from the exposed
        share.
    zero:
        ZeRO stage; contributes Eq. 5's ``(1 + M_f_DP)`` factor.
    zero_explicit_comm:
        When the ZeRO stage shards parameters (stage 3), model the
        forward/backward parameter all-gathers explicitly (hierarchical
        all-gather per layer, reported as the ``comm_zero`` breakdown
        component) instead of Eq. 5's flat ``(1 + M_f_DP)`` factor.
    evaluation_path:
        How Eq. 1's per-layer sum is evaluated.  ``"collapsed"`` (the
        default fast path) groups layers into structural equivalence
        classes — embedding pseudo-layer, dense, MoE — and evaluates
        each class once, scaling by its multiplicity; Eq. 1 is linear
        in every per-layer term, so this is exact up to floating-point
        associativity (``<= 1e-9`` relative on every breakdown
        component, enforced by the property suite).  ``"per_layer"``
        walks all ``n_layers`` layers and serves as the literal
        reference path.  See ``docs/performance.md``.
    validate:
        Check the mapping against the system and model on construction
        (disable only for deliberately hypothetical shapes).
    """

    model: TransformerConfig
    system: SystemSpec
    parallelism: ParallelismSpec
    precision: PrecisionPolicy = MIXED_FP16
    efficiency: MicrobatchEfficiency = field(
        default_factory=MicrobatchEfficiency)
    intra_topology: CollectiveTopology = RING
    inter_topology: CollectiveTopology = RING
    moe_topology: CollectiveTopology = PAIRWISE_ALLTOALL
    zero: ZeroConfig = NO_ZERO
    backward_compute_multiplier: float = 2.0
    backward_comm_ratio: float = 1.0
    optimizer_macs_per_parameter: float = 1.0
    moe_volume_multiplier: float = 1.0
    moe_tp_sharding: bool = True
    include_embeddings: bool = True
    concurrent_stage_comm: bool = True
    bubble_model: str = "physical"
    comm_overlap_fraction: float = 0.0
    zero_explicit_comm: bool = False
    evaluation_path: str = "collapsed"
    validate: bool = True

    def __post_init__(self) -> None:
        require_finite_fields(self)
        if self.evaluation_path not in EVALUATION_PATHS:
            raise ConfigurationError(
                f"evaluation_path must be one of {EVALUATION_PATHS}, got "
                f"{self.evaluation_path!r}")
        if self.backward_compute_multiplier < 0:
            raise ConfigurationError(
                f"backward_compute_multiplier must be non-negative, got "
                f"{self.backward_compute_multiplier}")
        if self.backward_comm_ratio < 0:
            raise ConfigurationError(
                f"backward_comm_ratio must be non-negative, got "
                f"{self.backward_comm_ratio}")
        if not 0 <= self.comm_overlap_fraction < 1:
            raise ConfigurationError(
                f"comm_overlap_fraction must be in [0, 1), got "
                f"{self.comm_overlap_fraction}")
        if self.validate:
            self.parallelism.validate_against(self.system)
            self.parallelism.validate_against_model(
                self.model.n_layers, self.model.n_heads)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def for_mapping(cls, model: TransformerConfig, system: SystemSpec,
                    tp: int = 1, pp: int = 1, dp: int = 1,
                    **kwargs) -> "AMPeD":
        """Build with total degrees placed TP-innermost (Megatron style)."""
        spec_kwargs = {}
        for key in ("n_microbatches", "expert_parallel",
                    "bubble_overlap_ratio"):
            if key in kwargs:
                spec_kwargs[key] = kwargs.pop(key)
        spec = spec_from_totals(system, tp=tp, pp=pp, dp=dp, **spec_kwargs)
        return cls(model=model, system=system, parallelism=spec, **kwargs)

    def with_parallelism(self, parallelism: ParallelismSpec) -> "AMPeD":
        """The same scenario under a different mapping (sweep helper)."""
        return replace(self, parallelism=parallelism)

    def with_system(self, system: SystemSpec) -> "AMPeD":
        """The same scenario on different hardware (sweep helper)."""
        return replace(self, system=system)

    # -- evaluation ------------------------------------------------------------

    def microbatch(self, global_batch: int) -> float:
        """The microbatch size this mapping yields at ``global_batch``."""
        return microbatch_size(global_batch, self.parallelism)

    def microbatch_efficiency(self, global_batch: int) -> float:
        """``eff(ub)`` at this mapping's microbatch size."""
        return self.efficiency(self.microbatch(global_batch))

    def sweep_identity(self) -> tuple:
        """Hashable identity of everything *but* the mapping.

        Two instances with equal sweep identities evaluate the same
        Eq. 1 arithmetic for any given mapping, which is what lets the
        sweep compiler (:mod:`repro.search.compiler`) share one set of
        term tables across every candidate — and every evaluation path —
        of a design-space sweep.
        """
        return tuple(getattr(self, item.name) for item in fields(self)
                     if item.name not in _SWEEP_IDENTITY_EXCLUDED)

    def estimate_batch(self, global_batch: int) -> TrainingTimeBreakdown:
        """Evaluate Eq. 1's bracket for one batch, per component."""
        spec = self.parallelism
        if self.evaluation_path in ("compiled", "vectorized"):
            # Term-table route: identical arithmetic, factored into
            # per-term lookup tables shared across the whole sweep.
            # A lone estimate has no batch to vectorize, so
            # "vectorized" uses the same scalar tables here; the array
            # backend engages in explore()/run_sweep(), which evaluate
            # whole candidate batches (repro.search.vectorized).
            # Imported lazily — repro.search.compiler imports this
            # module for typing.
            from repro.search.compiler import compile_sweep

            breakdown = compile_sweep(self, global_batch).breakdown(spec)
            self._emit_estimate_trace(breakdown, spec, global_batch)
            return breakdown
        eff = self.microbatch_efficiency(global_batch)
        replica_batch = replica_batch_size(global_batch, spec)
        accelerator = self.system.accelerator
        operations = build_operations(self.model, global_batch,
                                      self.include_embeddings)
        explicit_zero = (self.zero_explicit_comm
                         and self.zero.shards_parameters)
        env = CommEnvironment(
            system=self.system,
            parallelism=spec,
            precision=self.precision,
            intra_topology=self.intra_topology,
            inter_topology=self.inter_topology,
            moe_topology=self.moe_topology,
            zero_forward_overhead=(
                0.0 if explicit_zero
                else self.zero.communication_overhead),
            moe_volume_multiplier=self.moe_volume_multiplier,
            moe_tp_sharding=self.moe_tp_sharding,
        )
        workers = spec.world_size
        stage_share = spec.pp if self.concurrent_stage_comm else 1
        exposed = 1.0 - self.comm_overlap_fraction

        totals = dict.fromkeys((
            "compute_forward", "compute_backward", "compute_weight_update",
            "comm_tp_intra", "comm_tp_inter", "comm_pp", "comm_moe",
            "comm_gradient_intra", "comm_gradient_inter", "comm_zero",
            "bubble"), 0.0)

        # Eq. 1 is linear in every per-layer term, so the collapsed fast
        # path evaluates one representative per structural layer class
        # and weights it by the class multiplicity; the per-layer
        # reference path weights every layer by 1.
        if self.evaluation_path == "collapsed":
            groups = [(cls.representative, float(cls.multiplicity))
                      for cls in operations.layer_classes]
        else:
            groups = [(layer, 1.0) for layer in operations.layers]

        for layer, weight in groups:
            u_f = forward_compute_time(layer, accelerator, self.precision,
                                       eff)
            u_b = backward_compute_time(
                layer, accelerator, self.precision, eff,
                self.backward_compute_multiplier)
            u_w = weight_update_time(
                layer, accelerator, self.precision, eff,
                self.optimizer_macs_per_parameter)
            totals["compute_forward"] += weight * u_f / workers
            totals["compute_backward"] += weight * u_b / workers
            totals["compute_weight_update"] += weight * u_w / workers

            gradient = gradient_comm_components(
                env, layer.gradient_parameters(spec.expert_parallel))
            totals["comm_gradient_intra"] += \
                weight * gradient["intra"] / stage_share * exposed
            totals["comm_gradient_inter"] += \
                weight * gradient["inter"] / stage_share * exposed

            if explicit_zero:
                # one parameter all-gather before the forward pass and
                # one before the backward pass (re-gather after free)
                gather = zero_gather_time(
                    env, layer.gradient_parameters(spec.expert_parallel))
                totals["comm_zero"] += \
                    weight * 2.0 * gather / stage_share * exposed

            if layer.index < 0:
                continue  # embedding pseudo-layer: no TP/PP/MoE traffic

            forward = forward_comm_components(env, self.model,
                                              replica_batch, layer.is_moe)
            # TP and MoE collectives of different pipeline stages overlap
            # in wall-clock time; the PP term (Eq. 7) already accounts
            # for its own overlap through the 1/L prefactor.  The
            # compute-overlap knob then hides a further fraction of
            # every component.
            forward["tp_intra"] *= exposed / stage_share
            forward["tp_inter"] *= exposed / stage_share
            forward["moe"] *= exposed / stage_share
            forward["pp"] *= exposed
            m_f = sum(forward.values())
            m_b = m_f * self.backward_comm_ratio
            scale = 1.0 + self.backward_comm_ratio
            totals["comm_tp_intra"] += weight * forward["tp_intra"] * scale
            totals["comm_tp_inter"] += weight * forward["tp_inter"] * scale
            totals["comm_pp"] += weight * forward["pp"] * scale
            totals["comm_moe"] += weight * forward["moe"] * scale
            totals["bubble"] += weight * bubble_time(
                u_f, u_b, m_f, m_b, self.model.n_layers, spec,
                model=self.bubble_model)

        breakdown = TrainingTimeBreakdown(**totals)
        self._emit_estimate_trace(breakdown, spec, global_batch)
        return breakdown

    def _emit_estimate_trace(self, breakdown: TrainingTimeBreakdown,
                             spec: ParallelismSpec,
                             global_batch: int) -> None:
        """Emit the per-component span events for one estimate (no-op
        while tracing is disabled)."""
        tracer = get_tracer()
        if tracer.enabled:
            # The six split degrees + microbatch count are stamped as
            # individual attrs (not just the describe() string) so
            # repro.obs.ingest can reconstruct the exact
            # ParallelismSpec when a trace is fed back for calibration.
            emit_component_events(
                tracer, breakdown.as_dict(), breakdown.total,
                name="model.estimate_batch", track_prefix="model.eq1",
                category="model",
                attrs={"model": self.model.name,
                       "mapping": spec.describe(),
                       "global_batch": global_batch,
                       "evaluation_path": self.evaluation_path,
                       "tp_intra": spec.tp_intra,
                       "tp_inter": spec.tp_inter,
                       "pp_intra": spec.pp_intra,
                       "pp_inter": spec.pp_inter,
                       "dp_intra": spec.dp_intra,
                       "dp_inter": spec.dp_inter,
                       "n_microbatches": spec.microbatches})

    def estimate(self, global_batch: int,
                 n_batches: Optional[int] = None,
                 total_tokens: Optional[float] = None) -> TrainingEstimate:
        """Full-run estimate: Eq. 1 with its ``N_batch`` prefactor.

        Give either ``n_batches`` directly or ``total_tokens`` (the
        corpus size), from which ``N_batch = ceil(tokens / (batch * s))``.
        """
        if (n_batches is None) == (total_tokens is None):
            raise ConfigurationError(
                "provide exactly one of n_batches or total_tokens")
        if total_tokens is not None:
            n_batches = self.n_batches_for_tokens(global_batch, total_tokens)
        return TrainingEstimate(per_batch=self.estimate_batch(global_batch),
                                n_batches=n_batches)

    def n_batches_for_tokens(self, global_batch: int,
                             total_tokens: float) -> int:
        """``N_batch`` to push ``total_tokens`` through training."""
        if total_tokens <= 0:
            raise ConfigurationError(
                f"total_tokens must be positive, got {total_tokens}")
        tokens_per_batch = global_batch * self.model.sequence_length
        return max(1, math.ceil(total_tokens / tokens_per_batch))

    # -- derived metrics ---------------------------------------------------------

    def achieved_tflops_per_gpu(self, global_batch: int) -> float:
        """The Table II metric: model TFLOPs per second per accelerator.

        ``model_flops(batch) / (batch_time * N_accelerators)`` — model
        FLOPs, not hardware FLOPs, so recomputation or multi-pass
        precision raise the time without raising the numerator.
        """
        flops = model_flops_per_batch(
            self.model, global_batch,
            backward_multiplier=self.backward_compute_multiplier,
            include_logits=self.include_embeddings)
        batch_time = self.estimate_batch(global_batch).total
        return to_teraflops(flops / (batch_time * self.system.n_accelerators))

    def tokens_per_second(self, global_batch: int) -> float:
        """Training throughput in tokens/second."""
        batch_time = self.estimate_batch(global_batch).total
        return global_batch * self.model.sequence_length / batch_time
