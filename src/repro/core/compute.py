"""Computation-time estimators: Eqs. 2, 3, 4 and 12.

All functions return the time for the *global-batch* operation counts of
one layer on *one* accelerator running at the given microbatch
efficiency; Eq. 1 divides the result by ``N_TP * N_DP * N_PP`` to account
for the work actually landing on each worker.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hardware.accelerator import AcceleratorSpec
from repro.hardware.precision import PrecisionPolicy, precision_passes
from repro.core.operations import LayerOperations
from repro.units import FLOPS_PER_MAC, Seconds


def mac_time_per_op(accelerator: AcceleratorSpec,
                    efficiency: float) -> Seconds:
    """``C_MAC`` (Eq. 3): seconds per MAC-pipeline FLOP at ``efficiency``.

    ``C_MAC = (f * N_cores * N_FU * W_FU * eff(ub))^-1``
    """
    if not 0 < efficiency <= 1:
        raise ConfigurationError(
            f"efficiency must be in (0, 1], got {efficiency}")
    return 1.0 / (accelerator.peak_mac_flops_per_s * efficiency)


def nonlinear_time_per_op(accelerator: AcceleratorSpec) -> Seconds:
    """``C_nonlin`` (Eq. 4): seconds per non-linear operation.

    ``C_nonlin = (f * N_FU_nonlin * W_FU_nonlin)^-1``; no efficiency
    derating — the paper applies ``eff(ub)`` to the MAC pipeline only.
    """
    return 1.0 / accelerator.peak_nonlinear_ops_per_s


def forward_compute_time(layer: LayerOperations,
                         accelerator: AcceleratorSpec,
                         precision: PrecisionPolicy,
                         efficiency: float) -> Seconds:
    """``U_f(l)`` (Eq. 2): forward compute time of layer ``l``.

    Sums over the layer's sublayers ``i``:

    ``N_MAC(l,i) * C_MAC * ceil(max(S_p, S_act) / S_FU_MAC)
      + N_nonlin(l,i) * C_nonlin * ceil(S_nonlin / S_FU_nonlin)``

    The precision ceilings model a functional unit making multiple passes
    over operands wider than its native width.
    """
    c_mac = mac_time_per_op(accelerator, efficiency)
    c_nonlin = nonlinear_time_per_op(accelerator)
    mac_passes = precision_passes(precision.mac_operand_bits,
                                  accelerator.mac_fu_bits)
    nonlin_passes = precision_passes(precision.nonlinear_bits,
                                     accelerator.nonlinear_fu_bits)
    total = 0.0
    for sublayer in layer.sublayers:
        total += sublayer.mac_flops * c_mac * mac_passes
        total += sublayer.nonlinear_ops * c_nonlin * nonlin_passes
    return total


def backward_compute_time(layer: LayerOperations,
                          accelerator: AcceleratorSpec,
                          precision: PrecisionPolicy,
                          efficiency: float,
                          backward_multiplier: float = 2.0) -> Seconds:
    """``U_b(l)`` (§IV-E): backward compute as a multiple of forward.

    The backward pass computes gradients with respect to both inputs and
    weights, costing ~2x the forward matmuls; the multiplier is exposed
    for studies (e.g. activation recomputation adds another forward,
    making it 3.0).
    """
    if backward_multiplier < 0:
        raise ConfigurationError(
            f"backward_multiplier must be non-negative, got "
            f"{backward_multiplier}")
    forward = forward_compute_time(layer, accelerator, precision,
                                   efficiency)
    return forward * backward_multiplier


def weight_update_time(layer: LayerOperations,
                       accelerator: AcceleratorSpec,
                       precision: PrecisionPolicy,
                       efficiency: float,
                       optimizer_macs_per_parameter: float = 1.0) -> Seconds:
    """``U_w(l)`` (Eq. 12): time to apply the optimizer step to layer ``l``.

    The paper multiplies the layer's weight count by the MAC reciprocal
    (one MAC per weight — plain SGD).  ``optimizer_macs_per_parameter``
    scales that for richer optimizers (Adam performs a handful of
    elementwise operations per weight).
    """
    if optimizer_macs_per_parameter < 0:
        raise ConfigurationError(
            f"optimizer_macs_per_parameter must be non-negative, got "
            f"{optimizer_macs_per_parameter}")
    c_mac = mac_time_per_op(accelerator, efficiency)
    mac_passes = precision_passes(precision.parameter_bits,
                                  accelerator.mac_fu_bits)
    flops = layer.parameters * optimizer_macs_per_parameter * FLOPS_PER_MAC
    return flops * c_mac * mac_passes
