"""Per-layer operation profiles consumed by the AMPeD equations.

Eq. 1 sums per-layer quantities over all layers ``l``; this module
assembles, for a (model, global batch) pair, the per-layer bundles the
compute and communication estimators need: sublayer MAC/non-linear counts
for the *global* batch (the division by ``N_TP N_DP N_PP`` happens in
Eq. 1), the layer's parameter count (weight update, gradient volume), and
whether the layer carries MoE experts.

Transformer stacks are highly repetitive — every dense layer is
structurally identical, and so is every MoE layer — so the module also
collapses a model's layers into *equivalence classes*
(:class:`LayerClass`): at most an embedding pseudo-layer, one dense
class and one MoE class, each with a multiplicity.  Eq. 1 is linear in
the per-layer terms, which lets :meth:`repro.core.model.AMPeD`'s fast
path evaluate each class once and scale by its multiplicity instead of
walking all ``n_layers`` layers.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, require_finite_fields
from repro.transformer.config import TransformerConfig
from repro.transformer.layers import (
    SublayerOps,
    embedding_sublayer,
    layer_sublayers,
    logits_sublayer,
)


@dataclass(frozen=True)
class LayerOperations:
    """Everything Eqs. 2-12 need to know about one layer.

    Attributes
    ----------
    index:
        Layer position (0-based); -1 for the embedding/logits pseudo-layer.
    sublayers:
        Forward-pass operation counts per sublayer, for the global batch.
    parameters:
        ``N_MAC(l)`` of Eq. 12 and ``N_g(l)`` of Eq. 11 — trainable
        weights in the layer.
    is_moe:
        Whether Eq. 9's all-to-all applies to this layer.
    """

    index: int
    sublayers: Tuple[SublayerOps, ...]
    parameters: float
    is_moe: bool

    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def mac_flops(self) -> float:
        """Total forward MAC FLOPs of the layer (global batch)."""
        return sum(sub.mac_flops for sub in self.sublayers)

    @property
    def expert_parameters(self) -> float:
        """Parameters belonging to MoE experts (zero for dense layers);
        excluded from the DP gradient all-reduce under expert
        parallelism because experts are not replicated across ranks."""
        return sum(sub.expert_parameters for sub in self.sublayers)

    def gradient_parameters(self, expert_parallel: bool) -> float:
        """``N_g(l)``'s basis: the parameters whose gradients the DP
        all-reduce must move."""
        if expert_parallel:
            return self.parameters - self.expert_parameters
        return self.parameters

    @property
    def nonlinear_ops(self) -> float:
        """Total forward non-linear operations of the layer."""
        return sum(sub.nonlinear_ops for sub in self.sublayers)


@dataclass(frozen=True)
class LayerClass:
    """A set of structurally identical layers, evaluated once.

    Attributes
    ----------
    representative:
        One member of the class; every Eq. 1 term computed from it is
        shared by all members.
    multiplicity:
        How many layers the class stands for.  Eq. 1 is linear in its
        per-layer terms, so ``multiplicity * term(representative)``
        equals the sum over the members exactly (up to floating-point
        associativity).
    """

    representative: LayerOperations
    multiplicity: int

    @property
    def is_moe(self) -> bool:
        """Whether the class's layers carry MoE experts."""
        return self.representative.is_moe

    @property
    def is_pseudo(self) -> bool:
        """Whether this is the embedding/logits pseudo-layer."""
        return self.representative.index < 0


@dataclass(frozen=True)
class ModelOperations:
    """Operation profiles of every layer for one global batch size."""

    model: TransformerConfig
    global_batch: int
    layers: Tuple[LayerOperations, ...]

    @property
    def n_layers(self) -> int:
        """Transformer layer count ``L`` (embedding pseudo-layer excluded)."""
        return sum(1 for layer in self.layers if layer.index >= 0)

    @functools.cached_property
    def layer_classes(self) -> Tuple[LayerClass, ...]:
        """The layers collapsed into equivalence classes.

        Layers are grouped by structural content — pseudo-layer flag,
        MoE flag, the full sublayer operation counts and the parameter
        count — so the grouping stays correct even for hypothetical
        stacks whose layers differ in ways the flags alone miss.  For
        every model the zoo knows this yields at most three classes
        (embedding pseudo-layer, dense, MoE).  Cached on the instance;
        :func:`build_operations` memoizes instances, so sweeps collapse
        each (model, batch) pair once.
        """
        groups: Dict[tuple, List] = {}
        order: List[tuple] = []
        for layer in self.layers:
            key = (layer.index < 0, layer.is_moe, layer.sublayers,
                   layer.parameters)
            if key in groups:
                groups[key][1] += 1
            else:
                groups[key] = [layer, 1]
                order.append(key)
        return tuple(LayerClass(representative=groups[key][0],
                                multiplicity=groups[key][1])
                     for key in order)

    @property
    def total_parameters(self) -> float:
        """Sum of per-layer parameters (including the embedding
        pseudo-layer when present)."""
        return sum(layer.parameters for layer in self.layers)

    @property
    def total_forward_mac_flops(self) -> float:
        """Forward MAC FLOPs of the whole model for the global batch."""
        return sum(layer.mac_flops for layer in self.layers)


#: Default entry count for the :func:`build_operations` memo.
DEFAULT_OPERATIONS_CACHE_SIZE = 512


def _assemble_operations(model: TransformerConfig, global_batch: int,
                         include_embeddings: bool = True) -> ModelOperations:
    if global_batch < 1:
        raise ConfigurationError(
            f"global_batch must be >= 1, got {global_batch}")
    layers: List[LayerOperations] = []
    if include_embeddings:
        embedding = embedding_sublayer(model, global_batch)
        logits = logits_sublayer(model, global_batch)
        layers.append(LayerOperations(
            index=-1,
            sublayers=(embedding, logits),
            parameters=embedding.parameters + logits.parameters,
            is_moe=False,
        ))
    for index in range(model.n_layers):
        sublayers = tuple(layer_sublayers(model, global_batch, index))
        layers.append(LayerOperations(
            index=index,
            sublayers=sublayers,
            parameters=sum(sub.parameters for sub in sublayers),
            is_moe=model.is_moe_layer(index),
        ))
    return ModelOperations(model=model, global_batch=global_batch,
                           layers=tuple(layers))


_cached_assemble = functools.lru_cache(
    maxsize=DEFAULT_OPERATIONS_CACHE_SIZE)(_assemble_operations)


def build_operations(model: TransformerConfig, global_batch: int,
                     include_embeddings: bool = True) -> ModelOperations:
    """Assemble :class:`ModelOperations` for ``model`` at ``global_batch``.

    When ``include_embeddings`` is set (the default), the input embedding
    and vocabulary projection are folded into one extra pseudo-layer with
    ``index == -1``; it contributes compute and weight-update/gradient
    volume but never TP/PP/MoE communication (the paper's equations only
    attach communication to transformer layers).

    Results are memoized (configs are frozen dataclasses, so the cache
    key is sound); design-space sweeps re-evaluate the same (model,
    batch) pair for every mapping, and the counts never change.  Size
    the memo with :func:`configure_operations_cache` and inspect it with
    :func:`cache_stats`.
    """
    return _cached_assemble(model, global_batch, include_embeddings)


def collapse_layer_classes(
        operations: ModelOperations) -> Tuple[LayerClass, ...]:
    """Functional access to :attr:`ModelOperations.layer_classes`."""
    return operations.layer_classes


def configure_operations_cache(
        maxsize: Optional[int] = DEFAULT_OPERATIONS_CACHE_SIZE) -> None:
    """Rebuild the :func:`build_operations` memo with a new ``maxsize``.

    ``None`` makes the memo unbounded.  The existing cache contents are
    discarded, so sweeps can also use this to reset hit/miss counters
    between phases.
    """
    global _cached_assemble
    _cached_assemble = functools.lru_cache(maxsize=maxsize)(
        _assemble_operations)


def cache_stats() -> Dict[str, Optional[int]]:
    """Hit/miss counters of the :func:`build_operations` memo.

    Sweeps that vary the global batch can check ``hits``/``misses``
    after a run to verify the memo is not thrashing (a healthy sweep
    shows one miss per distinct (model, batch, embeddings) triple and
    hits for everything else).
    """
    info = _cached_assemble.cache_info()
    return {"hits": info.hits, "misses": info.misses,
            "maxsize": info.maxsize, "currsize": info.currsize}
