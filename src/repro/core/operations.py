"""Per-layer operation profiles consumed by the AMPeD equations.

Eq. 1 sums per-layer quantities over all layers ``l``; this module
assembles, for a (model, global batch) pair, the per-layer bundles the
compute and communication estimators need: sublayer MAC/non-linear counts
for the *global* batch (the division by ``N_TP N_DP N_PP`` happens in
Eq. 1), the layer's parameter count (weight update, gradient volume), and
whether the layer carries MoE experts.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.transformer.config import TransformerConfig
from repro.transformer.layers import (
    SublayerOps,
    embedding_sublayer,
    layer_sublayers,
    logits_sublayer,
)


@dataclass(frozen=True)
class LayerOperations:
    """Everything Eqs. 2-12 need to know about one layer.

    Attributes
    ----------
    index:
        Layer position (0-based); -1 for the embedding/logits pseudo-layer.
    sublayers:
        Forward-pass operation counts per sublayer, for the global batch.
    parameters:
        ``N_MAC(l)`` of Eq. 12 and ``N_g(l)`` of Eq. 11 — trainable
        weights in the layer.
    is_moe:
        Whether Eq. 9's all-to-all applies to this layer.
    """

    index: int
    sublayers: Tuple[SublayerOps, ...]
    parameters: float
    is_moe: bool

    @property
    def mac_flops(self) -> float:
        """Total forward MAC FLOPs of the layer (global batch)."""
        return sum(sub.mac_flops for sub in self.sublayers)

    @property
    def expert_parameters(self) -> float:
        """Parameters belonging to MoE experts (zero for dense layers);
        excluded from the DP gradient all-reduce under expert
        parallelism because experts are not replicated across ranks."""
        return sum(sub.expert_parameters for sub in self.sublayers)

    def gradient_parameters(self, expert_parallel: bool) -> float:
        """``N_g(l)``'s basis: the parameters whose gradients the DP
        all-reduce must move."""
        if expert_parallel:
            return self.parameters - self.expert_parameters
        return self.parameters

    @property
    def nonlinear_ops(self) -> float:
        """Total forward non-linear operations of the layer."""
        return sum(sub.nonlinear_ops for sub in self.sublayers)


@dataclass(frozen=True)
class ModelOperations:
    """Operation profiles of every layer for one global batch size."""

    model: TransformerConfig
    global_batch: int
    layers: Tuple[LayerOperations, ...]

    @property
    def n_layers(self) -> int:
        """Transformer layer count ``L`` (embedding pseudo-layer excluded)."""
        return sum(1 for layer in self.layers if layer.index >= 0)

    @property
    def total_parameters(self) -> float:
        """Sum of per-layer parameters (including the embedding
        pseudo-layer when present)."""
        return sum(layer.parameters for layer in self.layers)

    @property
    def total_forward_mac_flops(self) -> float:
        """Forward MAC FLOPs of the whole model for the global batch."""
        return sum(layer.mac_flops for layer in self.layers)


@functools.lru_cache(maxsize=512)
def build_operations(model: TransformerConfig, global_batch: int,
                     include_embeddings: bool = True) -> ModelOperations:
    """Assemble :class:`ModelOperations` for ``model`` at ``global_batch``.

    When ``include_embeddings`` is set (the default), the input embedding
    and vocabulary projection are folded into one extra pseudo-layer with
    ``index == -1``; it contributes compute and weight-update/gradient
    volume but never TP/PP/MoE communication (the paper's equations only
    attach communication to transformer layers).

    Results are memoized (configs are frozen dataclasses, so the cache
    key is sound); design-space sweeps re-evaluate the same (model,
    batch) pair for every mapping, and the counts never change.
    """
    if global_batch < 1:
        raise ConfigurationError(
            f"global_batch must be >= 1, got {global_batch}")
    layers: List[LayerOperations] = []
    if include_embeddings:
        embedding = embedding_sublayer(model, global_batch)
        logits = logits_sublayer(model, global_batch)
        layers.append(LayerOperations(
            index=-1,
            sublayers=(embedding, logits),
            parameters=embedding.parameters + logits.parameters,
            is_moe=False,
        ))
    for index in range(model.n_layers):
        sublayers = tuple(layer_sublayers(model, global_batch, index))
        layers.append(LayerOperations(
            index=index,
            sublayers=sublayers,
            parameters=sum(sub.parameters for sub in sublayers),
            is_moe=model.is_moe_layer(index),
        ))
    return ModelOperations(model=model, global_batch=global_batch,
                           layers=tuple(layers))
