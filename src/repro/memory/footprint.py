"""Per-accelerator memory footprint model.

The paper lists memory-constraint modeling as future work and folds the
constraint into the microbatch-efficiency fit; this module implements the
extension explicitly so the design-space explorer can reject mappings
that cannot physically run (the mechanism behind Fig. 2b's saturation
and Table III's "we tune the microbatch size according to the available
memory of P100").

Footprint components, following the standard mixed-precision training
accounting (and the ZeRO paper's partitioning):

- *parameters*: one copy at parameter precision per rank, divided by the
  TP degree and the PP stage count (each stage holds its layers only);
  divided further by DP under ZeRO-3.
- *gradients*: same size as parameters (gradient precision); divided by
  DP under ZeRO-2+.
- *optimizer states*: master weights + two Adam moments at FP32 by
  default (12 bytes per parameter); divided by DP under ZeRO-1+.
- *activations*: per microbatch, the standard transformer activation
  footprint ``s * ub * h * (34 + 5 a s / h)`` bytes-at-activation-
  precision per layer (Korthikanti et al.'s accounting, scaled to the
  configured precision), divided by TP; pipeline stages hold activations
  for the in-flight microbatches of their own layers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.zero import NO_ZERO, ZeroConfig
from repro.errors import ConfigurationError, require_finite_fields
from repro.hardware.precision import PrecisionPolicy
from repro.parallelism.spec import ParallelismSpec
from repro.transformer.config import TransformerConfig
from repro.transformer.params import total_parameters
from repro.units import BITS_PER_BYTE

#: Bytes of optimizer state per parameter: FP32 master copy + two FP32
#: Adam moments.
ADAM_STATE_BYTES_PER_PARAM = 12.0

#: Activation bytes per (token x hidden) element of one layer at 16-bit
#: precision, excluding the attention-map term (Korthikanti et al.).
_ACT_BYTES_LINEAR = 34.0

#: Coefficient of the attention-map term ``5 a s / h``.
_ACT_BYTES_ATTENTION = 5.0


@dataclass(frozen=True)
class MemoryFootprint:
    """Per-accelerator footprint, in bytes, by component."""

    parameters: float
    gradients: float
    optimizer_states: float
    activations: float

    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def total(self) -> float:
        """Total bytes resident on one accelerator."""
        return (self.parameters + self.gradients
                + self.optimizer_states + self.activations)

    def as_dict(self) -> dict:
        """Component values keyed by name (reporting helper)."""
        return {
            "parameters": self.parameters,
            "gradients": self.gradients,
            "optimizer_states": self.optimizer_states,
            "activations": self.activations,
            "total": self.total,
        }


def activation_bytes_per_layer(model: TransformerConfig,
                               microbatch_size: float,
                               precision: PrecisionPolicy,
                               tp_degree: int = 1) -> float:
    """Stored activations of one transformer layer for one microbatch.

    Uses the standard ``s*ub*h*(34 + 5*a*s/h)`` bytes-at-16-bit
    accounting, rescaled to the configured activation precision, and
    divided across TP ranks (tensor parallelism shards activations).
    """
    if microbatch_size <= 0:
        raise ConfigurationError(
            f"microbatch_size must be positive, got {microbatch_size}")
    if tp_degree < 1:
        raise ConfigurationError(
            f"tp_degree must be >= 1, got {tp_degree}")
    s, h, a = (model.sequence_length, model.hidden_size, model.n_heads)
    per_element = (_ACT_BYTES_LINEAR
                   + _ACT_BYTES_ATTENTION * a * s / h)
    scale_16bit = precision.activation_bits / 16.0
    return s * microbatch_size * h * per_element * scale_16bit / tp_degree


def checkpointed_activation_bytes_per_layer(
        model: TransformerConfig, microbatch_size: float,
        precision: PrecisionPolicy, tp_degree: int = 1) -> float:
    """Stored activations per layer under full recomputation: only the
    layer-input checkpoint (``s·ub·h`` elements) survives the forward
    pass."""
    if microbatch_size <= 0:
        raise ConfigurationError(
            f"microbatch_size must be positive, got {microbatch_size}")
    if tp_degree < 1:
        raise ConfigurationError(
            f"tp_degree must be >= 1, got {tp_degree}")
    bytes_per_element = precision.activation_bits / BITS_PER_BYTE
    return (model.sequence_length * microbatch_size
            * model.hidden_size * bytes_per_element / tp_degree)


def estimate_footprint(model: TransformerConfig,
                       parallelism: ParallelismSpec,
                       microbatch_size: float,
                       precision: PrecisionPolicy,
                       zero: ZeroConfig = NO_ZERO,
                       in_flight_microbatches: int = None,
                       optimizer_bytes_per_param: float =
                       ADAM_STATE_BYTES_PER_PARAM,
                       recompute_activations: bool = False
                       ) -> MemoryFootprint:
    """Estimate one accelerator's memory footprint for a configuration.

    ``in_flight_microbatches`` is how many microbatches' activations a
    pipeline stage holds simultaneously — ``N_PP`` for 1F1B (its defining
    property), ``N_ub`` for GPipe.  Defaults to the 1F1B bound
    ``min(N_PP, N_ub)``.

    ``recompute_activations`` models full activation recomputation
    (the configuration Megatron's published Table II runs used): only
    each layer's *input* is checkpointed and everything else is rebuilt
    during the backward pass, shrinking stored activations to the
    layer-boundary tensors (``s·ub·h`` elements per layer) at the price
    of an extra forward pass — pair it with
    ``AMPeD(backward_compute_multiplier=3.0)``.
    """
    if optimizer_bytes_per_param < 0:
        raise ConfigurationError(
            f"optimizer_bytes_per_param must be non-negative, got "
            f"{optimizer_bytes_per_param}")
    params_total = total_parameters(model)
    shard = parallelism.tp * parallelism.pp
    params_per_rank = params_total / shard

    param_bytes = params_per_rank * precision.parameter_bits / BITS_PER_BYTE
    grad_bytes = params_per_rank * precision.gradient_bits / BITS_PER_BYTE
    optim_bytes = params_per_rank * optimizer_bytes_per_param

    dp = parallelism.dp
    if zero.shards_parameters:
        param_bytes /= dp
    if zero.shards_gradients:
        grad_bytes /= dp
    if zero.shards_optimizer_states:
        optim_bytes /= dp

    if in_flight_microbatches is None:
        in_flight_microbatches = min(parallelism.pp,
                                     parallelism.microbatches)
    if in_flight_microbatches < 1:
        raise ConfigurationError(
            f"in_flight_microbatches must be >= 1, got "
            f"{in_flight_microbatches}")
    layers_per_stage = max(1.0, model.n_layers / parallelism.pp)
    if recompute_activations:
        per_layer = checkpointed_activation_bytes_per_layer(
            model, microbatch_size, precision, parallelism.tp)
    else:
        per_layer = activation_bytes_per_layer(
            model, microbatch_size, precision, parallelism.tp)
    act_bytes = per_layer * layers_per_stage * in_flight_microbatches

    return MemoryFootprint(
        parameters=param_bytes,
        gradients=grad_bytes,
        optimizer_states=optim_bytes,
        activations=act_bytes,
    )
