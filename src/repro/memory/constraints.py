"""Memory-capacity checks and feasible-microbatch search.

These make the paper's implicit feasibility constraints explicit: a
mapping only counts if its footprint fits the accelerator's HBM.  The
design-space explorer uses :func:`fits_in_memory` as a filter, and the
validation experiments use :func:`max_feasible_microbatch` to reproduce
"we adjust the batch size if needed to fit into the GPU memory" (§V-A).
"""

from __future__ import annotations

from typing import Optional

from repro.core.zero import NO_ZERO, ZeroConfig
from repro.errors import ConfigurationError, MemoryCapacityError
from repro.hardware.accelerator import AcceleratorSpec
from repro.hardware.precision import PrecisionPolicy
from repro.memory.footprint import estimate_footprint
from repro.parallelism.spec import ParallelismSpec
from repro.transformer.config import TransformerConfig
from repro.units import format_bytes

#: Fraction of HBM usable for model state (the rest goes to framework
#: overhead, fragmentation, workspace buffers).
DEFAULT_USABLE_FRACTION = 0.9


def fits_in_memory(model: TransformerConfig,
                   parallelism: ParallelismSpec,
                   microbatch_size: float,
                   precision: PrecisionPolicy,
                   accelerator: AcceleratorSpec,
                   zero: ZeroConfig = NO_ZERO,
                   usable_fraction: float = DEFAULT_USABLE_FRACTION) -> bool:
    """Whether the configuration's footprint fits one accelerator."""
    footprint = estimate_footprint(model, parallelism, microbatch_size,
                                   precision, zero)
    return footprint.total <= accelerator.memory_bytes * usable_fraction


def require_fits(model: TransformerConfig,
                 parallelism: ParallelismSpec,
                 microbatch_size: float,
                 precision: PrecisionPolicy,
                 accelerator: AcceleratorSpec,
                 zero: ZeroConfig = NO_ZERO,
                 usable_fraction: float = DEFAULT_USABLE_FRACTION) -> None:
    """Raise :class:`MemoryCapacityError` (with sizes) when the
    configuration does not fit."""
    footprint = estimate_footprint(model, parallelism, microbatch_size,
                                   precision, zero)
    budget = accelerator.memory_bytes * usable_fraction
    if footprint.total > budget:
        raise MemoryCapacityError(
            f"{model.name} with {parallelism.describe()} at microbatch "
            f"{microbatch_size:g} needs {format_bytes(footprint.total)} "
            f"but {accelerator.name} offers {format_bytes(budget)}",
            required_bytes=footprint.total,
            available_bytes=budget,
        )


def max_feasible_microbatch(model: TransformerConfig,
                            parallelism: ParallelismSpec,
                            precision: PrecisionPolicy,
                            accelerator: AcceleratorSpec,
                            zero: ZeroConfig = NO_ZERO,
                            usable_fraction: float =
                            DEFAULT_USABLE_FRACTION,
                            upper_bound: int = 1 << 16) -> Optional[int]:
    """Largest integer microbatch size that fits, or ``None`` if even
    a single sequence does not (the model-state floor already
    overflows).

    Binary-searches over [1, upper_bound]; footprint is monotone in the
    microbatch size, so the search is exact.
    """
    if upper_bound < 1:
        raise ConfigurationError(
            f"upper_bound must be >= 1, got {upper_bound}")

    def fits(ub: int) -> bool:
        return fits_in_memory(model, parallelism, ub, precision,
                              accelerator, zero, usable_fraction)

    if not fits(1):
        return None
    low, high = 1, upper_bound
    if fits(high):
        return high
    while high - low > 1:
        mid = (low + high) // 2
        if fits(mid):
            low = mid
        else:
            high = mid
    return low
