"""Per-accelerator memory modeling (the paper's declared future work).

Footprint estimation (parameters / gradients / optimizer states /
activations under TP, PP, DP and ZeRO sharding) plus the capacity
constraints the design-space explorer enforces.
"""

from repro.memory.constraints import (
    DEFAULT_USABLE_FRACTION,
    fits_in_memory,
    max_feasible_microbatch,
    require_fits,
)
from repro.memory.footprint import (
    ADAM_STATE_BYTES_PER_PARAM,
    MemoryFootprint,
    activation_bytes_per_layer,
    checkpointed_activation_bytes_per_layer,
    estimate_footprint,
)

__all__ = [
    "MemoryFootprint",
    "estimate_footprint",
    "activation_bytes_per_layer",
    "checkpointed_activation_bytes_per_layer",
    "ADAM_STATE_BYTES_PER_PARAM",
    "fits_in_memory",
    "require_fits",
    "max_feasible_microbatch",
    "DEFAULT_USABLE_FRACTION",
]
