"""Cloud pricing and training-cost estimation.

The paper's introduction motivates AMPeD with exactly this arithmetic:
"executing these long-running experiments on cloud-hosted systems is
also costly because users are billed per hour" and "training [GPT-3]
required 3.1 million GPU hours and would cost about $4.6 million".
This module turns an AMPeD estimate into dollars: GPU-hours times an
hourly rate, with optional interconnect premium and minimum-billing
granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.breakdown import TrainingEstimate
from repro.errors import ConfigurationError, require_finite_fields
from repro.units import SECONDS_PER_HOUR


@dataclass(frozen=True)
class CloudPricing:
    """Hourly pricing of one accelerator instance-share.

    Parameters
    ----------
    name:
        Label ("on-demand A100", "spot H100", ...).
    usd_per_accelerator_hour:
        Billed rate per accelerator per hour.
    interconnect_premium:
        Multiplier for premium-fabric instances (e.g. HDR-connected
        clusters over plain Ethernet ones).
    minimum_billing_s:
        Billing granularity; runs are rounded up to a multiple.
    """

    name: str
    usd_per_accelerator_hour: float
    interconnect_premium: float = 1.0
    minimum_billing_s: float = SECONDS_PER_HOUR

    def __post_init__(self) -> None:
        require_finite_fields(self)
        if self.usd_per_accelerator_hour <= 0:
            raise ConfigurationError(
                f"usd_per_accelerator_hour must be positive, got "
                f"{self.usd_per_accelerator_hour}")
        if self.interconnect_premium < 1.0:
            raise ConfigurationError(
                f"interconnect_premium must be >= 1, got "
                f"{self.interconnect_premium}")
        if self.minimum_billing_s <= 0:
            raise ConfigurationError(
                f"minimum_billing_s must be positive, got "
                f"{self.minimum_billing_s}")

    @property
    def effective_rate(self) -> float:
        """USD per accelerator-hour after the fabric premium."""
        return self.usd_per_accelerator_hour * self.interconnect_premium


@dataclass(frozen=True)
class TrainingCost:
    """Money and resource usage of one training run."""

    gpu_hours: float
    billed_gpu_hours: float
    usd: float
    n_accelerators: int

    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def usd_per_gpu_hour(self) -> float:
        """Effective blended rate (diagnostic)."""
        if self.billed_gpu_hours == 0:
            return 0.0
        return self.usd / self.billed_gpu_hours


def estimate_cost(estimate: TrainingEstimate, n_accelerators: int,
                  pricing: CloudPricing) -> TrainingCost:
    """Cost of a run: accelerators x billed wall-clock x rate."""
    if n_accelerators < 1:
        raise ConfigurationError(
            f"n_accelerators must be >= 1, got {n_accelerators}")
    wall_clock = estimate.total_time_s
    billed_wall_clock = _round_up(wall_clock, pricing.minimum_billing_s)
    gpu_hours = wall_clock * n_accelerators / SECONDS_PER_HOUR
    billed_hours = billed_wall_clock * n_accelerators / SECONDS_PER_HOUR
    return TrainingCost(
        gpu_hours=gpu_hours,
        billed_gpu_hours=billed_hours,
        usd=billed_hours * pricing.effective_rate,
        n_accelerators=n_accelerators,
    )


def _round_up(value: float, granularity: float) -> float:
    steps, remainder = divmod(value, granularity)
    if remainder > 0:
        steps += 1
    return steps * granularity


#: Representative public on-demand rates (USD per GPU-hour, 2023-era
#: list prices; knobs, not gospel).
ON_DEMAND_A100 = CloudPricing("on-demand A100", 4.1,
                              interconnect_premium=1.1)
ON_DEMAND_H100 = CloudPricing("on-demand H100", 8.0,
                              interconnect_premium=1.1)
ON_DEMAND_V100 = CloudPricing("on-demand V100", 2.5)
SPOT_A100 = CloudPricing("spot A100", 1.6, interconnect_premium=1.1)
