"""Carbon-footprint estimation for training runs.

The paper's introduction flags that "the resulting energy usage and
equivalent CO2 emissions are not in line with the goals of sustainable
computing".  This module closes the loop from the energy model: grid
carbon intensity times consumed energy, with a datacenter PUE factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.energy import EnergyEstimate
from repro.errors import ConfigurationError, require_finite_fields
from repro.units import KILO


@dataclass(frozen=True)
class GridCarbonIntensity:
    """Carbon intensity of the electricity powering the cluster.

    Parameters
    ----------
    name:
        Grid label ("EU average", "hydro-dominated", ...).
    grams_co2_per_kwh:
        Operational emissions factor.
    pue:
        Datacenter power-usage effectiveness (total facility power over
        IT power); multiplies the accelerators' energy.
    """

    name: str
    grams_co2_per_kwh: float
    pue: float = 1.2

    def __post_init__(self) -> None:
        require_finite_fields(self)
        if self.grams_co2_per_kwh < 0:
            raise ConfigurationError(
                f"grams_co2_per_kwh must be non-negative, got "
                f"{self.grams_co2_per_kwh}")
        if self.pue < 1.0:
            raise ConfigurationError(
                f"pue must be >= 1, got {self.pue}")


@dataclass(frozen=True)
class CarbonFootprint:
    """Emissions of one training run."""

    facility_kwh: float
    kg_co2: float

    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def tonnes_co2(self) -> float:
        """Emissions in metric tonnes."""
        return self.kg_co2 / KILO


def estimate_carbon(energy: EnergyEstimate,
                    grid: GridCarbonIntensity) -> CarbonFootprint:
    """Emissions of a run whose accelerator energy is ``energy``."""
    facility_kwh = energy.total_kwh * grid.pue
    kg = facility_kwh * grid.grams_co2_per_kwh / KILO
    return CarbonFootprint(facility_kwh=facility_kwh, kg_co2=kg)


#: Representative grid intensities (operational gCO2/kWh).
WORLD_AVERAGE_GRID = GridCarbonIntensity("world average", 475.0)
EU_AVERAGE_GRID = GridCarbonIntensity("EU average", 275.0)
HYDRO_GRID = GridCarbonIntensity("hydro-dominated", 30.0)
COAL_HEAVY_GRID = GridCarbonIntensity("coal-heavy", 820.0)
