"""Training cost in dollars and CO2 (the paper's §I motivation)."""

from repro.cost.carbon import (
    COAL_HEAVY_GRID,
    EU_AVERAGE_GRID,
    HYDRO_GRID,
    WORLD_AVERAGE_GRID,
    CarbonFootprint,
    GridCarbonIntensity,
    estimate_carbon,
)
from repro.cost.pricing import (
    ON_DEMAND_A100,
    ON_DEMAND_H100,
    ON_DEMAND_V100,
    SPOT_A100,
    CloudPricing,
    TrainingCost,
    estimate_cost,
)

__all__ = [
    "CloudPricing",
    "TrainingCost",
    "estimate_cost",
    "ON_DEMAND_A100",
    "ON_DEMAND_H100",
    "ON_DEMAND_V100",
    "SPOT_A100",
    "GridCarbonIntensity",
    "CarbonFootprint",
    "estimate_carbon",
    "WORLD_AVERAGE_GRID",
    "EU_AVERAGE_GRID",
    "HYDRO_GRID",
    "COAL_HEAVY_GRID",
]
