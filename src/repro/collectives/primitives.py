"""Primitives shared by the step-level collective simulators.

The simulators model a collective as a sequence of *rounds*.  In each
round every participating rank sends and receives at most one message
over its link; the round costs ``latency + bits / bandwidth`` for the
largest message moved.  Summing rounds gives the collective's wall-clock
time — the quantity the closed-form topology factors of
:mod:`repro.parallelism.topology` approximate.

Simulating at this granularity is deliberate: it is fine enough to
verify the ``2(N-1)/N``-style factors including their latency terms, and
coarse enough to run thousands of configurations in tests.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.errors import SimulationError, require_finite_fields
from repro.hardware.interconnect import LinkSpec
from repro.obs.trace import get_tracer
from repro.units import Bits, Seconds, bits_to_bytes


@dataclass(frozen=True)
class Round:
    """One communication round of a collective.

    Attributes
    ----------
    bits_per_rank:
        Payload each participating rank moves this round.
    description:
        What the round does ("reduce-scatter step 3", ...).
    """

    bits_per_rank: Bits
    description: str = ""

    def __post_init__(self) -> None:
        require_finite_fields(self)
        if self.bits_per_rank < 0:
            raise SimulationError(
                f"round payload must be non-negative, got "
                f"{self.bits_per_rank}")

    def duration(self, link: LinkSpec) -> Seconds:
        """Wall-clock time of this round over ``link``."""
        return link.transfer_time(self.bits_per_rank)


@dataclass(frozen=True)
class CollectiveResult:
    """Outcome of simulating one collective operation."""

    name: str
    n_ranks: int
    payload_bits: Bits
    rounds: Sequence[Round]
    link: LinkSpec

    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def n_rounds(self) -> int:
        """Sequential communication steps executed."""
        return len(self.rounds)

    @property
    def time_s(self) -> Seconds:
        """Total wall-clock time: the sum of round durations."""
        return sum(r.duration(self.link) for r in self.rounds)

    @property
    def bits_moved_per_rank(self) -> Bits:
        """Total payload a single rank pushed through its link."""
        return sum(r.bits_per_rank for r in self.rounds)

    @property
    def effective_topology_factor(self) -> float:
        """The simulated volume multiplier: bits moved per rank divided
        by the payload — directly comparable to
        :meth:`repro.parallelism.topology.CollectiveTopology.factor`."""
        if self.payload_bits == 0:
            return 0.0
        return self.bits_moved_per_rank / self.payload_bits


def check_ranks(n_ranks: int) -> None:
    """Validate a rank count for the simulators."""
    if not isinstance(n_ranks, int) or n_ranks < 1:
        raise SimulationError(
            f"rank count must be a positive integer, got {n_ranks!r}")


def check_payload(payload_bits: Bits) -> None:
    """Validate a payload size for the simulators."""
    if payload_bits < 0:
        raise SimulationError(
            f"payload must be non-negative, got {payload_bits}")


def even_shards(payload_bits: Bits, n_ranks: int) -> List[float]:
    """Split a payload into ``n_ranks`` equal shards (floats, exact)."""
    check_ranks(n_ranks)
    check_payload(payload_bits)
    return [payload_bits / n_ranks] * n_ranks


def traced_simulation(fn: Callable) -> Callable:
    """Trace a ``simulate_*`` collective under a ``collective.<name>``
    span carrying its cost attributes (payload bytes, round count,
    algorithm, modeled time).

    The enabled check happens before the span is built, so decorated
    simulators cost one attribute check while tracing is off.
    """
    label = "collective." + fn.__name__.replace("simulate_", "", 1)

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        tracer = get_tracer()
        if not tracer.enabled:
            return fn(*args, **kwargs)
        with tracer.span(label, category="collective") as live:
            result = fn(*args, **kwargs)
            live.set_attrs(
                algorithm=result.name,
                n_ranks=result.n_ranks,
                payload_bytes=bits_to_bytes(result.payload_bits),
                steps=result.n_rounds,
                modeled_time_s=result.time_s,
            )
            return result
    return wrapper
