"""Step-level simulation of the pairwise-exchange all-to-all.

Each of the ``N`` ranks holds ``N`` shards (one destined for every
rank, itself included).  Pairwise exchange runs ``N - 1`` rounds; in
round ``k`` rank ``i`` exchanges one shard with rank ``i XOR-shift k``
(any fixed-point-free pairing works for cost purposes).  Per rank the
collective moves ``(N - 1)/N`` of its payload — Eq. 9's ``T_MoE``.
"""

from __future__ import annotations

from typing import List

from repro.collectives.primitives import (
    CollectiveResult,
    Round,
    check_payload,
    check_ranks,
    traced_simulation,
)
from repro.hardware.interconnect import LinkSpec
from repro.units import Bits


@traced_simulation
def simulate_pairwise_alltoall(payload_bits: Bits, n_ranks: int,
                               link: LinkSpec) -> CollectiveResult:
    """Simulate an all-to-all where each rank holds ``payload_bits``
    destined for the group (``payload_bits / N`` per destination)."""
    check_ranks(n_ranks)
    check_payload(payload_bits)
    rounds: List[Round] = []
    if n_ranks > 1:
        shard = payload_bits / n_ranks
        rounds = [Round(shard, f"pairwise exchange {step + 1}")
                  for step in range(n_ranks - 1)]
    return CollectiveResult(
        name="pairwise-alltoall",
        n_ranks=n_ranks,
        payload_bits=payload_bits,
        rounds=tuple(rounds),
        link=link,
    )
