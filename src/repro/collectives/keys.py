"""Minimal-key extraction for the sweep compiler's term tables.

Every communication primitive of Eq. 1 depends on only a *slice* of the
six mapping coordinates (plus the per-candidate microbatch count and
expert-parallel flag).  This module is the declarative record of those
slices: for each term the sweep compiler tabulates
(:mod:`repro.search.compiler`), a key function projects a
:class:`~repro.parallelism.spec.ParallelismSpec` onto exactly the
coordinates the term's closed form reads — two candidates with equal
keys provably receive bit-identical term values, which is what lets one
table entry serve every mapping that shares the slice.

Coordinate dependence, primitive by primitive:

- ``tp_intra`` (Eq. 6, intra phase): participants ``tp_intra`` and the
  replica batch ``global_batch / dp`` — key ``(tp_intra, dp)``.
- ``tp_inter`` (Eq. 6, inter phase): participants ``tp_inter``, payload
  sharded by ``tp_intra``, replica batch — key
  ``(tp_intra, tp_inter, dp)``.
- ``pp`` (Eq. 7): the per-level degree only *gates* the term (a degree
  of 1 costs nothing; the cost itself is degree-independent), so the
  minimal key carries the two gates plus the replica batch —
  ``(pp_intra > 1, pp_inter > 1, dp)``.
- ``moe`` (Eq. 9): volume sharded by the total TP degree, gated by the
  expert-parallel flag, replica batch — key ``(tp, dp,
  expert_parallel)``.  Node count and topology are sweep constants.
- ``gradient`` / ``zero`` (Eqs. 10-11 and the explicit ZeRO-3 gather):
  per-rank volume ``params / tp``, hierarchical over ``(dp_intra,
  dp_inter)``, parameter count gated by ``expert_parallel`` — key
  ``(tp, dp_intra, dp_inter, expert_parallel)``.
- ``compute`` (Eqs. 2-4): only through the microbatch efficiency —
  key ``eff``, itself keyed ``(dp, n_microbatches)``.
- ``bubble`` prefactor (Eq. 8): ``(pp, n_microbatches,
  bubble_overlap_ratio)`` — see
  :func:`repro.pipeline.schedule.bubble_prefactor`.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.parallelism.spec import ParallelismSpec

Key = Tuple


def tp_intra_key(spec: ParallelismSpec) -> Key:
    """Minimal key of the intra-node TP all-reduce term (Eq. 6)."""
    return (spec.tp_intra, spec.dp)


def tp_inter_key(spec: ParallelismSpec) -> Key:
    """Minimal key of the inter-node TP all-reduce term (Eq. 6)."""
    return (spec.tp_intra, spec.tp_inter, spec.dp)


def pp_key(spec: ParallelismSpec) -> Key:
    """Minimal key of the PP stage-boundary term (Eq. 7): the per-level
    degrees only gate the term, so booleans suffice."""
    return (spec.pp_intra > 1, spec.pp_inter > 1, spec.dp)


def moe_key(spec: ParallelismSpec) -> Key:
    """Minimal key of the MoE all-to-all term (Eq. 9)."""
    return (spec.tp, spec.dp, spec.expert_parallel)


def gradient_key(spec: ParallelismSpec) -> Key:
    """Minimal key of the hierarchical gradient all-reduce (Eqs. 10-11)
    and of the explicit ZeRO-3 parameter gather, which shards and
    gates identically."""
    return (spec.tp, spec.dp_intra, spec.dp_inter, spec.expert_parallel)


def efficiency_key(spec: ParallelismSpec) -> Key:
    """Minimal key of the microbatch-efficiency lookup (Eq. 3): the
    microbatch size is ``global_batch / (dp * N_ub)``."""
    return (spec.dp, spec.microbatches)


def bubble_key(spec: ParallelismSpec) -> Key:
    """Minimal key of the pipeline-bubble prefactor (Eq. 8)."""
    return (spec.pp, spec.microbatches, spec.bubble_overlap_ratio)


#: The compiler-facing taxonomy: term name -> key projection.
TERM_KEYS: Dict[str, Callable[[ParallelismSpec], Key]] = {
    "tp_intra": tp_intra_key,
    "tp_inter": tp_inter_key,
    "pp": pp_key,
    "moe": moe_key,
    "gradient": gradient_key,
    "zero": gradient_key,
    "efficiency": efficiency_key,
    "bubble": bubble_key,
}
