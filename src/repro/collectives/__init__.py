"""Step-level collective-communication simulators.

These simulators execute collectives round by round rather than through
closed forms.  They serve two purposes in this reproduction:

1. *verification* — property tests assert that the simulated volume
   multipliers equal the topology factors of
   :mod:`repro.parallelism.topology` for every rank count;
2. *measurement substitute* — the Fig. 2a validation re-creates the
   paper's in-house DP experiment by timing simulated gradient
   all-reduces instead of real NCCL runs (see DESIGN.md,
   "Substitutions").
"""

from repro.collectives.alltoall import simulate_pairwise_alltoall
from repro.collectives.hierarchical import (
    HierarchicalResult,
    simulate_hierarchical_allreduce,
)
from repro.collectives.keys import (
    TERM_KEYS,
    bubble_key,
    efficiency_key,
    gradient_key,
    moe_key,
    pp_key,
    tp_inter_key,
    tp_intra_key,
)
from repro.collectives.primitives import (
    CollectiveResult,
    Round,
    even_shards,
)
from repro.collectives.ring import (
    simulate_ring_allgather,
    simulate_ring_allreduce,
    simulate_ring_reduce_scatter,
)
from repro.collectives.tree import simulate_tree_allreduce

__all__ = [
    "Round",
    "CollectiveResult",
    "HierarchicalResult",
    "TERM_KEYS",
    "even_shards",
    "tp_intra_key",
    "tp_inter_key",
    "pp_key",
    "moe_key",
    "gradient_key",
    "efficiency_key",
    "bubble_key",
    "simulate_ring_allreduce",
    "simulate_ring_reduce_scatter",
    "simulate_ring_allgather",
    "simulate_tree_allreduce",
    "simulate_pairwise_alltoall",
    "simulate_hierarchical_allreduce",
]
