"""Step-level simulation of the hierarchical (two-level) all-reduce.

§IV-B1 and §IV-F assume collectives are *hierarchical*: values are
first reduced inside each node over the fast intra-node fabric, then
across nodes over the NICs, then redistributed inside the node.  The
standard construction:

1. intra-node ring reduce-scatter — each of the ``n_intra`` node-local
   ranks ends up owning a fully-node-reduced ``1/n_intra`` shard;
2. inter-node ring all-reduce of each shard among the rank's peers in
   the other nodes (``n_inter`` participants; all node-local shards
   proceed concurrently over their own NICs);
3. intra-node ring all-gather to rebuild the full payload everywhere.

The inter-node phase therefore carries only ``payload / n_intra`` per
NIC — the sharding assumption baked into Eq. 6/11's inter terms
(see DESIGN.md, "hierarchical all-reduce sharding"), which this
simulator verifies constructively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.primitives import check_payload, check_ranks
from repro.errors import require_finite_fields
from repro.obs.trace import span
from repro.units import Bits, Seconds, bits_to_bytes
from repro.collectives.ring import (
    simulate_ring_allgather,
    simulate_ring_allreduce,
    simulate_ring_reduce_scatter,
)
from repro.hardware.interconnect import LinkSpec


@dataclass(frozen=True)
class HierarchicalResult:
    """Outcome of a two-level all-reduce simulation."""

    intra_reduce_scatter_s: Seconds
    inter_allreduce_s: Seconds
    intra_allgather_s: Seconds
    n_intra: int
    n_inter: int
    payload_bits: Bits

    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def time_s(self) -> Seconds:
        """Total wall-clock time: the three phases are sequential."""
        return (self.intra_reduce_scatter_s + self.inter_allreduce_s
                + self.intra_allgather_s)

    @property
    def inter_bits_per_nic(self) -> Bits:
        """Payload the inter phase pushed through one NIC — the sharded
        volume Eq. 6/11's inter terms assume."""
        if self.n_inter <= 1:
            return 0.0
        factor = 2.0 * (self.n_inter - 1) / self.n_inter
        return self.payload_bits / self.n_intra * factor


def simulate_hierarchical_allreduce(payload_bits: Bits, n_intra: int,
                                    n_inter: int, intra_link: LinkSpec,
                                    inter_link: LinkSpec
                                    ) -> HierarchicalResult:
    """Simulate the two-level all-reduce described above.

    ``n_intra`` ranks per node, ``n_inter`` nodes; degenerate levels
    (degree 1) cost nothing, so the function also covers flat intra-only
    or inter-only groups.
    """
    check_ranks(n_intra)
    check_ranks(n_inter)
    check_payload(payload_bits)

    with span("collective.hierarchical_allreduce",
              category="collective") as live:
        intra_rs = 0.0
        intra_ag = 0.0
        if n_intra > 1:
            intra_rs = simulate_ring_reduce_scatter(
                payload_bits, n_intra, intra_link).time_s
            intra_ag = simulate_ring_allgather(
                payload_bits, n_intra, intra_link).time_s

        inter = 0.0
        if n_inter > 1:
            shard = payload_bits / n_intra
            inter = simulate_ring_allreduce(
                shard, n_inter, inter_link).time_s

        result = HierarchicalResult(
            intra_reduce_scatter_s=intra_rs,
            inter_allreduce_s=inter,
            intra_allgather_s=intra_ag,
            n_intra=n_intra,
            n_inter=n_inter,
            payload_bits=payload_bits,
        )
        live.set_attrs(
            algorithm="hierarchical-allreduce",
            n_ranks=n_intra * n_inter,
            payload_bytes=bits_to_bytes(payload_bits),
            steps=3,
            modeled_time_s=result.time_s,
        )
        return result
