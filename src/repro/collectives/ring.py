"""Step-level simulation of the ring all-reduce.

The bandwidth-optimal ring all-reduce runs two phases over a logical
ring of ``N`` ranks:

1. *reduce-scatter* — ``N - 1`` rounds; in round ``k`` every rank sends
   one ``1/N`` shard to its successor and accumulates the shard it
   receives.  Afterwards each rank holds the fully-reduced value of one
   shard.
2. *all-gather* — ``N - 1`` more rounds circulating the reduced shards
   until every rank holds all of them.

Total: ``2 (N - 1)`` rounds, each moving ``payload / N`` per rank —
whence the closed-form factor ``2 (N - 1) / N`` of Eq. 6.  The simulator
reproduces the factor *constructively*, so the tests can assert the
closed form instead of assuming it.
"""

from __future__ import annotations

from typing import List

from repro.collectives.primitives import (
    CollectiveResult,
    Round,
    check_payload,
    check_ranks,
    traced_simulation,
)
from repro.hardware.interconnect import LinkSpec
from repro.units import Bits


@traced_simulation
def simulate_ring_allreduce(payload_bits: Bits, n_ranks: int,
                            link: LinkSpec) -> CollectiveResult:
    """Simulate an all-reduce of ``payload_bits`` over ``n_ranks``.

    A single rank needs no communication and yields zero rounds.
    """
    check_ranks(n_ranks)
    check_payload(payload_bits)
    rounds: List[Round] = []
    if n_ranks > 1:
        shard = payload_bits / n_ranks
        for step in range(n_ranks - 1):
            rounds.append(Round(shard, f"reduce-scatter step {step + 1}"))
        for step in range(n_ranks - 1):
            rounds.append(Round(shard, f"all-gather step {step + 1}"))
    return CollectiveResult(
        name="ring-allreduce",
        n_ranks=n_ranks,
        payload_bits=payload_bits,
        rounds=tuple(rounds),
        link=link,
    )


@traced_simulation
def simulate_ring_reduce_scatter(payload_bits: Bits, n_ranks: int,
                                 link: LinkSpec) -> CollectiveResult:
    """The reduce-scatter half on its own (ZeRO gradient partitioning)."""
    check_ranks(n_ranks)
    check_payload(payload_bits)
    rounds = []
    if n_ranks > 1:
        shard = payload_bits / n_ranks
        rounds = [Round(shard, f"reduce-scatter step {step + 1}")
                  for step in range(n_ranks - 1)]
    return CollectiveResult(
        name="ring-reduce-scatter",
        n_ranks=n_ranks,
        payload_bits=payload_bits,
        rounds=tuple(rounds),
        link=link,
    )


@traced_simulation
def simulate_ring_allgather(payload_bits: Bits, n_ranks: int,
                            link: LinkSpec) -> CollectiveResult:
    """The all-gather half on its own (ZeRO-3 parameter gathering).

    ``payload_bits`` is the size of the *gathered* result; each rank
    starts with a ``1/N`` shard.
    """
    check_ranks(n_ranks)
    check_payload(payload_bits)
    rounds = []
    if n_ranks > 1:
        shard = payload_bits / n_ranks
        rounds = [Round(shard, f"all-gather step {step + 1}")
                  for step in range(n_ranks - 1)]
    return CollectiveResult(
        name="ring-allgather",
        n_ranks=n_ranks,
        payload_bits=payload_bits,
        rounds=tuple(rounds),
        link=link,
    )
