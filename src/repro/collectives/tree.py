"""Step-level simulation of the binary-tree all-reduce.

``ceil(log2 N)`` reduce rounds up the tree followed by ``ceil(log2 N)``
broadcast rounds down it.  Every round moves the *full* payload over the
busiest link, which is why the tree is latency-optimal but
bandwidth-suboptimal — exactly the trade-off
:class:`repro.parallelism.topology.TreeAllReduce` encodes in closed
form.
"""

from __future__ import annotations

import math
from typing import List

from repro.collectives.primitives import (
    CollectiveResult,
    Round,
    check_payload,
    check_ranks,
    traced_simulation,
)
from repro.hardware.interconnect import LinkSpec
from repro.units import Bits


@traced_simulation
def simulate_tree_allreduce(payload_bits: Bits, n_ranks: int,
                            link: LinkSpec) -> CollectiveResult:
    """Simulate a binary-tree all-reduce (reduce + broadcast)."""
    check_ranks(n_ranks)
    check_payload(payload_bits)
    rounds: List[Round] = []
    if n_ranks > 1:
        depth = math.ceil(math.log2(n_ranks))
        for step in range(depth):
            rounds.append(Round(payload_bits, f"reduce level {step + 1}"))
        for step in range(depth):
            rounds.append(Round(payload_bits,
                                f"broadcast level {step + 1}"))
    return CollectiveResult(
        name="tree-allreduce",
        n_ranks=n_ranks,
        payload_bits=payload_bits,
        rounds=tuple(rounds),
        link=link,
    )
