"""Sensitivity analysis over AMPeD's hardware knobs."""

from repro.sensitivity.elasticity import (
    DEFAULT_EPSILON,
    KNOBS,
    Elasticity,
    dominant_bottleneck,
    knob_elasticity,
    sensitivity_profile,
)

__all__ = [
    "Elasticity",
    "knob_elasticity",
    "sensitivity_profile",
    "dominant_bottleneck",
    "KNOBS",
    "DEFAULT_EPSILON",
]
