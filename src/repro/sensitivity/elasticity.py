"""Sensitivity analysis: which knob moves the training time most?

AMPeD's purpose is hardware-software co-design; the natural first
question is *where the leverage is*.  This module computes, for a
configured :class:`~repro.core.model.AMPeD` scenario, the elasticity of
batch time with respect to each hardware knob:

    elasticity(k) = (dT / T) / (dk / k)

evaluated by central finite differences on a multiplicative
perturbation.  An elasticity of -0.8 for "intra-node bandwidth" means a
1% bandwidth improvement buys a 0.8% faster batch — worth silicon; an
elasticity of -0.001 means the knob is already off the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List

from repro.core.model import AMPeD
from repro.errors import ConfigurationError, require_finite_fields
from repro.hardware.system import SystemSpec

#: Default relative perturbation for the finite differences.
DEFAULT_EPSILON = 0.05


def _scale_frequency(system: SystemSpec, factor: float) -> SystemSpec:
    accelerator = replace(system.accelerator,
                          frequency_hz=system.accelerator.frequency_hz
                          * factor)
    return system.with_node(system.node.with_accelerator(accelerator))


def _scale_nonlinear(system: SystemSpec, factor: float) -> SystemSpec:
    accelerator = system.accelerator
    scaled = replace(
        accelerator,
        fu_nonlinear_width=max(
            1, round(accelerator.fu_nonlinear_width * factor)))
    return system.with_node(system.node.with_accelerator(scaled))


def _scale_intra_bandwidth(system: SystemSpec,
                           factor: float) -> SystemSpec:
    return system.with_node(system.node.with_links(
        intra_link=system.node.intra_link.scaled(factor)))


def _scale_inter_bandwidth(system: SystemSpec,
                           factor: float) -> SystemSpec:
    return system.with_node(system.node.with_links(
        inter_link=system.node.inter_link.scaled(factor)))


def _scale_intra_latency(system: SystemSpec,
                         factor: float) -> SystemSpec:
    link = replace(system.node.intra_link,
                   latency_s=system.node.intra_link.latency_s * factor)
    return system.with_node(system.node.with_links(intra_link=link))


def _scale_inter_latency(system: SystemSpec,
                         factor: float) -> SystemSpec:
    link = replace(system.node.inter_link,
                   latency_s=system.node.inter_link.latency_s * factor)
    return system.with_node(system.node.with_links(inter_link=link))


#: Knob name -> system transformer. Compute-side knobs scale the
#: accelerator; network-side knobs scale a link parameter.
KNOBS: Dict[str, Callable[[SystemSpec, float], SystemSpec]] = {
    "compute_frequency": _scale_frequency,
    "nonlinear_throughput": _scale_nonlinear,
    "intra_bandwidth": _scale_intra_bandwidth,
    "inter_bandwidth": _scale_inter_bandwidth,
    "intra_latency": _scale_intra_latency,
    "inter_latency": _scale_inter_latency,
}


@dataclass(frozen=True)
class Elasticity:
    """One knob's measured leverage on batch time."""

    knob: str
    elasticity: float
    baseline_time_s: float


    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def improves_when_increased(self) -> bool:
        """True for throughput knobs (negative elasticity), False for
        cost knobs like latency."""
        return self.elasticity < 0


def knob_elasticity(amped: AMPeD, global_batch: int, knob: str,
                    epsilon: float = DEFAULT_EPSILON) -> Elasticity:
    """Central-difference elasticity of batch time w.r.t. one knob."""
    if knob not in KNOBS:
        raise ConfigurationError(
            f"unknown knob {knob!r}; known: {sorted(KNOBS)}")
    if not 0 < epsilon < 0.5:
        raise ConfigurationError(
            f"epsilon must be in (0, 0.5), got {epsilon}")
    transform = KNOBS[knob]
    baseline = amped.estimate_batch(global_batch).total
    up = replace(amped, system=transform(amped.system, 1.0 + epsilon)) \
        .estimate_batch(global_batch).total
    down = replace(amped, system=transform(amped.system, 1.0 - epsilon)) \
        .estimate_batch(global_batch).total
    slope = (up - down) / (2.0 * epsilon)
    return Elasticity(knob=knob, elasticity=slope / baseline,
                      baseline_time_s=baseline)


def sensitivity_profile(amped: AMPeD, global_batch: int,
                        epsilon: float = DEFAULT_EPSILON
                        ) -> List[Elasticity]:
    """Elasticities for every knob, sorted by absolute leverage
    (a tornado-chart ordering)."""
    results = [knob_elasticity(amped, global_batch, knob, epsilon)
               for knob in KNOBS]
    results.sort(key=lambda item: abs(item.elasticity), reverse=True)
    return results


def dominant_bottleneck(amped: AMPeD, global_batch: int) -> str:
    """The knob with the most leverage — a one-word co-design answer."""
    return sensitivity_profile(amped, global_batch)[0].knob
