"""Heterogeneous pipeline description.

The paper's conclusion notes that "AMPeD can be easily extended for
heterogeneous accelerators"; this package is that extension for the
most common heterogeneous deployment — a pipeline whose stages run on
different accelerator generations (e.g. new H100 nodes feeding old
V100 nodes).

A :class:`StagePlatform` describes one pipeline stage's hardware: the
accelerator model, the tensor-parallel degree inside the stage, the
stage's intra-node link, and the efficiency fit observed on that
hardware.  :class:`HeterogeneousPipeline` strings stages together over
an inter-stage link and assigns layers to stages.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence, Tuple

from repro.errors import ConfigurationError, MappingError, require_finite_fields
from repro.hardware.accelerator import AcceleratorSpec
from repro.hardware.interconnect import LinkSpec
from repro.hardware.precision import MIXED_FP16, PrecisionPolicy
from repro.parallelism.microbatch import MicrobatchEfficiency
from repro.transformer.config import TransformerConfig


@dataclass(frozen=True)
class StagePlatform:
    """Hardware hosting one pipeline stage."""

    accelerator: AcceleratorSpec
    tp_degree: int = 1
    intra_link: LinkSpec = None
    efficiency: MicrobatchEfficiency = None

    def __post_init__(self) -> None:
        if self.tp_degree < 1:
            raise ConfigurationError(
                f"tp_degree must be >= 1, got {self.tp_degree}")
        if self.efficiency is None:
            object.__setattr__(self, "efficiency",
                               MicrobatchEfficiency())

    @property
    def effective_flops_per_s(self) -> float:
        """Stage compute throughput at full efficiency: the TP group's
        aggregate MAC rate."""
        return self.accelerator.peak_mac_flops_per_s * self.tp_degree

    def speed_at(self, microbatch_size: float) -> float:
        """Effective FLOP/s at a microbatch size (efficiency applied)."""
        return self.effective_flops_per_s \
            * self.efficiency(microbatch_size)


@dataclass(frozen=True)
class HeterogeneousPipeline:
    """A transformer pipelined over heterogeneous stage platforms.

    Parameters
    ----------
    model:
        The transformer being trained.
    stages:
        One :class:`StagePlatform` per pipeline stage, in order.
    inter_stage_link:
        Link carrying activations between consecutive stages.
    layer_assignment:
        Layers per stage, summing to the model's layer count.  Build
        with :func:`even_assignment` or
        :func:`repro.hetero.balance.balance_layers`.
    precision:
        Operand widths (FP16 mixed precision by default).
    backward_multiplier:
        ``U_b / U_f`` (2.0 standard).
    """

    model: TransformerConfig
    stages: Tuple[StagePlatform, ...]
    inter_stage_link: LinkSpec
    layer_assignment: Tuple[int, ...]
    precision: PrecisionPolicy = MIXED_FP16
    backward_multiplier: float = 2.0

    def __post_init__(self) -> None:
        require_finite_fields(self)
        if not self.stages:
            raise ConfigurationError("need at least one stage")
        if len(self.layer_assignment) != len(self.stages):
            raise MappingError(
                f"{len(self.layer_assignment)} layer counts for "
                f"{len(self.stages)} stages")
        if any(count < 1 for count in self.layer_assignment):
            raise MappingError(
                f"every stage needs at least one layer, got "
                f"{self.layer_assignment}")
        if sum(self.layer_assignment) != self.model.n_layers:
            raise MappingError(
                f"layer assignment {self.layer_assignment} sums to "
                f"{sum(self.layer_assignment)}, model has "
                f"{self.model.n_layers} layers")

    @property
    def n_stages(self) -> int:
        """Pipeline depth."""
        return len(self.stages)

    @property
    def n_accelerators(self) -> int:
        """Total accelerators across all stages."""
        return sum(stage.tp_degree for stage in self.stages)

    def with_assignment(self,
                        layer_assignment: Sequence[int]
                        ) -> "HeterogeneousPipeline":
        """A copy with a different layer split."""
        return replace(self,
                       layer_assignment=tuple(layer_assignment))


def even_assignment(n_layers: int, n_stages: int) -> Tuple[int, ...]:
    """Split layers as evenly as integerly possible (the naive split a
    homogeneous-pipeline runtime would use)."""
    if n_stages < 1:
        raise ConfigurationError(
            f"n_stages must be >= 1, got {n_stages}")
    if n_layers < n_stages:
        raise MappingError(
            f"cannot give each of {n_stages} stages a layer from "
            f"{n_layers}")
    base = n_layers // n_stages
    remainder = n_layers % n_stages
    return tuple(base + (1 if index < remainder else 0)
                 for index in range(n_stages))
