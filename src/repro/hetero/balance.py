"""Layer balancing across heterogeneous pipeline stages.

An even layer split makes the slowest hardware the bottleneck; the
right split gives each stage work proportional to its speed.
:func:`balance_layers` computes the proportional split (largest-
remainder rounding, every stage keeps at least one layer), and
:func:`rebalance` applies it to a pipeline.  The tests assert the
balanced split never loses to the even split and recovers the ideal
proportional makespan within rounding.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError, MappingError
from repro.hetero.model import estimate_batch_time
from repro.hetero.stages import HeterogeneousPipeline, StagePlatform


def balance_layers(n_layers: int, stages: Sequence[StagePlatform],
                   microbatch_size: float = 8.0) -> Tuple[int, ...]:
    """Assign layers to stages proportionally to stage speed.

    Speeds are evaluated at ``microbatch_size`` through each stage's
    own efficiency fit, so a stage that runs small microbatches poorly
    receives fewer layers.  Uses largest-remainder rounding and
    guarantees one layer per stage.
    """
    if not stages:
        raise ConfigurationError("need at least one stage")
    if n_layers < len(stages):
        raise MappingError(
            f"cannot balance {n_layers} layers over "
            f"{len(stages)} stages")
    speeds = [stage.speed_at(microbatch_size) for stage in stages]
    total_speed = sum(speeds)
    ideal = [n_layers * speed / total_speed for speed in speeds]

    floors = [max(1, int(value)) for value in ideal]
    # Largest-remainder distribution of the leftover layers.
    assigned = sum(floors)
    remainders = sorted(
        range(len(stages)),
        key=lambda index: ideal[index] - int(ideal[index]),
        reverse=True)
    counts: List[int] = list(floors)
    index = 0
    while assigned < n_layers:
        counts[remainders[index % len(stages)]] += 1
        assigned += 1
        index += 1
    while assigned > n_layers:
        # floors over-assigned (possible when many 1-minimums): trim the
        # stages furthest above their ideal share, never below 1.
        victim = max((i for i in range(len(stages)) if counts[i] > 1),
                     key=lambda i: counts[i] - ideal[i])
        counts[victim] -= 1
        assigned -= 1
    return tuple(counts)


def rebalance(pipeline: HeterogeneousPipeline,
              microbatch_size: float = 8.0) -> HeterogeneousPipeline:
    """The same pipeline with a speed-proportional layer split."""
    assignment = balance_layers(pipeline.model.n_layers,
                                pipeline.stages, microbatch_size)
    return pipeline.with_assignment(assignment)


def balancing_gain(pipeline: HeterogeneousPipeline,
                   n_microbatches: int,
                   microbatch_size: int) -> float:
    """Speedup of the balanced split over the pipeline's current one
    (>= 1 when balancing helps)."""
    current = estimate_batch_time(pipeline, n_microbatches,
                                  microbatch_size)
    balanced = estimate_batch_time(
        rebalance(pipeline, microbatch_size), n_microbatches,
        microbatch_size)
    return current / balanced
