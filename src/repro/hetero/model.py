"""Performance estimation for heterogeneous pipelines.

Two estimators over a :class:`~repro.hetero.stages.HeterogeneousPipeline`:

- :func:`stage_step_times` + :func:`estimate_batch_time` — the
  analytical path: per-stage per-microbatch step times (compute at the
  stage's own efficiency + its TP all-reduce + the boundary transfer),
  composed with the GPipe makespan bound for *heterogeneous* stages,
  ``sum(steps) + (M - 1) * max(step)``.
- :func:`simulate_batch` — the discrete-event path, running the exact
  schedule with :class:`~repro.pipeline.simulator.HeterogeneousWorkload`.

The two agree to within the fill/drain approximation; the tests pin
that agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.operations import build_operations
from repro.errors import ConfigurationError, require_finite_fields
from repro.hardware.precision import precision_passes
from repro.hetero.stages import HeterogeneousPipeline, StagePlatform
from repro.parallelism.topology import RING
from repro.units import Seconds
from repro.pipeline.simulator import (
    HeterogeneousWorkload,
    PipelineResult,
    simulate_pipeline,
)


@dataclass(frozen=True)
class StageTimes:
    """Per-microbatch timing of one heterogeneous stage."""

    forward_s: Seconds
    backward_s: Seconds
    comm_s: Seconds


    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def step_s(self) -> Seconds:
        """One full forward+backward step through the stage."""
        return self.forward_s + self.backward_s


def stage_step_times(pipeline: HeterogeneousPipeline,
                     microbatch_size: int) -> List[StageTimes]:
    """Per-stage, per-microbatch forward/backward/boundary times."""
    if microbatch_size < 1:
        raise ConfigurationError(
            f"microbatch_size must be >= 1, got {microbatch_size}")
    model = pipeline.model
    operations = build_operations(model, microbatch_size,
                                  include_embeddings=False)
    per_layer = operations.layers  # index 0.. L-1
    times: List[StageTimes] = []
    layer_cursor = 0
    for stage, n_layers in zip(pipeline.stages,
                               pipeline.layer_assignment):
        layers = per_layer[layer_cursor:layer_cursor + n_layers]
        layer_cursor += n_layers
        forward = _stage_forward_time(stage, layers, pipeline,
                                      microbatch_size)
        backward = forward * pipeline.backward_multiplier
        boundary_bits = (microbatch_size * model.sequence_length
                         * model.hidden_size
                         * pipeline.precision.activation_bits)
        comm = pipeline.inter_stage_link.transfer_time(boundary_bits)
        times.append(StageTimes(forward_s=forward, backward_s=backward,
                                comm_s=comm))
    return times


def _stage_forward_time(stage: StagePlatform, layers,
                        pipeline: HeterogeneousPipeline,
                        microbatch_size: int) -> Seconds:
    """Forward time of one microbatch through one stage's layers."""
    precision = pipeline.precision
    accelerator = stage.accelerator
    mac_passes = precision_passes(precision.mac_operand_bits,
                                  accelerator.mac_fu_bits)
    nonlin_passes = precision_passes(precision.nonlinear_bits,
                                     accelerator.nonlinear_fu_bits)
    speed = stage.speed_at(microbatch_size)
    total = 0.0
    for layer in layers:
        total += layer.mac_flops * mac_passes / speed
        total += (layer.nonlinear_ops * nonlin_passes
                  / (accelerator.peak_nonlinear_ops_per_s
                     * stage.tp_degree))
        if stage.tp_degree > 1 and stage.intra_link is not None:
            n_act = 2.0 * microbatch_size \
                * pipeline.model.sequence_length \
                * pipeline.model.hidden_size
            total += RING.latency_term(stage.intra_link.latency_s,
                                       stage.tp_degree)
            total += RING.volume_term(
                n_act, precision.activation_bits,
                stage.intra_link.bandwidth_bits_per_s, stage.tp_degree)
    return total


def estimate_batch_time(pipeline: HeterogeneousPipeline,
                        n_microbatches: int,
                        microbatch_size: int) -> Seconds:
    """Analytical GPipe makespan for heterogeneous stages.

    ``sum over stages of (step + boundary) + (M - 1) * max(step +
    boundary)`` — one wave fills the pipe, then the slowest stage paces
    the remaining ``M - 1`` microbatches.  Exact for GPipe schedules
    when the slowest stage is the bottleneck throughout.
    """
    if n_microbatches < 1:
        raise ConfigurationError(
            f"n_microbatches must be >= 1, got {n_microbatches}")
    times = stage_step_times(pipeline, microbatch_size)
    step_with_comm = [t.step_s + 2.0 * t.comm_s for t in times]
    return sum(step_with_comm) \
        + (n_microbatches - 1) * max(step_with_comm)


def simulate_batch(pipeline: HeterogeneousPipeline,
                   n_microbatches: int,
                   microbatch_size: int,
                   schedule: str = "gpipe") -> PipelineResult:
    """Discrete-event simulation of one batch on the heterogeneous
    pipeline (the exact counterpart of :func:`estimate_batch_time`)."""
    times = stage_step_times(pipeline, microbatch_size)
    workload = HeterogeneousWorkload(
        forward_times=tuple(t.forward_s for t in times),
        backward_times=tuple(t.backward_s for t in times),
        comm_time=max(t.comm_s for t in times),
    )
    return simulate_pipeline(workload,
                             n_stages=pipeline.n_stages,
                             n_microbatches=n_microbatches,
                             schedule=schedule)


def bottleneck_stage(pipeline: HeterogeneousPipeline,
                     microbatch_size: int) -> Tuple[int, StageTimes]:
    """(index, times) of the stage pacing the pipeline."""
    times = stage_step_times(pipeline, microbatch_size)
    index = max(range(len(times)), key=lambda i: times[i].step_s)
    return index, times[index]
