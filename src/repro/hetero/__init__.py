"""Heterogeneous-accelerator pipelines (the paper's declared extension).

Describe a pipeline whose stages run on different accelerator
generations, estimate its batch time analytically and by discrete-event
simulation, and balance layers proportionally to stage speed.
"""

from repro.hetero.balance import balance_layers, balancing_gain, rebalance
from repro.hetero.model import (
    StageTimes,
    bottleneck_stage,
    estimate_batch_time,
    simulate_batch,
    stage_step_times,
)
from repro.hetero.stages import (
    HeterogeneousPipeline,
    StagePlatform,
    even_assignment,
)

__all__ = [
    "StagePlatform",
    "HeterogeneousPipeline",
    "even_assignment",
    "StageTimes",
    "stage_step_times",
    "estimate_batch_time",
    "simulate_batch",
    "bottleneck_stage",
    "balance_layers",
    "rebalance",
    "balancing_gain",
]
