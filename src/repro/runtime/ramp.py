"""Batch-size ramp schedules.

Large-model recipes do not train at the full batch from step one:
GPT-3-style schedules ramp the global batch linearly over the first few
billion tokens (small batches early for optimization stability, large
batches late for throughput).  Because AMPeD's per-batch time depends
on the batch size through the microbatch efficiency, the ramp changes
total wall-clock — this module integrates the model over a ramp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.model import AMPeD
from repro.units import Seconds
from repro.errors import ConfigurationError, require_finite_fields


@dataclass(frozen=True)
class BatchSizeRamp:
    """A staged linear batch-size ramp.

    Parameters
    ----------
    initial_batch:
        Global batch at the start of training.
    full_batch:
        Target global batch after the ramp.
    ramp_tokens:
        Tokens consumed while ramping (GPT-3 used 4-12B).
    n_stages:
        The continuous ramp is discretized into this many equal-token
        stages with linearly interpolated batch sizes (AMPeD evaluates
        one batch size per stage).
    """

    initial_batch: int
    full_batch: int
    ramp_tokens: float
    n_stages: int = 8

    def __post_init__(self) -> None:
        require_finite_fields(self)
        if self.initial_batch < 1:
            raise ConfigurationError(
                f"initial_batch must be >= 1, got {self.initial_batch}")
        if self.full_batch < self.initial_batch:
            raise ConfigurationError(
                f"full_batch ({self.full_batch}) must be >= "
                f"initial_batch ({self.initial_batch})")
        if self.ramp_tokens < 0:
            raise ConfigurationError(
                f"ramp_tokens must be non-negative, got "
                f"{self.ramp_tokens}")
        if self.n_stages < 1:
            raise ConfigurationError(
                f"n_stages must be >= 1, got {self.n_stages}")

    def stages(self, total_tokens: float) -> List[Tuple[int, float]]:
        """(batch_size, tokens) stages covering ``total_tokens``.

        The ramp's tokens are split into ``n_stages`` equal slices with
        interpolated batch sizes; the remainder runs at the full batch.
        """
        if total_tokens <= 0:
            raise ConfigurationError(
                f"total_tokens must be positive, got {total_tokens}")
        ramp_tokens = min(self.ramp_tokens, total_tokens)
        result: List[Tuple[int, float]] = []
        per_stage = ramp_tokens / self.n_stages
        if per_stage > 0 and self.full_batch > self.initial_batch:
            for index in range(self.n_stages):
                fraction = (index + 0.5) / self.n_stages
                batch = round(self.initial_batch
                              + fraction * (self.full_batch
                                            - self.initial_batch))
                result.append((max(1, batch), per_stage))
        else:
            ramp_tokens = 0.0
        remaining = total_tokens - ramp_tokens
        if remaining > 0:
            result.append((self.full_batch, remaining))
        return result


def ramped_training_time(amped: AMPeD, ramp: BatchSizeRamp,
                         total_tokens: float) -> Seconds:
    """Wall-clock seconds for a run under a batch-size ramp.

    Each stage is evaluated at its own batch size (efficiency included);
    stages whose batch the mapping cannot run (microbatch below one
    sequence) re-raise the underlying mapping error — a ramp that dips
    below the mapping's granularity is a real deployment bug.
    """
    seconds = 0.0
    sequence_tokens = amped.model.sequence_length
    for batch, tokens in ramp.stages(total_tokens):
        batch_time = amped.estimate_batch(batch).total
        n_batches = tokens / (batch * sequence_tokens)
        seconds += batch_time * n_batches
    return seconds


def ramp_overhead(amped: AMPeD, ramp: BatchSizeRamp,
                  total_tokens: float) -> float:
    """Fractional slowdown of the ramped run over running the full
    batch throughout (>= 0 when small batches are less efficient)."""
    ramped = ramped_training_time(amped, ramp, total_tokens)
    flat = ramped_training_time(
        amped,
        BatchSizeRamp(initial_batch=ramp.full_batch,
                      full_batch=ramp.full_batch, ramp_tokens=0.0),
        total_tokens)
    return ramped / flat - 1.0
