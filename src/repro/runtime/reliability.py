"""Failure-aware runtime inflation (Daly's model).

A 1024-accelerator system with a 5-year per-device MTBF fails every
~1.8 days; a month-long run *will* be interrupted.  With periodic
checkpoints every ``tau`` and failures at system rate ``1/M``, the
expected wall-clock inflates by three terms: checkpoint writes, lost
work since the last checkpoint (half an interval on average), and
restart time:

    inflation ~ delta/tau + (tau/2 + R) / M

This module composes that with AMPeD: take a clean training estimate,
a checkpoint spec and a failure model, and produce the expected
campaign wall-clock — at the Young/Daly-optimal interval or any other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError, require_finite_fields
from repro.runtime.checkpoint import (
    CheckpointSpec,
    checkpoint_overhead_fraction,
    young_daly_interval,
)
from repro.units import SECONDS_PER_HOUR, seconds_to_days


@dataclass(frozen=True)
class FailureModel:
    """System-level failure behavior.

    Parameters
    ----------
    device_mtbf_hours:
        Mean time between failures of one accelerator (including its
        host share); cluster operators report 40k-90k hours.
    n_devices:
        Devices whose failures interrupt the job (system MTBF =
        device MTBF / n).
    """

    device_mtbf_hours: float
    n_devices: int

    def __post_init__(self) -> None:
        require_finite_fields(self)
        if self.device_mtbf_hours <= 0:
            raise ConfigurationError(
                f"device_mtbf_hours must be positive, got "
                f"{self.device_mtbf_hours}")
        if self.n_devices < 1:
            raise ConfigurationError(
                f"n_devices must be >= 1, got {self.n_devices}")

    @property
    def system_mtbf_seconds(self) -> float:
        """Mean time between job interruptions."""
        return (self.device_mtbf_hours * SECONDS_PER_HOUR
                / self.n_devices)


@dataclass(frozen=True)
class CampaignEstimate:
    """A clean estimate inflated by checkpoint and failure overheads."""

    clean_seconds: float
    checkpoint_interval_s: float
    checkpoint_overhead: float
    failure_overhead: float
    expected_failures: float


    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def total_overhead(self) -> float:
        """Combined fractional inflation."""
        return self.checkpoint_overhead + self.failure_overhead

    @property
    def expected_seconds(self) -> float:
        """Expected campaign wall-clock."""
        return self.clean_seconds * (1.0 + self.total_overhead)

    @property
    def expected_days(self) -> float:
        """Expected campaign length in days."""
        return seconds_to_days(self.expected_seconds)


def campaign_estimate(clean_seconds: float,
                      checkpoint: CheckpointSpec,
                      failures: FailureModel,
                      interval_seconds: Optional[float] = None
                      ) -> CampaignEstimate:
    """Inflate a clean training time by checkpoint + failure overheads.

    ``interval_seconds`` defaults to the Young/Daly optimum for the
    given checkpoint cost and system MTBF.
    """
    if clean_seconds <= 0:
        raise ConfigurationError(
            f"clean_seconds must be positive, got {clean_seconds}")
    mtbf = failures.system_mtbf_seconds
    if interval_seconds is None:
        interval_seconds = young_daly_interval(
            checkpoint.write_seconds, mtbf)
    if interval_seconds <= 0:
        raise ConfigurationError(
            f"interval_seconds must be positive, got "
            f"{interval_seconds}")

    ckpt_overhead = checkpoint_overhead_fraction(
        checkpoint.write_seconds, interval_seconds)
    # per failure: half an interval of lost work plus the restart
    per_failure = interval_seconds / 2.0 + checkpoint.restart_seconds
    failure_overhead = per_failure / mtbf
    expected_failures = clean_seconds * (1.0 + ckpt_overhead) / mtbf
    return CampaignEstimate(
        clean_seconds=clean_seconds,
        checkpoint_interval_s=interval_seconds,
        checkpoint_overhead=ckpt_overhead,
        failure_overhead=failure_overhead,
        expected_failures=expected_failures,
    )
