"""Checkpointing overhead and the Young/Daly optimal interval.

At thousand-accelerator scale, failures are routine and training
checkpoints constantly.  Each checkpoint stalls training while the
model state drains to storage; checkpointing too often wastes time
writing, too rarely wastes time recomputing after failures.  The
classic Young/Daly result gives the optimal interval

    t_opt = sqrt(2 * checkpoint_cost * MTBF)

which this module implements along with the resulting overhead
fractions.  Used by :mod:`repro.runtime.reliability` to inflate AMPeD
estimates into realistic campaign wall-clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError, require_finite_fields
from repro.hardware.precision import PrecisionPolicy
from repro.transformer.config import TransformerConfig
from repro.transformer.params import total_parameters
from repro.units import BITS_PER_BYTE


@dataclass(frozen=True)
class CheckpointSpec:
    """What one checkpoint costs.

    Parameters
    ----------
    write_seconds:
        Stall while the model state drains to storage (training paused;
        asynchronous checkpointing can shrink this toward the marginal
        staging cost).
    restart_seconds:
        Time to load the last checkpoint and rebuild state after a
        failure (job re-queue excluded).
    """

    write_seconds: float
    restart_seconds: float = 0.0

    def __post_init__(self) -> None:
        require_finite_fields(self)
        if self.write_seconds <= 0:
            raise ConfigurationError(
                f"write_seconds must be positive, got "
                f"{self.write_seconds}")
        if self.restart_seconds < 0:
            raise ConfigurationError(
                f"restart_seconds must be non-negative, got "
                f"{self.restart_seconds}")


def checkpoint_bytes(model: TransformerConfig,
                     precision: PrecisionPolicy,
                     optimizer_bytes_per_param: float = 12.0) -> float:
    """Bytes a full training checkpoint holds: parameters at training
    precision plus optimizer state."""
    if optimizer_bytes_per_param < 0:
        raise ConfigurationError(
            f"optimizer_bytes_per_param must be non-negative, got "
            f"{optimizer_bytes_per_param}")
    params = total_parameters(model)
    return params * (precision.parameter_bits / BITS_PER_BYTE
                     + optimizer_bytes_per_param)


def checkpoint_write_seconds(model: TransformerConfig,
                             precision: PrecisionPolicy,
                             storage_bandwidth_bits_per_s: float,
                             parallel_writers: int = 1) -> float:
    """Stall time for one checkpoint over ``parallel_writers`` ranks
    sharing the aggregate storage bandwidth (sharded checkpoints write
    concurrently, so the wall-clock is the aggregate-volume time)."""
    if storage_bandwidth_bits_per_s <= 0:
        raise ConfigurationError(
            f"storage bandwidth must be positive, got "
            f"{storage_bandwidth_bits_per_s}")
    if parallel_writers < 1:
        raise ConfigurationError(
            f"parallel_writers must be >= 1, got {parallel_writers}")
    bits = checkpoint_bytes(model, precision) * BITS_PER_BYTE
    return bits / (storage_bandwidth_bits_per_s * parallel_writers)


def young_daly_interval(checkpoint_seconds: float,
                        mtbf_seconds: float) -> float:
    """The Young/Daly optimal checkpoint interval
    ``sqrt(2 * delta * MTBF)`` (first-order optimum; valid while the
    interval stays well below the MTBF)."""
    if checkpoint_seconds <= 0:
        raise ConfigurationError(
            f"checkpoint_seconds must be positive, got "
            f"{checkpoint_seconds}")
    if mtbf_seconds <= 0:
        raise ConfigurationError(
            f"mtbf_seconds must be positive, got {mtbf_seconds}")
    return math.sqrt(2.0 * checkpoint_seconds * mtbf_seconds)


def checkpoint_overhead_fraction(checkpoint_seconds: float,
                                 interval_seconds: float) -> float:
    """Fraction of wall-clock spent writing checkpoints at a fixed
    interval (``delta / (tau + delta)``)."""
    if interval_seconds <= 0:
        raise ConfigurationError(
            f"interval_seconds must be positive, got "
            f"{interval_seconds}")
    if checkpoint_seconds < 0:
        raise ConfigurationError(
            f"checkpoint_seconds must be non-negative, got "
            f"{checkpoint_seconds}")
    return checkpoint_seconds / (interval_seconds + checkpoint_seconds)
