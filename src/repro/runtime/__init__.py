"""Production-run realism on top of AMPeD's clean estimates:
batch-size ramps, checkpointing (Young/Daly), failure inflation."""

from repro.runtime.checkpoint import (
    CheckpointSpec,
    checkpoint_bytes,
    checkpoint_overhead_fraction,
    checkpoint_write_seconds,
    young_daly_interval,
)
from repro.runtime.ramp import (
    BatchSizeRamp,
    ramp_overhead,
    ramped_training_time,
)
from repro.runtime.reliability import (
    CampaignEstimate,
    FailureModel,
    campaign_estimate,
)

__all__ = [
    "BatchSizeRamp",
    "ramped_training_time",
    "ramp_overhead",
    "CheckpointSpec",
    "checkpoint_bytes",
    "checkpoint_write_seconds",
    "young_daly_interval",
    "checkpoint_overhead_fraction",
    "FailureModel",
    "CampaignEstimate",
    "campaign_estimate",
]
