"""Transformer descriptions and operation counting.

This package turns a transformer architecture into the countable
quantities AMPeD consumes: per-sublayer MAC and non-linear operation
counts (Eq. 2), per-layer parameter counts (Eqs. 10-12), and aggregate
model FLOPs for the TFLOP/s/GPU metric.
"""

from repro.transformer.config import MoEConfig, TransformerConfig
from repro.transformer.layers import (
    SublayerOps,
    attention_sublayer,
    embedding_sublayer,
    layer_sublayers,
    logits_sublayer,
    mlp_sublayer,
    moe_ffn_sublayer,
)
from repro.transformer.params import (
    active_parameters_per_token,
    dense_layer_parameters,
    flops_per_token,
    layer_parameters,
    model_flops_per_batch,
    total_parameters,
)
from repro.transformer.scaling_laws import (
    CHINCHILLA_TOKENS_PER_PARAMETER,
    chinchilla_optimal_tokens,
    overtraining_ratio,
    training_flops_budget,
)
from repro.transformer.zoo import (
    GLAM_1_2T,
    GPIPE_T24,
    GPT3_175B,
    MEGATRON_145B,
    MEGATRON_310B,
    MEGATRON_530B,
    MEGATRON_1T,
    MINGPT_85M,
    MINGPT_PP,
    MODELS,
    get_model,
)

__all__ = [
    "TransformerConfig",
    "MoEConfig",
    "SublayerOps",
    "attention_sublayer",
    "mlp_sublayer",
    "moe_ffn_sublayer",
    "embedding_sublayer",
    "logits_sublayer",
    "layer_sublayers",
    "layer_parameters",
    "dense_layer_parameters",
    "total_parameters",
    "active_parameters_per_token",
    "model_flops_per_batch",
    "flops_per_token",
    "chinchilla_optimal_tokens",
    "training_flops_budget",
    "overtraining_ratio",
    "CHINCHILLA_TOKENS_PER_PARAMETER",
    "MODELS",
    "get_model",
    "MINGPT_85M",
    "MINGPT_PP",
    "MEGATRON_145B",
    "MEGATRON_310B",
    "MEGATRON_530B",
    "MEGATRON_1T",
    "GPT3_175B",
    "GPIPE_T24",
    "GLAM_1_2T",
]
