"""Transformer architecture description.

AMPeD consumes a transformer as a bag of countable quantities: layers,
hidden size, attention heads, sequence length, vocabulary, feed-forward
width, and — for Mixture-of-Experts models — how many experts exist and
which layers carry them.  :class:`TransformerConfig` captures exactly
those knobs; the operation counting lives in
:mod:`repro.transformer.layers`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigurationError, require_finite


@dataclass(frozen=True)
class MoEConfig:
    """Mixture-of-Experts structure (GShard/GLaM style, §II-B4).

    Parameters
    ----------
    n_experts:
        Experts per MoE layer (split across workers).
    expert_interval:
        Every ``expert_interval``-th transformer layer carries experts
        (GLaM uses 2: MoE in every other layer).
    top_k:
        Experts activated per token by the gating network; compute per
        token scales with ``top_k`` while parameters scale with
        ``n_experts``.
    capacity_factor:
        Head-room multiplier on the per-expert token budget; inflates the
        all-to-all volume (1.0 means perfect load balance, matching the
        paper's assumption).
    """

    n_experts: int
    expert_interval: int = 2
    top_k: int = 2
    capacity_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.n_experts < 2:
            raise ConfigurationError(
                f"n_experts must be >= 2, got {self.n_experts}")
        if self.expert_interval < 1:
            raise ConfigurationError(
                f"expert_interval must be >= 1, got {self.expert_interval}")
        if not 1 <= self.top_k <= self.n_experts:
            raise ConfigurationError(
                f"top_k must be in [1, n_experts], got {self.top_k}")
        require_finite("capacity_factor", self.capacity_factor)
        if self.capacity_factor < 1.0:
            raise ConfigurationError(
                f"capacity_factor must be >= 1.0, got {self.capacity_factor}")


@dataclass(frozen=True)
class TransformerConfig:
    """A decoder-style transformer language model.

    Parameters
    ----------
    name:
        Identifier used in reports.
    n_layers:
        ``L``, transformer blocks.
    hidden_size:
        ``h``, embedding / hidden-state width.
    n_heads:
        Attention heads per layer (FLOP-neutral, but needed for the
        softmax operation count and head-divisibility checks under TP).
    sequence_length:
        ``s``, tokens per sample.
    vocab_size:
        ``V``, output vocabulary.
    ffn_hidden_size:
        Feed-forward inner width; defaults to ``4h`` when omitted.
    moe:
        Optional Mixture-of-Experts structure; ``None`` means dense.
    tied_embeddings:
        Whether input and output embeddings share weights (affects the
        parameter count only).
    """

    name: str
    n_layers: int
    hidden_size: int
    n_heads: int
    sequence_length: int
    vocab_size: int
    ffn_hidden_size: Optional[int] = None
    moe: Optional[MoEConfig] = None
    tied_embeddings: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("model name must be non-empty")
        for field_name in ("n_layers", "hidden_size", "n_heads",
                           "sequence_length", "vocab_size"):
            value = getattr(self, field_name)
            # isinstance(int) already excludes float nan/inf, but the
            # explicit guard keeps the contract obvious and survives a
            # future loosening of the type check (e.g. numpy scalars).
            require_finite(field_name, value)
            if not isinstance(value, int) or value < 1:
                raise ConfigurationError(
                    f"{field_name} must be a positive integer, got {value!r}")
        if self.hidden_size % self.n_heads != 0:
            raise ConfigurationError(
                f"hidden_size ({self.hidden_size}) must be divisible by "
                f"n_heads ({self.n_heads})")
        if self.ffn_hidden_size is not None and self.ffn_hidden_size < 1:
            raise ConfigurationError(
                f"ffn_hidden_size must be positive, got "
                f"{self.ffn_hidden_size}")

    @property
    def ffn_size(self) -> int:
        """Feed-forward inner width (``4h`` unless configured)."""
        if self.ffn_hidden_size is not None:
            return self.ffn_hidden_size
        return 4 * self.hidden_size

    @property
    def head_dim(self) -> int:
        """Per-head projection width ``h / n_heads``."""
        return self.hidden_size // self.n_heads

    @property
    def uses_moe(self) -> bool:
        """True when the model has Mixture-of-Experts layers."""
        return self.moe is not None

    @property
    def n_moe_layers(self) -> int:
        """How many of the ``L`` layers carry experts."""
        if self.moe is None:
            return 0
        return self.n_layers // self.moe.expert_interval

    def is_moe_layer(self, layer_index: int) -> bool:
        """Whether layer ``layer_index`` (0-based) carries experts.

        With ``expert_interval = k``, layers ``k-1, 2k-1, ...`` are MoE
        layers, giving exactly ``L // k`` expert layers.
        """
        if not 0 <= layer_index < self.n_layers:
            raise ConfigurationError(
                f"layer_index must be in [0, {self.n_layers}), "
                f"got {layer_index}")
        if self.moe is None:
            return False
        return (layer_index + 1) % self.moe.expert_interval == 0

    def without_moe(self) -> "TransformerConfig":
        """A dense version of this model (paper §IV: 'AMPeD is
        parameterizable enough to turn off this feature')."""
        if self.moe is None:
            return self
        return replace(self, name=f"{self.name} (dense)", moe=None)

    def scaled(self, n_layers: int = None,
               hidden_size: int = None) -> "TransformerConfig":
        """A copy with replacement depth/width, for sweep studies."""
        return replace(
            self,
            n_layers=n_layers if n_layers is not None else self.n_layers,
            hidden_size=(hidden_size if hidden_size is not None
                         else self.hidden_size),
        )
