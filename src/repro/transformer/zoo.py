"""Model zoo: every transformer the paper trains, validates or explores.

The Megatron entries follow Table 1 of Narayanan et al. (SC'21), the
source of the paper's Table II; their ``12 L h^2`` layer parameters land
on the advertised sizes (145B/310B/530B/1T).

The minGPT-PP entry reproduces the architecture the paper *states*
(16 layers, 8 heads, hidden 1024); note the paper calls this 1.24B
parameters while the standard count gives ~0.25B including embeddings —
we encode the stated architecture and report our own count (DESIGN.md,
"known ambiguities").
"""

from __future__ import annotations

from repro.transformer.config import MoEConfig, TransformerConfig

#: minGPT (85M) as trained for the Fig. 2a DP validation: 12 layers,
#: 12 heads, hidden 768.
MINGPT_85M = TransformerConfig(
    name="minGPT-85M",
    n_layers=12,
    hidden_size=768,
    n_heads=12,
    sequence_length=1024,
    vocab_size=50257,
)

#: minGPT variant for the Fig. 2b PP validation: 16 layers (to feed a
#: 16-deep pipeline), 8 heads, hidden 1024, Wikipedia corpus.
MINGPT_PP = TransformerConfig(
    name="minGPT-PP",
    n_layers=16,
    hidden_size=1024,
    n_heads=8,
    sequence_length=1024,
    vocab_size=50257,
)

#: Megatron GPT family (Narayanan et al. Table 1; the four largest are
#: the paper's Table II rows, the smaller ones complete the family for
#: scaling studies).
MEGATRON_1_7B = TransformerConfig(
    name="Megatron-1.7B",
    n_layers=24,
    hidden_size=2304,
    n_heads=24,
    sequence_length=2048,
    vocab_size=51200,
)

MEGATRON_3_6B = TransformerConfig(
    name="Megatron-3.6B",
    n_layers=30,
    hidden_size=3072,
    n_heads=32,
    sequence_length=2048,
    vocab_size=51200,
)

MEGATRON_7_5B = TransformerConfig(
    name="Megatron-7.5B",
    n_layers=36,
    hidden_size=4096,
    n_heads=32,
    sequence_length=2048,
    vocab_size=51200,
)

MEGATRON_18B = TransformerConfig(
    name="Megatron-18B",
    n_layers=40,
    hidden_size=6144,
    n_heads=48,
    sequence_length=2048,
    vocab_size=51200,
)

MEGATRON_39B = TransformerConfig(
    name="Megatron-39B",
    n_layers=48,
    hidden_size=8192,
    n_heads=64,
    sequence_length=2048,
    vocab_size=51200,
)

MEGATRON_76B = TransformerConfig(
    name="Megatron-76B",
    n_layers=60,
    hidden_size=10240,
    n_heads=80,
    sequence_length=2048,
    vocab_size=51200,
)

MEGATRON_145B = TransformerConfig(
    name="Megatron-145B",
    n_layers=80,
    hidden_size=12288,
    n_heads=96,
    sequence_length=2048,
    vocab_size=51200,
)

MEGATRON_310B = TransformerConfig(
    name="Megatron-310B",
    n_layers=96,
    hidden_size=16384,
    n_heads=128,
    sequence_length=2048,
    vocab_size=51200,
)

MEGATRON_530B = TransformerConfig(
    name="Megatron-530B",
    n_layers=105,
    hidden_size=20480,
    n_heads=128,
    sequence_length=2048,
    vocab_size=51200,
)

MEGATRON_1T = TransformerConfig(
    name="Megatron-1T",
    n_layers=128,
    hidden_size=25600,
    n_heads=160,
    sequence_length=2048,
    vocab_size=51200,
)

#: GPT-3 175B for the Fig. 2c batch-size saturation study.
GPT3_175B = TransformerConfig(
    name="GPT-3 175B",
    n_layers=96,
    hidden_size=12288,
    n_heads=96,
    sequence_length=2048,
    vocab_size=51200,
)

#: The 24-layer transformer of the GPipe validation (Table III).
GPIPE_T24 = TransformerConfig(
    name="GPipe-T24",
    n_layers=24,
    hidden_size=1024,
    n_heads=16,
    sequence_length=512,
    vocab_size=32000,
)

#: GLaM 1.2T (64 experts, MoE every other layer, top-2 gating) for the
#: Case Study III optical-substrate exploration.
GLAM_1_2T = TransformerConfig(
    name="GLaM-1.2T",
    n_layers=64,
    hidden_size=8192,
    n_heads=128,
    sequence_length=1024,
    vocab_size=256000,
    ffn_hidden_size=32768,
    moe=MoEConfig(n_experts=64, expert_interval=2, top_k=2),
)

#: Registry for CLI lookup.
MODELS = {
    "mingpt-85m": MINGPT_85M,
    "mingpt-pp": MINGPT_PP,
    "megatron-1.7b": MEGATRON_1_7B,
    "megatron-3.6b": MEGATRON_3_6B,
    "megatron-7.5b": MEGATRON_7_5B,
    "megatron-18b": MEGATRON_18B,
    "megatron-39b": MEGATRON_39B,
    "megatron-76b": MEGATRON_76B,
    "megatron-145b": MEGATRON_145B,
    "megatron-310b": MEGATRON_310B,
    "megatron-530b": MEGATRON_530B,
    "megatron-1t": MEGATRON_1T,
    "gpt3-175b": GPT3_175B,
    "gpipe-t24": GPIPE_T24,
    "glam-1.2t": GLAM_1_2T,
}


def get_model(name: str) -> TransformerConfig:
    """Look up a zoo model by registry key (case-insensitive)."""
    key = name.lower()
    if key not in MODELS:
        known = ", ".join(sorted(MODELS))
        raise KeyError(f"unknown model {name!r}; known models: {known}")
    return MODELS[key]
