"""Parameter counting and aggregate FLOP formulas.

Two consumers need parameter counts:

- Eq. 12's weight update time multiplies the per-layer weight count by
  the MAC throughput reciprocal;
- Eqs. 10-11's gradient all-reduce moves one gradient per weight.

The module also provides the standard ``12 L h^2``-style closed forms and
the model-FLOPs-per-token formula used to convert AMPeD's predicted batch
time into the TFLOP/s/GPU metric of Table II and Fig. 2c.
"""

from __future__ import annotations

from repro.transformer.config import TransformerConfig
from repro.transformer.layers import (
    attention_sublayer,
    embedding_sublayer,
    layer_sublayers,
    logits_sublayer,
    mlp_sublayer,
    moe_ffn_sublayer,
)


def layer_parameters(config: TransformerConfig, layer_index: int) -> float:
    """Trainable parameters in transformer layer ``layer_index``."""
    return sum(sub.parameters
               for sub in layer_sublayers(config, 1, layer_index))


def dense_layer_parameters(config: TransformerConfig) -> float:
    """Parameters of a dense (non-MoE) transformer layer,
    ``12 h^2 + O(h)`` for the standard ``f = 4h``."""
    return (attention_sublayer(config, 1).parameters
            + mlp_sublayer(config, 1).parameters)


def total_parameters(config: TransformerConfig,
                     include_embeddings: bool = True) -> float:
    """Trainable parameters of the whole model.

    For MoE models this is the *expanded* count including every expert
    (the number that makes GLaM 1.2T "1.2T"), not the per-token active
    parameters.
    """
    layers = sum(layer_parameters(config, layer)
                 for layer in range(config.n_layers))
    if not include_embeddings:
        return layers
    return (layers + embedding_sublayer(config, 1).parameters
            + logits_sublayer(config, 1).parameters)


def active_parameters_per_token(config: TransformerConfig) -> float:
    """Parameters that actually process one token.

    For dense models this equals :func:`total_parameters` without
    embeddings; for MoE models each token only visits ``top_k`` of the
    ``n_experts`` experts.
    """
    total = 0.0
    for layer in range(config.n_layers):
        attention = attention_sublayer(config, 1).parameters
        if config.is_moe_layer(layer):
            moe = config.moe
            expert = mlp_sublayer(config, 1).parameters
            gating = config.hidden_size * moe.n_experts
            total += attention + expert * moe.top_k + gating
        else:
            total += attention + mlp_sublayer(config, 1).parameters
    return total


def model_flops_per_batch(config: TransformerConfig, batch_size: int,
                          backward_multiplier: float = 2.0,
                          include_logits: bool = True) -> float:
    """Model FLOPs of one optimizer step at global batch ``batch_size``.

    Forward MAC FLOPs summed over layers (plus the vocabulary projection),
    with the backward pass costing ``backward_multiplier`` times the
    forward pass (the standard 2x: gradients w.r.t. both inputs and
    weights).  This is the numerator of the achieved-TFLOP/s metric:
    ``TFLOP/s/GPU = flops_per_batch / (batch_time * n_gpus)``.
    """
    forward = 0.0
    for layer in range(config.n_layers):
        forward += sum(sub.mac_flops
                       for sub in layer_sublayers(config, batch_size, layer))
    if include_logits:
        forward += logits_sublayer(config, batch_size).mac_flops
    return forward * (1.0 + backward_multiplier)


def flops_per_token(config: TransformerConfig,
                    backward_multiplier: float = 2.0) -> float:
    """Model FLOPs per trained token (``~ 6 x active parameters`` for
    dense models with ``s << h``)."""
    tokens = config.sequence_length
    return model_flops_per_batch(
        config, 1, backward_multiplier=backward_multiplier) / tokens


__all__ = [
    "layer_parameters",
    "dense_layer_parameters",
    "total_parameters",
    "active_parameters_per_token",
    "model_flops_per_batch",
    "flops_per_token",
    "moe_ffn_sublayer",
]
