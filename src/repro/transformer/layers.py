"""Per-sublayer operation counting.

Eq. 2 sums, over the sublayers ``i`` of a transformer layer ``l``, the
MAC operations ``N_MAC(l, i)`` and non-linear operations
``N_nonlin(l, i)``.  This module produces those counts for a *global
batch* of ``b`` sequences of ``s`` tokens — Eq. 1 later divides the
resulting compute time by ``N_TP * N_DP * N_PP``.

MAC counts are expressed in FLOPs (1 MAC = 2 FLOPs) so that the
Table IV accelerator rows reproduce vendor FP16 peaks (see DESIGN.md).

The non-linear coefficients (ops per element for layernorm, softmax,
GeLU) are approximations of what a fused kernel evaluates per element;
they are module-level constants so studies can judge their impact, and
they matter little in practice because non-linear time is orders of
magnitude below MAC time for realistic widths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError, require_finite_fields
from repro.transformer.config import TransformerConfig

#: Ops per element for a layer normalization (mean, variance, normalize,
#: scale, shift).
LAYERNORM_OPS_PER_ELEMENT = 5.0

#: Ops per element for a softmax (exponential, accumulation, divide).
SOFTMAX_OPS_PER_ELEMENT = 3.0

#: Ops per element for a tanh-approximated GeLU.
GELU_OPS_PER_ELEMENT = 8.0

#: Ops per element for a residual addition.
RESIDUAL_OPS_PER_ELEMENT = 1.0


@dataclass(frozen=True)
class SublayerOps:
    """Operation and size counts for one sublayer of one transformer layer.

    All counts are totals for a batch of ``b`` sequences (not per token).

    Attributes
    ----------
    name:
        Sublayer identifier ("attention", "mlp", "moe-ffn", ...).
    mac_flops:
        ``N_MAC(l, i)`` in FLOPs for the forward pass.
    nonlinear_ops:
        ``N_nonlin(l, i)`` for the forward pass.
    parameters:
        Trainable parameters held by the sublayer (drives Eq. 12's weight
        update and Eqs. 10-11's gradient volume).
    expert_parameters:
        The subset of ``parameters`` belonging to MoE experts.  Under
        expert parallelism each expert lives on one worker (not
        replicated across DP ranks), so these weights are excluded from
        the data-parallel gradient all-reduce volume.
    """

    name: str
    mac_flops: float
    nonlinear_ops: float
    parameters: float
    expert_parameters: float = 0.0

    def __post_init__(self) -> None:
        require_finite_fields(self)
        for field_name in ("mac_flops", "nonlinear_ops", "parameters",
                           "expert_parameters"):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(
                    f"{field_name} must be non-negative, got "
                    f"{getattr(self, field_name)}")
        if self.expert_parameters > self.parameters:
            raise ConfigurationError(
                f"expert_parameters ({self.expert_parameters}) exceeds "
                f"parameters ({self.parameters})")


def attention_sublayer(config: TransformerConfig, batch_size: int) -> SublayerOps:
    """Self-attention sublayer counts (pre-norm residual block).

    MAC FLOPs: QKV projections ``6bsh^2``, attention scores ``2bs^2h``,
    attention-weighted values ``2bs^2h``, output projection ``2bsh^2``.
    Non-linear: one layernorm over ``bsh`` elements, a softmax over
    ``b * n_heads * s^2`` logits, and the residual addition.
    """
    _check_batch(batch_size)
    b, s, h = batch_size, config.sequence_length, config.hidden_size
    mac = 6 * b * s * h * h + 2 * b * s * s * h + 2 * b * s * s * h \
        + 2 * b * s * h * h
    nonlinear = (b * s * h * LAYERNORM_OPS_PER_ELEMENT
                 + b * config.n_heads * s * s * SOFTMAX_OPS_PER_ELEMENT
                 + b * s * h * RESIDUAL_OPS_PER_ELEMENT)
    parameters = 4 * h * h + 4 * h  # QKV + output weights, biases
    return SublayerOps("attention", float(mac), float(nonlinear),
                       float(parameters))


def mlp_sublayer(config: TransformerConfig, batch_size: int) -> SublayerOps:
    """Dense feed-forward sublayer counts.

    MAC FLOPs: two matmuls ``h -> f`` and ``f -> h``, ``4bshf`` total
    (``16bsh^2`` for the standard ``f = 4h``).  Non-linear: layernorm,
    GeLU over the inner activation, residual.
    """
    _check_batch(batch_size)
    b, s, h = batch_size, config.sequence_length, config.hidden_size
    f = config.ffn_size
    mac = 2 * b * s * h * f + 2 * b * s * f * h
    nonlinear = (b * s * h * LAYERNORM_OPS_PER_ELEMENT
                 + b * s * f * GELU_OPS_PER_ELEMENT
                 + b * s * h * RESIDUAL_OPS_PER_ELEMENT)
    parameters = 2 * h * f + h + f  # two weight matrices + biases
    return SublayerOps("mlp", float(mac), float(nonlinear),
                       float(parameters))


def moe_ffn_sublayer(config: TransformerConfig, batch_size: int) -> SublayerOps:
    """Mixture-of-Experts feed-forward sublayer counts.

    Each token is routed to ``top_k`` experts, so per-token compute is
    ``top_k`` times a dense expert FFN, while parameters scale with the
    full expert count ``n_experts`` (the MoE premise, §II-B4).  The
    gating network adds an ``h x n_experts`` projection and a softmax
    over experts per token.
    """
    _check_batch(batch_size)
    if config.moe is None:
        raise ConfigurationError(
            f"model {config.name!r} has no MoE configuration")
    b, s, h = batch_size, config.sequence_length, config.hidden_size
    f = config.ffn_size
    moe = config.moe
    expert_mac = (2 * b * s * h * f + 2 * b * s * f * h) * moe.top_k
    gating_mac = 2 * b * s * h * moe.n_experts
    nonlinear = (b * s * h * LAYERNORM_OPS_PER_ELEMENT
                 + b * s * f * moe.top_k * GELU_OPS_PER_ELEMENT
                 + b * s * moe.n_experts * SOFTMAX_OPS_PER_ELEMENT
                 + b * s * h * RESIDUAL_OPS_PER_ELEMENT)
    expert_params = (2 * h * f + h + f) * moe.n_experts
    gating_params = h * moe.n_experts
    return SublayerOps("moe-ffn", float(expert_mac + gating_mac),
                       float(nonlinear),
                       float(expert_params + gating_params),
                       expert_parameters=float(expert_params))


def layer_sublayers(config: TransformerConfig, batch_size: int,
                    layer_index: int) -> List[SublayerOps]:
    """All sublayers of transformer layer ``layer_index`` (0-based)."""
    attention = attention_sublayer(config, batch_size)
    if config.is_moe_layer(layer_index):
        return [attention, moe_ffn_sublayer(config, batch_size)]
    return [attention, mlp_sublayer(config, batch_size)]


def embedding_sublayer(config: TransformerConfig,
                       batch_size: int) -> SublayerOps:
    """Input embedding + positional embedding.

    Embedding lookups are gathers, not MACs, so the MAC count is zero;
    parameters are ``Vh + sh``.
    """
    _check_batch(batch_size)
    b, s, h = batch_size, config.sequence_length, config.hidden_size
    parameters = config.vocab_size * h + s * h
    nonlinear = b * s * h * RESIDUAL_OPS_PER_ELEMENT  # token + position add
    return SublayerOps("embedding", 0.0, float(nonlinear),
                       float(parameters))


def logits_sublayer(config: TransformerConfig, batch_size: int) -> SublayerOps:
    """Output projection to vocabulary logits plus softmax.

    MAC FLOPs ``2bshV``; with tied embeddings the projection reuses the
    input embedding matrix and contributes no extra parameters.
    """
    _check_batch(batch_size)
    b, s, h = batch_size, config.sequence_length, config.hidden_size
    v = config.vocab_size
    mac = 2 * b * s * h * v
    nonlinear = (b * s * h * LAYERNORM_OPS_PER_ELEMENT  # final layernorm
                 + b * s * v * SOFTMAX_OPS_PER_ELEMENT)
    parameters = 0.0 if config.tied_embeddings else float(v * h)
    return SublayerOps("logits", float(mac), float(nonlinear), parameters)


def _check_batch(batch_size: int) -> None:
    if batch_size < 1:
        raise ConfigurationError(
            f"batch_size must be >= 1, got {batch_size}")
