"""Compute-optimal training-budget helpers.

The case studies need a corpus size to turn per-batch times into
training days; the paper does not state one (DESIGN.md assumes 300B
tokens for Case Study I).  These helpers provide principled defaults:
the Chinchilla compute-optimal rule (~20 training tokens per parameter,
Hoffmann et al.) and the corresponding FLOP budgets, so studies can ask
"how long would a compute-optimal run of this model take?" without
hand-picking token counts.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.transformer.config import TransformerConfig
from repro.transformer.params import (
    active_parameters_per_token,
    total_parameters,
)

#: Chinchilla's compute-optimal tokens-per-parameter ratio.
CHINCHILLA_TOKENS_PER_PARAMETER = 20.0


def chinchilla_optimal_tokens(model: TransformerConfig,
                              tokens_per_parameter: float =
                              CHINCHILLA_TOKENS_PER_PARAMETER) -> float:
    """Compute-optimal training tokens for ``model``.

    Uses *active* parameters per token, so Mixture-of-Experts models
    are budgeted by the compute they actually spend per token, not by
    their expanded parameter store.
    """
    if tokens_per_parameter <= 0:
        raise ConfigurationError(
            f"tokens_per_parameter must be positive, got "
            f"{tokens_per_parameter}")
    return active_parameters_per_token(model) * tokens_per_parameter


def training_flops_budget(model: TransformerConfig,
                          total_tokens: float = None) -> float:
    """Total training FLOPs: the classic ``6 N D`` estimate.

    ``N`` is active parameters per token, ``D`` the token count
    (Chinchilla-optimal when omitted).
    """
    if total_tokens is None:
        total_tokens = chinchilla_optimal_tokens(model)
    if total_tokens <= 0:
        raise ConfigurationError(
            f"total_tokens must be positive, got {total_tokens}")
    return 6.0 * active_parameters_per_token(model) * total_tokens


def overtraining_ratio(model: TransformerConfig,
                       total_tokens: float) -> float:
    """How far a token budget sits above (>1) or below (<1) the
    compute-optimal point — a sanity signal for study configurations."""
    optimal = chinchilla_optimal_tokens(model)
    if total_tokens <= 0:
        raise ConfigurationError(
            f"total_tokens must be positive, got {total_tokens}")
    return total_tokens / optimal


__all__ = [
    "CHINCHILLA_TOKENS_PER_PARAMETER",
    "chinchilla_optimal_tokens",
    "training_flops_budget",
    "overtraining_ratio",
    "total_parameters",
]
