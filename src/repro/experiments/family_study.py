"""Model-family study: achieved efficiency across Megatron sizes.

The published Megatron scaling study reports achieved TFLOP/s/GPU
staying roughly flat (within ~20%) from 1.7B to 1T parameters — the
point of combining the three parallelism types.  This study reproduces
that flatness with AMPeD: every family member is placed on a 512-GPU
slice of the Case Study I platform with its best explored mapping, and
the achieved TFLOP/s/GPU and model-FLOP utilization (MFU) are recorded.

The tests assert the headline: best-mapping utilization varies by less
than 2x across three decades of model size, with the small models
limited by per-GPU work and the large ones by pipeline bubbles and
communication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.model import AMPeD
from repro.hardware.catalog import megatron_a100_cluster
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.parallelism.spec import spec_from_totals
from repro.search.dse import best_mapping
from repro.transformer.params import total_parameters
from repro.transformer.zoo import get_model
from repro.errors import require_finite_fields
from repro.units import to_teraflops

#: The family, smallest to largest.
FAMILY_KEYS = ("megatron-1.7b", "megatron-3.6b", "megatron-7.5b",
               "megatron-18b", "megatron-39b", "megatron-76b",
               "megatron-145b")

FAMILY_BATCH = 2048
FAMILY_NODES = 64  # 512 A100s


@dataclass(frozen=True)
class FamilyPoint:
    """One model of the family under its best mapping."""

    model_key: str
    n_parameters: float
    mapping: str
    tflops_per_gpu: float
    mfu: float
    batch_time_s: float

    def __post_init__(self) -> None:
        require_finite_fields(self)


def run_family_study(model_keys: Sequence[str] = FAMILY_KEYS,
                     global_batch: int = FAMILY_BATCH,
                     n_nodes: int = FAMILY_NODES
                     ) -> List[FamilyPoint]:
    """Best-mapping achieved throughput for every family member."""
    system = megatron_a100_cluster(n_nodes=n_nodes)
    peak_tflops = to_teraflops(system.accelerator.peak_mac_flops_per_s)
    points = []
    for key in model_keys:
        model = get_model(key)
        template = AMPeD(
            model=model,
            system=system,
            parallelism=spec_from_totals(system, tp=8, dp=n_nodes),
            efficiency=CASE_STUDY_EFFICIENCY,
        )
        best = best_mapping(template, global_batch,
                            enforce_memory=True)
        winner = template.with_parallelism(best.parallelism)
        tflops = winner.achieved_tflops_per_gpu(global_batch)
        points.append(FamilyPoint(
            model_key=key,
            n_parameters=total_parameters(model),
            mapping=best.label,
            tflops_per_gpu=tflops,
            mfu=tflops / peak_tflops,
            batch_time_s=best.batch_time_s,
        ))
    return points
