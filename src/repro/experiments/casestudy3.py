"""Case Study III: optical communication substrates (Fig. 11).

Trains the GLaM 1.2T Mixture-of-Experts model on 3072 H100-class
accelerators at 8-bit precision, batch 8192, TP inside the node and DP
across nodes, and walks the paper's ladder of optical-substrate
optimizations:

- *reference* — 8 accelerators/node, NVLink intra, 8 NDR NICs.
- *Opt. 1* — same node, but every accelerator gets a dedicated optical
  fiber at its full off-chip bandwidth, bypassing the NICs (4x2
  substrate: all 8 accelerators sit on the substrate edge).
- *Opt. 2* — bigger substrates pack 16/32/48 accelerators per node
  (4x4 / 4x8 / 6x8); only edge accelerators get fibers, so node fiber
  counts are 12/20/24.  More intra-node TP means fewer DP replicas,
  larger per-replica batches and better microbatch efficiency.
- *Opt. 3* — future accelerators double/quadruple their off-chip
  bandwidth into the substrate (intra-node links and fibers scale
  together), on top of the 48-accelerator Opt. 2 node.

The paper's result: ~42% from Opt. 1, ~29% more from Opt. 2, and
+54%/+110% from Opt. 3 — almost 4x end to end with unchanged peak
compute.  The reproduction checks the ladder's monotonicity and the
end-to-end factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.breakdown import TrainingTimeBreakdown
from repro.errors import require_finite_fields
from repro.core.model import AMPeD
from repro.hardware.catalog import H100, glam_h100_reference
from repro.hardware.interconnect import NVLINK4, LinkSpec
from repro.hardware.node import NodeSpec
from repro.hardware.precision import FP8_TRAINING
from repro.hardware.system import SystemSpec
from repro.parallelism.microbatch import MicrobatchEfficiency
from repro.parallelism.spec import ParallelismSpec
from repro.transformer.zoo import GLAM_1_2T

#: Fig. 11's workload.
FIG11_GLOBAL_BATCH = 8192
FIG11_TOTAL_ACCELERATORS = 3072

#: (accelerators per node, fibers per node) for the Opt. 2 substrate
#: shapes: 4x2 (all edge), 4x4, 4x8, 6x8.
SUBSTRATE_SHAPES = {
    8: 8,
    16: 12,
    32: 20,
    48: 24,
}

#: Optical fiber latency (electrical-optical conversion at the edge).
FIBER_LATENCY_S = 1e-6

#: Efficiency fit for the GLaM runs — the same saturation profile as
#: Case Study I (MoE experts see only ``top_k / n_experts`` of each
#: microbatch, so efficiency keeps improving well past ub = 100).  This
#: steepness is what makes Opt. 2's larger nodes pay off: more TP means
#: fewer DP replicas, hence larger per-replica batches and better
#: utilization ("the effective minibatch size increases, hence the
#: accelerators compute more efficiently").
GLAM_EFFICIENCY = MicrobatchEfficiency(a=1.05, b=64.0, floor=0.15)

#: MoE all-to-all volume multiplier: top-2 gating dispatches two copies
#: of every token at GShard's default capacity factor of 2.0.
GLAM_MOE_VOLUME = 4.0


@dataclass(frozen=True)
class Fig11Bar:
    """One bar of Fig. 11."""

    label: str
    accelerators_per_node: int
    offchip_scale: float
    training_days_per_epoch: float
    breakdown: TrainingTimeBreakdown

    def __post_init__(self) -> None:
        require_finite_fields(self)

    def speedup_over(self, reference: "Fig11Bar") -> float:
        """Throughput gain over the reference bar."""
        return (reference.training_days_per_epoch
                / self.training_days_per_epoch)


def _largest_tp(node_size: int, n_heads: int) -> int:
    """TP degree for a substrate node: the whole node, as the paper does
    ("the increasing number of accelerators inside a node to exploit
    more tensor parallelism") — including 48, which does not divide
    GLaM's 128 heads evenly (a padded head split in practice)."""
    return node_size


def _build_system(accelerators_per_node: int, optical: bool,
                  offchip_scale: float) -> SystemSpec:
    """Assemble one Fig. 11 system variant."""
    accelerator = H100
    intra = NVLINK4
    if offchip_scale != 1.0:
        accelerator = accelerator.with_offchip_bandwidth_scaled(
            offchip_scale)
        intra = intra.scaled(offchip_scale)
    if optical:
        fibers = SUBSTRATE_SHAPES[accelerators_per_node]
        inter = LinkSpec(
            name=f"optical ({fibers} fibers/node)",
            latency_s=FIBER_LATENCY_S,
            bandwidth_bits_per_s=accelerator.offchip_bandwidth_bits_per_s,
        )
        node = NodeSpec(accelerator=accelerator,
                        n_accelerators=accelerators_per_node,
                        intra_link=intra, inter_link=inter,
                        n_nics=fibers)
        return SystemSpec(
            node=node,
            n_nodes=FIG11_TOTAL_ACCELERATORS // accelerators_per_node)
    return glam_h100_reference(
        n_nodes=FIG11_TOTAL_ACCELERATORS // accelerators_per_node,
        accelerators_per_node=accelerators_per_node)


def _evaluate(system: SystemSpec, global_batch: int,
              optical: bool = False) -> Fig11Bar:
    from repro.parallelism.topology import FULLY_CONNECTED, RING

    node_size = system.node.n_accelerators
    tp = _largest_tp(node_size, GLAM_1_2T.n_heads)
    dp_intra = node_size // tp
    spec = ParallelismSpec(tp_intra=tp, dp_intra=dp_intra,
                           dp_inter=system.n_nodes)
    amped = AMPeD(
        model=GLAM_1_2T,
        system=system,
        parallelism=spec,
        precision=FP8_TRAINING,
        efficiency=GLAM_EFFICIENCY,
        moe_volume_multiplier=GLAM_MOE_VOLUME,
        # The programmable photonic substrate is a crossbar: intra-node
        # all-reduces run direct-exchange instead of a ring.
        intra_topology=FULLY_CONNECTED if optical else RING,
        validate=False,  # TP=48 pads GLaM's 128 attention heads
    )
    estimate = amped.estimate(global_batch, total_tokens=100e9)
    return Fig11Bar(
        label="",
        accelerators_per_node=node_size,
        offchip_scale=1.0,
        training_days_per_epoch=estimate.total_time_days,
        breakdown=estimate.per_batch,
    )


def reproduce_fig11(global_batch: int = FIG11_GLOBAL_BATCH
                    ) -> List[Fig11Bar]:
    """All seven bars of Fig. 11, reference first."""
    from dataclasses import replace as dc_replace

    bars = []
    plan: Tuple[Tuple[str, int, bool, float], ...] = (
        ("reference (8/node, NDR NICs)", 8, False, 1.0),
        ("Opt.1: optical fibers (8/node)", 8, True, 1.0),
        ("Opt.2: 16/node substrate", 16, True, 1.0),
        ("Opt.2: 32/node substrate", 32, True, 1.0),
        ("Opt.2: 48/node substrate", 48, True, 1.0),
        ("Opt.3: 48/node, 2x off-chip BW", 48, True, 2.0),
        ("Opt.3: 48/node, 4x off-chip BW", 48, True, 4.0),
    )
    for label, node_size, optical, scale in plan:
        system = _build_system(node_size, optical, scale)
        bar = _evaluate(system, global_batch, optical=optical)
        bars.append(dc_replace(bar, label=label, offchip_scale=scale))
    return bars


def speedup_ladder(bars: List[Fig11Bar]) -> Dict[str, float]:
    """Cumulative speedups over the reference bar."""
    reference = bars[0]
    return {bar.label: bar.speedup_over(reference) for bar in bars}
