"""Table II: AMPeD vs published Megatron TFLOP/s/GPU.

The published runs (Narayanan et al., SC'21) trained GPT models of
145B-1T parameters on DGX-A100 clusters with the (TP, PP, DP) mappings
in the table and a per-GPU microbatch of one sequence.  We rebuild each
system (``n_gpus / 8`` nodes of 8 A100s over HDR InfiniBand), place the
published mapping TP-innermost, set ``N_ub`` from the microbatch-of-one
convention, and compare predicted achieved TFLOP/s/GPU against the
published numbers.

Efficiency calibration: like the paper ("AMPeD can use empirically
derived efficiency factors"), the fit below is calibrated on the
*first* row (145B) and then applied unchanged to the other three, so
rows 2-4 are genuine predictions.  The paper's own error pattern —
growing under-prediction at deep PP because R = 1 ignores interleaved
bubble overlap — reappears here for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.model import AMPeD
from repro.errors import require_finite_fields
from repro.hardware.catalog import megatron_a100_cluster
from repro.parallelism.microbatch import MicrobatchEfficiency
from repro.parallelism.spec import spec_from_totals
from repro.transformer.zoo import get_model
from repro.validation.compare import ValidationReport, compare_series
from repro.validation.published import MEGATRON_TABLE2, MegatronPoint

#: Microbatch sequences per GPU in the published runs.
MICROBATCH_PER_GPU = 1

#: Efficiency at microbatch 1, calibrated on the 145B row (the fit is
#: flat in ``ub`` because the published runs pin the microbatch to one).
TABLE2_EFFICIENCY = MicrobatchEfficiency(a=0.66, b=0.12, floor=0.05)


@dataclass(frozen=True)
class Table2Row:
    """One reproduced row of Table II."""

    point: MegatronPoint
    predicted_tflops: float

    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def error_percent(self) -> float:
        """Error of our prediction against the published value."""
        return 100.0 * abs(self.predicted_tflops
                           - self.point.published_tflops) \
            / self.point.published_tflops


def build_row(point: MegatronPoint,
              efficiency: MicrobatchEfficiency = TABLE2_EFFICIENCY
              ) -> Table2Row:
    """Evaluate AMPeD for one published configuration."""
    model = get_model(point.model_key)
    system = megatron_a100_cluster(n_nodes=point.n_gpus // 8)
    n_ub = point.global_batch // (point.dp * MICROBATCH_PER_GPU)
    spec = spec_from_totals(system, tp=point.tp, pp=point.pp, dp=point.dp,
                            n_microbatches=n_ub)
    amped = AMPeD(
        model=model,
        system=system,
        parallelism=spec,
        efficiency=efficiency,
    )
    return Table2Row(
        point=point,
        predicted_tflops=amped.achieved_tflops_per_gpu(point.global_batch),
    )


def reproduce_table2(efficiency: MicrobatchEfficiency = TABLE2_EFFICIENCY
                     ) -> Tuple[List[Table2Row], ValidationReport]:
    """All four rows plus the error report against the published column."""
    rows = [build_row(point, efficiency) for point in MEGATRON_TABLE2]
    report = compare_series(
        "Table II: AMPeD vs published TFLOP/s/GPU",
        [f"{row.point.n_parameters_b:g}B "
         f"(TP{row.point.tp}/PP{row.point.pp}/DP{row.point.dp})"
         for row in rows],
        [row.predicted_tflops for row in rows],
        [row.point.published_tflops for row in rows],
    )
    return rows, report
