"""Fig. 3: training-time breakdown for two example configurations.

Both configurations map the Megatron 145B model onto the Case Study I
system (128 nodes x 8 A100) with ``DP_intra = 8`` and ``DP_inter = 64``;
they differ in how the remaining inter-node factor of 2 is spent:

- configuration 1: ``PP_inter = 2`` — the extra communication is one
  stage boundary plus a small bubble;
- configuration 2: ``TP_inter = 2`` — every layer pays an inter-node
  activation all-reduce.

The paper's observation, reproduced here: "the pipeline bubble time in
the first configuration is negligible compared to the communication
overheads in the second configuration".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.breakdown import TrainingTimeBreakdown
from repro.core.model import AMPeD
from repro.hardware.catalog import megatron_a100_cluster
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.parallelism.spec import ParallelismSpec
from repro.transformer.zoo import MEGATRON_145B

#: Batch size used for the breakdown illustration (the middle of the
#: paper's 4096/8192/16384 sweep).
FIG3_GLOBAL_BATCH = 8192


@dataclass(frozen=True)
class BreakdownCase:
    """One bar of Fig. 3."""

    label: str
    parallelism: ParallelismSpec
    breakdown: TrainingTimeBreakdown


def reproduce_fig3(global_batch: int = FIG3_GLOBAL_BATCH
                   ) -> Tuple[BreakdownCase, BreakdownCase]:
    """Evaluate both configurations and return their breakdowns."""
    system = megatron_a100_cluster()
    pp_case_spec = ParallelismSpec(dp_intra=8, dp_inter=64, pp_inter=2)
    tp_case_spec = ParallelismSpec(dp_intra=8, dp_inter=64, tp_inter=2)

    cases = []
    for label, spec in (("DPx64, PPx2 inter", pp_case_spec),
                        ("DPx64, TPx2 inter", tp_case_spec)):
        amped = AMPeD(
            model=MEGATRON_145B,
            system=system,
            parallelism=spec,
            efficiency=CASE_STUDY_EFFICIENCY,
            # Fig. 3's narrative ("the pipeline bubble time in the first
            # configuration is negligible") reflects the paper's literal
            # Eq. 8 accounting, so this experiment uses it.
            bubble_model="eq8",
        )
        cases.append(BreakdownCase(
            label=label,
            parallelism=spec,
            breakdown=amped.estimate_batch(global_batch),
        ))
    return cases[0], cases[1]
