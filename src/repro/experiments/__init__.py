"""Reproductions of every table and figure in the paper's evaluation.

==========  ==========================================  =======================
Exp. id     What it shows                               Entry point
==========  ==========================================  =======================
Fig. 2a     DP validation, minGPT on HGX-2              fig2_validation.data_parallel_scaling
Fig. 2b     PP validation, minGPT-PP on HGX-2           fig2_validation.pipeline_parallel_scaling
Fig. 2c     TFLOP/s/GPU vs microbatch, GPT-3 175B       fig2_validation.batch_size_saturation
Table II    AMPeD vs published Megatron TFLOP/s/GPU     table2.reproduce_table2
Table III   GPipe speedups on P100/PCIe                 table3.reproduce_table3
Fig. 3      training-time breakdown, two mappings       fig3_breakdown.reproduce_fig3
Figs. 4-9   Case Study I parallelism sweeps             casestudy1.figure4 .. figure9
Fig. 10     Case Study II low-end DP vs PP              casestudy2.reproduce_fig10
Fig. 11     Case Study III optical substrates           casestudy3.reproduce_fig11
==========  ==========================================  =======================

Extension studies beyond the paper:

==================  ========================================================
Table II + overlap  table2_interleaved.reproduce_table2_interleaved
strong scaling      scaling_study.run_scaling_study
model family        family_study.run_family_study
long context        context_study.run_context_study
==================  ========================================================
"""

from repro.experiments import (
    casestudy1,
    casestudy2,
    casestudy3,
    context_study,
    family_study,
    fig2_validation,
    fig3_breakdown,
    scaling_study,
    table2,
    table2_interleaved,
    table3,
)

__all__ = [
    "fig2_validation",
    "table2",
    "table2_interleaved",
    "table3",
    "fig3_breakdown",
    "casestudy1",
    "casestudy2",
    "casestudy3",
    "scaling_study",
    "family_study",
    "context_study",
]
