"""Long-context study: where the attention s² term takes over.

Most of AMPeD's cost terms are linear in the sequence length ``s``
(MLP FLOPs, TP/PP activation volumes all carry ``b·s·h``), but the
attention score/value matmuls carry ``4·b·s²·h`` and the softmax
``3·b·a·s²``.  At the 2k contexts of the paper's workloads those terms
are noise; at 32k-128k they dominate.  This study sweeps the context
length at a *fixed token budget per batch* (so total linear-term work
is constant) and reports how compute inflates and where the attention
share crosses half of all FLOPs.

The crossover has a closed form the tests pin: attention-quadratic
FLOPs equal the rest at ``s = 6h`` for the standard ``f = 4h``
transformer (24bsh² linear vs 4bs²h quadratic).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.model import AMPeD
from repro.core.operations import build_operations
from repro.errors import ConfigurationError, require_finite_fields
from repro.hardware.catalog import megatron_a100_cluster
from repro.parallelism.microbatch import PERFECT_EFFICIENCY
from repro.parallelism.spec import spec_from_totals
from repro.transformer.config import TransformerConfig
from repro.transformer.zoo import MEGATRON_7_5B

#: Context lengths of the sweep.
CONTEXT_LENGTHS = (2048, 4096, 8192, 16384, 32768, 65536)

#: Tokens per global batch, held constant across the sweep.
TOKENS_PER_BATCH = 2 ** 22  # 4M tokens


@dataclass(frozen=True)
class ContextPoint:
    """One context length of the sweep."""

    sequence_length: int
    global_batch: int
    batch_time_s: float
    attention_flop_share: float
    time_per_token_s: float

    def __post_init__(self) -> None:
        require_finite_fields(self)


def attention_quadratic_share(model: TransformerConfig,
                              batch: int = 1) -> float:
    """Fraction of forward MAC FLOPs in the s²-scaling attention terms
    (scores + attention-over-values: ``4·b·s²·h`` per layer)."""
    operations = build_operations(model, batch,
                                  include_embeddings=False)
    total = operations.total_forward_mac_flops
    quadratic = (4.0 * batch * model.sequence_length ** 2
                 * model.hidden_size * model.n_layers)
    return quadratic / total


def quadratic_crossover_length(model: TransformerConfig) -> float:
    """The ``s`` at which the quadratic attention FLOPs equal all other
    per-layer FLOPs: ``24·b·s·h² = 4·b·s²·h  =>  s = 6h`` (for the
    standard ``f = 4h`` feed-forward)."""
    return 6.0 * model.hidden_size


def run_context_study(context_lengths: Sequence[int] = CONTEXT_LENGTHS,
                      tokens_per_batch: int = TOKENS_PER_BATCH
                      ) -> List[ContextPoint]:
    """Sweep context length at fixed tokens per batch on 256 A100s."""
    system = megatron_a100_cluster(n_nodes=32)
    points = []
    for sequence_length in context_lengths:
        if tokens_per_batch % sequence_length != 0:
            raise ConfigurationError(
                f"tokens_per_batch ({tokens_per_batch}) must be a "
                f"multiple of the context length ({sequence_length})")
        model = dataclasses.replace(
            MEGATRON_7_5B,
            name=f"{MEGATRON_7_5B.name}-s{sequence_length}",
            sequence_length=sequence_length)
        global_batch = tokens_per_batch // sequence_length
        # Perfect efficiency isolates the FLOP/communication scaling:
        # the saturating eff(ub) fit counts *sequences* per microbatch,
        # which is the wrong utilization proxy when each sequence's
        # token count varies by 32x across the sweep.
        amped = AMPeD(
            model=model,
            system=system,
            parallelism=spec_from_totals(system, tp=8, dp=32),
            efficiency=PERFECT_EFFICIENCY,
        )
        batch_time = amped.estimate_batch(global_batch).total
        points.append(ContextPoint(
            sequence_length=sequence_length,
            global_batch=global_batch,
            batch_time_s=batch_time,
            attention_flop_share=attention_quadratic_share(model),
            time_per_token_s=batch_time / tokens_per_batch,
        ))
    return points
