"""Table III: GPipe normalized training throughput on P100 GPUs.

Huang et al. trained a 24-layer transformer with GPipe on 2/4/8 P100s
behind PCIe 3.0 using M = 32 microbatches and reported throughput
normalized to the 2-GPU run: 1 / 1.8 / 3.3.  The paper predicts
1 / 1.84 / 3.19.

We rebuild the platform from the catalog, run AMPeD with pure pipeline
parallelism and 32 microbatches at a fixed per-GPU memory budget
("we tune the microbatch size according to the available memory of
P100" — the global batch stays constant across GPU counts, which is
what makes the speedup sub-linear: the fill/drain bubble share
``(K-1)/M`` grows with K), and additionally cross-check with the
discrete-event pipeline simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.metrics import speedups
from repro.core.model import AMPeD
from repro.core.operations import build_operations
from repro.errors import require_finite_fields
from repro.hardware.catalog import gpipe_p100_node
from repro.hardware.precision import FULL_FP32
from repro.parallelism.microbatch import MicrobatchEfficiency
from repro.parallelism.spec import ParallelismSpec
from repro.pipeline.simulator import PipelineWorkload, simulate_pipeline
from repro.transformer.zoo import GPIPE_T24
from repro.validation.compare import ValidationReport, compare_series
from repro.validation.published import GPIPE_N_MICROBATCHES, GPIPE_TABLE3

#: Sequences per microbatch (P100's 16 GB bounds the microbatch; one
#: sequence per microbatch matches GPipe's re-materialization setup).
MICROBATCH_SIZE = 1

#: Efficiency fit for the P100 runs; constant across GPU counts because
#: the microbatch is pinned, so it cancels in the normalization.
GPIPE_EFFICIENCY = MicrobatchEfficiency(a=0.5, b=0.5, floor=0.05)


@dataclass(frozen=True)
class Table3Row:
    """One GPU-count column of Table III."""

    n_gpus: int
    batch_time_s: float
    simulated_time_s: float

    def __post_init__(self) -> None:
        require_finite_fields(self)


def build_rows(gpu_counts: Sequence[int] = (2, 4, 8)
               ) -> List[Table3Row]:
    """Evaluate AMPeD and the pipeline simulator for each GPU count."""
    global_batch = MICROBATCH_SIZE * GPIPE_N_MICROBATCHES
    rows = []
    for n_gpus in gpu_counts:
        system = gpipe_p100_node(n_gpus)
        spec = ParallelismSpec(pp_intra=n_gpus,
                               n_microbatches=GPIPE_N_MICROBATCHES)
        amped = AMPeD(
            model=GPIPE_T24,
            system=system,
            parallelism=spec,
            precision=FULL_FP32,
            efficiency=GPIPE_EFFICIENCY,
        )
        batch_time = amped.estimate_batch(global_batch).total

        # Cross-check: discrete-event GPipe schedule.
        operations = build_operations(GPIPE_T24, global_batch)
        eff = GPIPE_EFFICIENCY(MICROBATCH_SIZE)
        peak = system.accelerator.peak_mac_flops_per_s * eff / 2.0
        # FP32 on FP16-native units: two passes, hence /2 on throughput.
        forward_total = operations.total_forward_mac_flops / peak
        fwd_task = forward_total / (n_gpus * GPIPE_N_MICROBATCHES)
        activation_bits = (MICROBATCH_SIZE * GPIPE_T24.sequence_length
                           * GPIPE_T24.hidden_size
                           * FULL_FP32.activation_bits)
        comm_task = system.node.intra_link.transfer_time(activation_bits)
        sim = simulate_pipeline(
            PipelineWorkload(forward_time=fwd_task,
                             backward_time=2.0 * fwd_task,
                             comm_time=comm_task),
            n_stages=n_gpus, n_microbatches=GPIPE_N_MICROBATCHES,
            schedule="gpipe")
        rows.append(Table3Row(n_gpus=n_gpus, batch_time_s=batch_time,
                              simulated_time_s=sim.makespan_s))
    return rows


def reproduce_table3() -> Tuple[List[Table3Row], ValidationReport]:
    """Speedups vs the published Table III numbers."""
    rows = build_rows([point.n_gpus for point in GPIPE_TABLE3])
    predicted = speedups([row.batch_time_s for row in rows])
    report = compare_series(
        "Table III: GPipe normalized throughput (M=32)",
        [f"{point.n_gpus} GPUs" for point in GPIPE_TABLE3],
        predicted,
        [point.published_speedup for point in GPIPE_TABLE3],
    )
    return rows, report
