"""Table II revisited with a modeled overlap ratio (the paper's own fix).

The paper attributes its growing deep-PP error to setting R = 1 while
the published runs used *interleaved* pipelining: "R can be tuned to
fit the data or can be modeled in more detail as a function of pipeline
stages and interleaving".  This experiment does the modeling: it
measures R for the interleaved schedule with the discrete-event
simulator (Megatron's default is two model chunks per stage) and
re-evaluates every Table II row with that ratio.

Expected outcome — and what the tests assert: the deep-PP rows
(530B at PP=35, 1T at PP=64) move toward the published numbers, while
the shallow rows barely move (their bubbles were small to begin with).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.table2 import (
    TABLE2_EFFICIENCY,
    Table2Row,
    build_row,
)
from repro.errors import require_finite_fields
from repro.fitting.overlap_fit import measure_overlap_ratio
from repro.validation.compare import ValidationReport, compare_series
from repro.validation.published import MEGATRON_TABLE2, MegatronPoint

#: Model chunks per stage in Megatron's interleaved schedule.
MEGATRON_CHUNKS = 2

#: Simulator problem size used to estimate R (stage/microbatch counts
#: beyond this change R only marginally; the simulator cost grows
#: quadratically).
_R_ESTIMATE_STAGES = 8
_R_ESTIMATE_MICROBATCHES = 32


@dataclass(frozen=True)
class InterleavedRow:
    """One Table II row under both overlap assumptions."""

    naive: Table2Row
    interleaved: Table2Row
    overlap_ratio: float

    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def point(self) -> MegatronPoint:
        """The published reference row."""
        return self.naive.point

    @property
    def improvement_percent(self) -> float:
        """Error reduction from modeling the overlap (positive =
        interleaved modeling is closer to the published value)."""
        return self.naive.error_percent - self.interleaved.error_percent


def estimated_overlap_ratio(n_chunks: int = MEGATRON_CHUNKS) -> float:
    """R for the interleaved schedule, measured by simulation."""
    return measure_overlap_ratio(
        n_stages=_R_ESTIMATE_STAGES,
        n_microbatches=_R_ESTIMATE_MICROBATCHES,
        n_chunks=n_chunks)


def reproduce_table2_interleaved(
        n_chunks: int = MEGATRON_CHUNKS
) -> Tuple[List[InterleavedRow], ValidationReport]:
    """Every Table II row with simulator-derived interleaved overlap."""
    ratio = estimated_overlap_ratio(n_chunks)
    rows = []
    for point in MEGATRON_TABLE2:
        rows.append(InterleavedRow(
            naive=build_row(point),
            interleaved=build_overlapped_row(point, ratio),
            overlap_ratio=ratio))
    report = compare_series(
        f"Table II with interleaved overlap (R = {ratio:.2f}, "
        f"{n_chunks} chunks)",
        [f"{row.point.n_parameters_b:g}B (PP{row.point.pp})"
         for row in rows],
        [row.interleaved.predicted_tflops for row in rows],
        [row.point.published_tflops for row in rows],
    )
    return rows, report


def build_overlapped_row(point: MegatronPoint,
                         ratio: float) -> Table2Row:
    """One Table II row evaluated at overlap ``ratio``."""
    from repro.core.model import AMPeD
    from repro.experiments.table2 import MICROBATCH_PER_GPU
    from repro.hardware.catalog import megatron_a100_cluster
    from repro.parallelism.spec import spec_from_totals
    from repro.transformer.zoo import get_model

    model = get_model(point.model_key)
    system = megatron_a100_cluster(n_nodes=point.n_gpus // 8)
    n_ub = point.global_batch // (point.dp * MICROBATCH_PER_GPU)
    spec = spec_from_totals(system, tp=point.tp, pp=point.pp,
                            dp=point.dp, n_microbatches=n_ub,
                            bubble_overlap_ratio=ratio)
    amped = AMPeD(model=model, system=system, parallelism=spec,
                  efficiency=TABLE2_EFFICIENCY)
    return Table2Row(
        point=point,
        predicted_tflops=amped.achieved_tflops_per_gpu(
            point.global_batch))
