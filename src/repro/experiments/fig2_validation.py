"""Figure 2 validation experiments.

Three sub-experiments, mirroring §V-A/B and the Fig. 2c study:

- :func:`data_parallel_scaling` (Fig. 2a) — minGPT (85M) trained with DP
  on 1..16 V100s of one HGX-2 node.  The paper's in-house GPU runs are
  replaced by a *mechanistically independent* measurement substitute:
  per-GPU compute from raw operation counts plus a step-level simulated
  hierarchical ring all-reduce of the gradients (no AMPeD equations
  involved).  AMPeD's closed-form prediction is compared against it.
- :func:`pipeline_parallel_scaling` (Fig. 2b) — the 16-layer minGPT
  variant trained with PP on 2..16 GPUs, ``N_ub = N_PP`` as in the
  paper.  Measurement substitute: the discrete-event pipeline simulator
  executing the GPipe schedule on per-stage task times derived from raw
  operation counts.
- :func:`batch_size_saturation` (Fig. 2c) — GPT-3 175B on 96 GPUs with
  pipeline parallelism only; achieved TFLOP/s/GPU as a function of the
  microbatch size, reproducing the saturating shape (the paper quotes
  ~11% error at microbatch 12 shrinking to ~2% at 60 against Narayanan
  et al.'s measurements).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.collectives.hierarchical import simulate_hierarchical_allreduce
from repro.core.metrics import normalize_to_first
from repro.errors import require_finite_fields
from repro.core.model import AMPeD
from repro.core.operations import build_operations
from repro.hardware.catalog import hgx2_node
from repro.hardware.precision import MIXED_FP16
from repro.parallelism.microbatch import MicrobatchEfficiency
from repro.parallelism.spec import ParallelismSpec
from repro.pipeline.simulator import PipelineWorkload, simulate_pipeline
from repro.transformer.params import total_parameters
from repro.transformer.zoo import GPT3_175B, MINGPT_85M, MINGPT_PP
from repro.units import Seconds
from repro.validation.compare import ValidationReport, compare_series

#: Efficiency fit for the minGPT validation runs — saturates quickly, as
#: small models do on V100s; both the measurement substitute and the
#: prediction use it (the paper likewise feeds AMPeD "the average
#: microbatch efficiency as obtained during the runtime of the
#: experiment").
MINGPT_EFFICIENCY = MicrobatchEfficiency(a=0.6, b=64.0, floor=0.05)

#: Fixed global batch of the validation runs (sequences).
MINGPT_GLOBAL_BATCH = 512

#: Efficiency fit for the GPT-3/96-GPU study of Fig. 2c, calibrated so
#: the saturated end approaches the ~150 TFLOP/s/GPU that Narayanan et
#: al. report (see EXPERIMENTS.md).
FIG2C_EFFICIENCY = MicrobatchEfficiency(a=0.72, b=10.0, floor=0.05)


@dataclass(frozen=True)
class ScalingPoint:
    """One (GPU count, predicted, measured) triple of Fig. 2a/2b."""

    n_gpus: int
    predicted_s: float
    measured_s: float

    def __post_init__(self) -> None:
        require_finite_fields(self)


@dataclass(frozen=True)
class ScalingResult:
    """A full scaling series plus its normalized forms."""

    name: str
    points: Tuple[ScalingPoint, ...]

    @property
    def gpu_counts(self) -> List[int]:
        """GPU counts of the sweep."""
        return [p.n_gpus for p in self.points]

    @property
    def predicted_normalized(self) -> List[float]:
        """Predicted training times normalized to the first point."""
        return normalize_to_first([p.predicted_s for p in self.points])

    @property
    def measured_normalized(self) -> List[float]:
        """Measured (simulated) times normalized to the first point."""
        return normalize_to_first([p.measured_s for p in self.points])

    def report(self) -> ValidationReport:
        """Predicted-vs-measured comparison of the normalized curves."""
        return compare_series(
            self.name,
            [f"{p.n_gpus} GPUs" for p in self.points],
            self.predicted_normalized,
            self.measured_normalized,
        )


# ---------------------------------------------------------------------------
# Fig. 2a — data parallelism
# ---------------------------------------------------------------------------


def _mingpt_compute_time(model, global_batch: int, n_gpus: int,
                         efficiency: MicrobatchEfficiency,
                         accelerator) -> Seconds:
    """Measurement substitute's compute path: raw FLOPs (forward +
    2x backward + weight update) over derated MAC peak, plus the
    non-linear operations over the special-function-unit peak, per GPU."""
    operations = build_operations(model, global_batch)
    flops = operations.total_forward_mac_flops * 3.0
    flops += 2.0 * operations.total_parameters  # SGD update MACs->FLOPs
    nonlinear = sum(layer.nonlinear_ops
                    for layer in operations.layers) * 3.0
    microbatch = global_batch / n_gpus
    mac_time = flops / (accelerator.peak_mac_flops_per_s
                        * efficiency(microbatch) * n_gpus)
    nonlinear_time = nonlinear / (accelerator.peak_nonlinear_ops_per_s
                                  * n_gpus)
    return mac_time + nonlinear_time


def data_parallel_scaling(gpu_counts: Sequence[int] = (1, 2, 4, 8, 16),
                          global_batch: int = MINGPT_GLOBAL_BATCH
                          ) -> ScalingResult:
    """Fig. 2a: normalized DP training time of minGPT on one HGX-2."""
    points = []
    for n_gpus in gpu_counts:
        system = hgx2_node(max(n_gpus, 1))
        node = system.node
        accelerator = node.accelerator

        # Measurement substitute: compute + simulated gradient all-reduce.
        compute = _mingpt_compute_time(MINGPT_85M, global_batch, n_gpus,
                                       MINGPT_EFFICIENCY, accelerator)
        measured = compute
        if n_gpus > 1:
            gradient_bits = (total_parameters(MINGPT_85M)
                             * MIXED_FP16.gradient_bits)
            allreduce = simulate_hierarchical_allreduce(
                gradient_bits, n_intra=n_gpus, n_inter=1,
                intra_link=node.intra_link, inter_link=node.inter_link)
            measured += allreduce.time_s

        # AMPeD prediction.
        amped = AMPeD(
            model=MINGPT_85M,
            system=system,
            parallelism=ParallelismSpec(dp_intra=n_gpus),
            efficiency=MINGPT_EFFICIENCY,
        )
        predicted = amped.estimate_batch(global_batch).total
        points.append(ScalingPoint(n_gpus, predicted, measured))
    return ScalingResult("Fig. 2a: minGPT data-parallel scaling",
                         tuple(points))


# ---------------------------------------------------------------------------
# Fig. 2b — pipeline parallelism
# ---------------------------------------------------------------------------


def pipeline_parallel_scaling(gpu_counts: Sequence[int] = (2, 4, 8, 16),
                              global_batch: int = MINGPT_GLOBAL_BATCH
                              ) -> ScalingResult:
    """Fig. 2b: normalized PP training time of the 16-layer minGPT.

    ``N_ub = N_PP`` per the paper ("we set the number of microbatches to
    be equal to the pipeline degree").
    """
    points = []
    for n_gpus in gpu_counts:
        system = hgx2_node(max(n_gpus, 2))
        node = system.node
        accelerator = node.accelerator
        n_ub = n_gpus
        microbatch = global_batch / n_ub
        eff = MINGPT_EFFICIENCY(microbatch)

        # Measurement substitute: discrete-event GPipe simulation over
        # per-stage task times from raw operation counts.
        operations = build_operations(MINGPT_PP, global_batch)
        forward_total = (operations.total_forward_mac_flops
                         / (accelerator.peak_mac_flops_per_s * eff))
        fwd_task = forward_total / (n_gpus * n_ub)
        activation_bits = ((global_batch / n_ub)
                           * MINGPT_PP.sequence_length
                           * MINGPT_PP.hidden_size
                           * MIXED_FP16.activation_bits)
        comm_task = node.intra_link.transfer_time(activation_bits)
        sim = simulate_pipeline(
            PipelineWorkload(forward_time=fwd_task,
                             backward_time=2.0 * fwd_task,
                             comm_time=comm_task),
            n_stages=n_gpus, n_microbatches=n_ub, schedule="gpipe")
        measured = sim.makespan_s

        # AMPeD prediction.
        amped = AMPeD(
            model=MINGPT_PP,
            system=system,
            parallelism=ParallelismSpec(pp_intra=n_gpus,
                                        n_microbatches=n_ub),
            efficiency=MINGPT_EFFICIENCY,
        )
        predicted = amped.estimate_batch(global_batch).total
        points.append(ScalingPoint(n_gpus, predicted, measured))
    return ScalingResult("Fig. 2b: minGPT pipeline-parallel scaling",
                         tuple(points))


# ---------------------------------------------------------------------------
# Fig. 2c — batch-size saturation of GPT-3 175B
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SaturationPoint:
    """One microbatch size of the Fig. 2c sweep."""

    microbatch_size: int
    global_batch: int
    tflops_per_gpu: float
    efficiency: float

    def __post_init__(self) -> None:
        require_finite_fields(self)


def batch_size_saturation(microbatch_sizes: Sequence[int] =
                          (1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 60),
                          n_gpus: int = 96,
                          n_microbatches: int = 512
                          ) -> List[SaturationPoint]:
    """Fig. 2c: TFLOP/s/GPU vs microbatch size, GPT-3 175B, PP only.

    96 GPUs arranged as 12 HGX-style nodes of 8, pipeline degree 96
    (one stage per layer group); the global batch is
    ``microbatch * N_ub`` so the sweep moves only the microbatch size.
    """
    from repro.hardware.catalog import megatron_a100_cluster

    system = megatron_a100_cluster(n_nodes=n_gpus // 8,
                                   accelerators_per_node=8)
    spec = ParallelismSpec(pp_intra=8, pp_inter=n_gpus // 8,
                           n_microbatches=n_microbatches)
    points = []
    for microbatch in microbatch_sizes:
        global_batch = microbatch * n_microbatches
        amped = AMPeD(
            model=GPT3_175B,
            system=system,
            parallelism=spec,
            efficiency=FIG2C_EFFICIENCY,
        )
        points.append(SaturationPoint(
            microbatch_size=microbatch,
            global_batch=global_batch,
            tflops_per_gpu=amped.achieved_tflops_per_gpu(global_batch),
            efficiency=amped.microbatch_efficiency(global_batch),
        ))
    return points
