"""Case Study I: optimizing the parallelism configuration (Figs. 4-9).

The platform: 1024 A100s as 128 nodes x 8, NVLink inside the node, HDR
InfiniBand across nodes.  The workload: Megatron 145B, batch sizes 4096
/ 8192 / 16384, assuming a 300B-token corpus for absolute training-day
numbers (DESIGN.md).

Figures 4-6 fix tensor parallelism inside the node and sweep how the
128 inter-node ways are split between two parallelism types; figures
7-9 repeat the sweep with data parallelism inside the node:

=========  ============  =======================
figure     intra-node    inter-node split
=========  ============  =======================
Fig. 4     TP x 8        TP x PP
Fig. 5     TP x 8        TP x DP
Fig. 6     TP x 8        PP x DP
Fig. 7     DP x 8        TP x PP
Fig. 8     DP x 8        TP x DP
Fig. 9     DP x 8        PP x DP
=========  ============  =======================

Microbatch counts are tuned per configuration (the efficiency/bubble
trade-off the paper resolves through its empirical efficiency fit).
:func:`conclusions` re-derives §VI-E's findings ❶-❺ numerically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.model import AMPeD
from repro.errors import MappingError
from repro.hardware.catalog import megatron_a100_cluster
from repro.parallelism.mapping import mapping_for
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.search.tuning import optimize_microbatches
from repro.transformer.zoo import MEGATRON_145B
from repro.units import seconds_to_days

#: The paper's batch-size sweep.
CASE_STUDY_BATCHES = (4096, 8192, 16384)

#: Assumed training-corpus size (tokens) for absolute day counts.
CASE_STUDY_TOKENS = 300e9


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis position of a Case Study I figure."""

    first_degree: int
    second_degree: int
    label: str
    #: batch size -> training days (None when the mapping is infeasible,
    #: e.g. the microbatch would drop below one sequence).
    days: Dict[int, Optional[float]]


@dataclass(frozen=True)
class SweepSeries:
    """One full figure: a labelled series of sweep points."""

    figure: str
    intra: str
    inter_pair: Tuple[str, str]
    points: Tuple[SweepPoint, ...]

    def curve(self, global_batch: int) -> List[Optional[float]]:
        """Training-day values of one batch-size curve."""
        return [point.days.get(global_batch) for point in self.points]

    def best(self, global_batch: int) -> Tuple[str, float]:
        """(label, days) of the fastest feasible point of a curve."""
        feasible = [(p.label, p.days[global_batch]) for p in self.points
                    if p.days.get(global_batch) is not None]
        if not feasible:
            raise MappingError(
                f"{self.figure}: no feasible point at batch "
                f"{global_batch}")
        return min(feasible, key=lambda item: item[1])


def _inter_splits(n_nodes: int) -> List[Tuple[int, int]]:
    """Power-of-two splits (d1, d2) with d1 * d2 == n_nodes."""
    splits = []
    d1 = 1
    while d1 <= n_nodes:
        if n_nodes % d1 == 0:
            splits.append((d1, n_nodes // d1))
        d1 *= 2
    return splits


def _evaluate(amped_template: AMPeD, spec, global_batch: int,
              total_tokens: float, tune: bool) -> Optional[float]:
    """Training days for one (mapping, batch) point, or None."""
    candidate = replace(amped_template, parallelism=spec)
    try:
        if tune:
            candidate, _ = optimize_microbatches(candidate, global_batch)
        estimate = candidate.estimate(global_batch,
                                      total_tokens=total_tokens)
    except MappingError:
        return None
    return estimate.total_time_days


def sweep(figure: str, intra: str, inter_pair: Tuple[str, str],
          batches: Sequence[int] = CASE_STUDY_BATCHES,
          total_tokens: float = CASE_STUDY_TOKENS,
          tune_microbatches: bool = True) -> SweepSeries:
    """Run one Case Study I figure.

    Degenerate splits that reduce to pure parallelism of the *other*
    type are kept — they provide the curve's endpoints.  Mappings the
    model cannot run (TP wider than attention heads, PP deeper than
    layers, sub-sequence microbatches) yield ``None`` entries.
    """
    system = megatron_a100_cluster()
    template = AMPeD(
        model=MEGATRON_145B,
        system=system,
        parallelism=mapping_for(system, intra=intra, inter="dp"),
        efficiency=CASE_STUDY_EFFICIENCY,
        validate=False,
    )
    first, second = inter_pair
    points = []
    for d1, d2 in _inter_splits(system.n_nodes):
        spec = mapping_for(system, intra=intra, inter=f"{first}+{second}",
                           inter_split=(d1, d2))
        if spec.pp > MEGATRON_145B.n_layers:
            days = {batch: None for batch in batches}
        else:
            days = {batch: _evaluate(template, spec, batch, total_tokens,
                                     tune_microbatches)
                    for batch in batches}
        points.append(SweepPoint(
            first_degree=d1,
            second_degree=d2,
            label=f"{first.upper()}x{d1}/{second.upper()}x{d2}",
            days=days,
        ))
    return SweepSeries(figure=figure, intra=intra, inter_pair=inter_pair,
                       points=tuple(points))


def figure4(**kwargs) -> SweepSeries:
    """Fig. 4: TP intra-node; inter-node TP x PP."""
    return sweep("Fig. 4", "tp", ("tp", "pp"), **kwargs)


def figure5(**kwargs) -> SweepSeries:
    """Fig. 5: TP intra-node; inter-node TP x DP."""
    return sweep("Fig. 5", "tp", ("tp", "dp"), **kwargs)


def figure6(**kwargs) -> SweepSeries:
    """Fig. 6: TP intra-node; inter-node PP x DP."""
    return sweep("Fig. 6", "tp", ("pp", "dp"), **kwargs)


def figure7(**kwargs) -> SweepSeries:
    """Fig. 7: DP intra-node; inter-node TP x PP."""
    return sweep("Fig. 7", "dp", ("tp", "pp"), **kwargs)


def figure8(**kwargs) -> SweepSeries:
    """Fig. 8: DP intra-node; inter-node TP x DP."""
    return sweep("Fig. 8", "dp", ("tp", "dp"), **kwargs)


def figure9(**kwargs) -> SweepSeries:
    """Fig. 9: DP intra-node; inter-node PP x DP."""
    return sweep("Fig. 9", "dp", ("pp", "dp"), **kwargs)


ALL_FIGURES = {
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
}


def conclusions(global_batch: int = 16384,
                total_tokens: float = CASE_STUDY_TOKENS) -> Dict[str, float]:
    """Re-derive §VI-E's conclusions as ratios.

    Returns a dict of named ratios, each phrased so that the paper's
    claim corresponds to the value being > 1 (see the bench output for
    interpretation):

    - ``tp_inter_penalty`` — pure TP across nodes vs pure DP across
      nodes, TP inside (❷/❸: the paper reports ~3x).
    - ``pp_vs_dp_inter`` — pure PP across nodes vs pure DP across nodes,
      TP inside (❹: PP slightly worse, ~21 vs ~18 days).
    - ``tp_intra_advantage`` — best DP-intra mapping vs best TP-intra
      mapping at the same batch (❺: ~2x).
    - ``batch_size_gain`` — smallest-batch vs largest-batch training
      time for the DP-intra mapping (❶: large batches keep efficiency
      up; note training *days* compare at equal token counts).
    """
    system = megatron_a100_cluster()

    def run(intra: str, inter: str, batch: int,
            inter_split=None) -> float:
        spec = mapping_for(system, intra=intra, inter=inter,
                           inter_split=inter_split)
        template = AMPeD(model=MEGATRON_145B, system=system,
                         parallelism=spec,
                         efficiency=CASE_STUDY_EFFICIENCY, validate=False)
        days = _evaluate(template, spec, batch, total_tokens, True)
        if days is None:
            raise MappingError(f"{intra}/{inter} infeasible at {batch}")
        return days

    tp_dp = run("tp", "dp", global_batch)
    tp_pp = run("tp", "pp+dp", global_batch, inter_split=(64, 2))
    tp_tp = run("tp", "tp+dp", global_batch, inter_split=(16, 8))
    dp_dp = run("dp", "dp", global_batch)
    dp_small = run("dp", "dp", min(CASE_STUDY_BATCHES))

    return {
        "tp_inter_penalty": tp_tp / tp_dp,
        "pp_vs_dp_inter": tp_pp / tp_dp,
        "tp_intra_advantage": dp_dp / tp_dp,
        "batch_size_gain": dp_small / dp_dp,
    }


def to_days(seconds: float) -> float:
    """Re-export for bench scripts."""
    return seconds_to_days(seconds)
