"""Strong-scaling study: what AMPeD is *for*.

Not a figure from the paper, but the question its introduction poses —
"identifying the right type and degree of parallelism ... can help in
improving the training throughput considerably" — turned into a study:
for each cluster size from 8 to 128 nodes, run the full design-space
explorer (mapping enumeration, per-mapping microbatch tuning, memory
feasibility) and record the best achievable training time, the mapping
that achieves it, and the parallel efficiency against the smallest
cluster.

The tests and bench assert the textbook shape: time falls monotonically
with accelerators, the efficiency decays below 1, and the best mapping
keeps TP inside the node at every size (conclusion ❺ holds across
scales).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.model import AMPeD
from repro.errors import require_finite_fields
from repro.hardware.catalog import megatron_a100_cluster
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.parallelism.spec import spec_from_totals
from repro.search.dse import best_mapping
from repro.transformer.config import TransformerConfig
from repro.transformer.zoo import MEGATRON_145B

#: Cluster sizes of the sweep (nodes of 8 A100s each).
SCALING_NODE_COUNTS = (8, 16, 32, 64, 128)

SCALING_BATCH = 4096
SCALING_TOKENS = 300e9


@dataclass(frozen=True)
class ScalingStudyPoint:
    """Best achievable configuration at one cluster size."""

    n_nodes: int
    n_accelerators: int
    mapping: str
    tp_intra: int
    uses_inter_tp: bool
    batch_time_s: float
    training_days: float

    def __post_init__(self) -> None:
        require_finite_fields(self)

    def speedup_over(self, base: "ScalingStudyPoint") -> float:
        """Throughput gain over the smallest cluster."""
        return base.batch_time_s / self.batch_time_s

    def efficiency_over(self, base: "ScalingStudyPoint") -> float:
        """Parallel efficiency vs the smallest cluster."""
        ideal = self.n_accelerators / base.n_accelerators
        return self.speedup_over(base) / ideal


def run_scaling_study(node_counts: Sequence[int] = SCALING_NODE_COUNTS,
                      model: TransformerConfig = MEGATRON_145B,
                      global_batch: int = SCALING_BATCH,
                      total_tokens: float = SCALING_TOKENS,
                      enforce_memory: bool = True
                      ) -> List[ScalingStudyPoint]:
    """Best-mapping training time at every cluster size."""
    points = []
    for n_nodes in node_counts:
        system = megatron_a100_cluster(n_nodes=n_nodes)
        template = AMPeD(
            model=model,
            system=system,
            parallelism=spec_from_totals(system, tp=8, dp=n_nodes),
            efficiency=CASE_STUDY_EFFICIENCY,
        )
        best = best_mapping(template, global_batch,
                            enforce_memory=enforce_memory)
        winner = template.with_parallelism(best.parallelism)
        estimate = winner.estimate(global_batch,
                                   total_tokens=total_tokens)
        points.append(ScalingStudyPoint(
            n_nodes=n_nodes,
            n_accelerators=system.n_accelerators,
            mapping=best.label,
            tp_intra=best.parallelism.tp_intra,
            uses_inter_tp=best.parallelism.uses_inter_tp,
            batch_time_s=best.batch_time_s,
            training_days=estimate.total_time_days,
        ))
    return points
