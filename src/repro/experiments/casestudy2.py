"""Case Study II: DP vs PP across nodes on low-end systems (Fig. 10).

The same 1024-A100 pool as Case Study I, regrouped into nodes of
1/2/4/8 accelerators with one EDR (100 Gb/s) NIC per accelerator —
the node shapes cloud providers actually rent.  TP fills whatever node
exists; the comparison is DP versus PP for the inter-node dimension,
training Megatron 145B at batch 8192.

The paper's finding, reproduced here: with one accelerator + NIC per
node the DP all-reduce is starved and PP's point-to-point traffic wins
by a wide margin (80% in the paper); as NICs multiply, DP overtakes PP
(crossover between 2 and 4 accelerators/node), and at the crossover
the PP configuration can still win on *energy* because accelerators
idle (at reduced power) inside its bubbles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.model import AMPeD
from repro.energy.energy import breakeven_idle_fraction, estimate_energy
from repro.energy.power import PowerModel
from repro.hardware.catalog import lowend_a100_cluster
from repro.parallelism.mapping import mapping_for
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.search.tuning import optimize_microbatches
from repro.transformer.zoo import MEGATRON_145B
from repro.errors import require_finite_fields
from repro.units import divisors

#: Fig. 10's workload.
FIG10_GLOBAL_BATCH = 8192
FIG10_TOKENS = 300e9

#: The node shapes swept by Fig. 10.
FIG10_NODE_SIZES = (1, 2, 4, 8)


@dataclass(frozen=True)
class Fig10Point:
    """One node-shape column of Fig. 10."""

    accelerators_per_node: int
    dp_days: float
    pp_days: float
    pp_bubble_share: float
    energy_breakeven_idle_fraction: Optional[float]

    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def winner(self) -> str:
        """Which inter-node strategy trains faster."""
        return "PP" if self.pp_days < self.dp_days else "DP"

    @property
    def advantage(self) -> float:
        """Speed advantage of the winner (>= 1)."""
        slow, fast = max(self.dp_days, self.pp_days), \
            min(self.dp_days, self.pp_days)
        return slow / fast


def _pp_split(n_nodes: int, n_layers: int) -> Tuple[int, int]:
    """The PP-heavy inter split: the deepest pipeline the model allows
    (a divisor of the node count), data parallelism absorbing the rest."""
    pp = max(d for d in divisors(n_nodes) if d <= n_layers)
    return pp, n_nodes // pp


def _evaluate(system, spec, global_batch: int, total_tokens: float):
    template = AMPeD(
        model=MEGATRON_145B,
        system=system,
        parallelism=spec,
        efficiency=CASE_STUDY_EFFICIENCY,
        validate=False,
    )
    tuned, _ = optimize_microbatches(template, global_batch)
    return tuned, tuned.estimate(global_batch, total_tokens=total_tokens)


def reproduce_fig10(node_sizes: Sequence[int] = FIG10_NODE_SIZES,
                    global_batch: int = FIG10_GLOBAL_BATCH,
                    total_tokens: float = FIG10_TOKENS,
                    idle_fraction: float = 0.3) -> Dict[int, Fig10Point]:
    """Evaluate DP-inter vs PP-inter for every node shape."""
    results = {}
    for node_size in node_sizes:
        system = lowend_a100_cluster(node_size)
        n_nodes = system.n_nodes

        dp_spec = mapping_for(system, intra="tp", inter="dp")
        __, dp_estimate = _evaluate(system, dp_spec, global_batch,
                                    total_tokens)

        pp_degree, dp_rest = _pp_split(n_nodes, MEGATRON_145B.n_layers)
        if dp_rest > 1:
            pp_spec = mapping_for(system, intra="tp", inter="pp+dp",
                                  inter_split=(pp_degree, dp_rest))
        else:
            pp_spec = mapping_for(system, intra="tp", inter="pp")
        pp_model, pp_estimate = _evaluate(system, pp_spec, global_batch,
                                          total_tokens)

        pp_breakdown = pp_estimate.per_batch
        bubble_share = (pp_breakdown.bubble / pp_breakdown.total
                        if pp_breakdown.total else 0.0)
        breakeven = None
        if (pp_estimate.total_time_s > dp_estimate.total_time_s
                and 0 < bubble_share < 1):
            breakeven = breakeven_idle_fraction(
                dp_estimate.total_time_s, pp_estimate.total_time_s,
                bubble_share)

        results[node_size] = Fig10Point(
            accelerators_per_node=node_size,
            dp_days=dp_estimate.total_time_days,
            pp_days=pp_estimate.total_time_days,
            pp_bubble_share=bubble_share,
            energy_breakeven_idle_fraction=breakeven,
        )
    return results


def energy_comparison(node_size: int = 4,
                      global_batch: int = FIG10_GLOBAL_BATCH,
                      total_tokens: float = FIG10_TOKENS,
                      idle_fraction: float = 0.3) -> Dict[str, float]:
    """The paper's energy argument at one node shape: total kWh of the
    DP and PP configurations under a two-state power model."""
    system = lowend_a100_cluster(node_size)
    power = PowerModel.for_accelerator(system.accelerator,
                                       idle_fraction=idle_fraction)

    dp_spec = mapping_for(system, intra="tp", inter="dp")
    __, dp_estimate = _evaluate(system, dp_spec, global_batch,
                                total_tokens)
    pp_degree, dp_rest = _pp_split(system.n_nodes,
                                   MEGATRON_145B.n_layers)
    pp_spec = mapping_for(system, intra="tp", inter="pp+dp",
                          inter_split=(pp_degree, dp_rest)) \
        if dp_rest > 1 else mapping_for(system, intra="tp", inter="pp")
    __, pp_estimate = _evaluate(system, pp_spec, global_batch,
                                total_tokens)

    n = system.n_accelerators
    dp_energy = estimate_energy(dp_estimate.breakdown, power, n)
    pp_energy = estimate_energy(pp_estimate.breakdown, power, n)
    return {
        "dp_days": dp_estimate.total_time_days,
        "pp_days": pp_estimate.total_time_days,
        "dp_kwh": dp_energy.total_kwh,
        "pp_kwh": pp_energy.total_kwh,
        "idle_fraction": idle_fraction,
    }
