"""Ideal and Amdahl scaling baselines.

The validation figures (2a, 2b) plot normalized training time against
worker count; the natural baselines are perfect ``1/N`` scaling and
Amdahl's law with a serial fraction.  These give the reader (and the
tests) reference curves to position AMPeD's predictions against.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ConfigurationError


def ideal_scaling(workers: Sequence[int]) -> List[float]:
    """Perfectly parallel normalized times: ``workers[0] / n``."""
    _check_workers(workers)
    base = workers[0]
    return [base / n for n in workers]


def amdahl_scaling(workers: Sequence[int],
                   serial_fraction: float) -> List[float]:
    """Amdahl normalized times with a fixed serial fraction ``f``:

    ``t(n) = f + (1 - f) * base / n``, normalized so ``t(base) == 1``.
    """
    _check_workers(workers)
    if not 0 <= serial_fraction < 1:
        raise ConfigurationError(
            f"serial_fraction must be in [0, 1), got {serial_fraction}")
    base = workers[0]
    return [serial_fraction + (1 - serial_fraction) * base / n
            for n in workers]


def fitted_serial_fraction(workers: Sequence[int],
                           normalized_times: Sequence[float]) -> float:
    """Least-squares Amdahl serial fraction through a measured curve.

    For each point ``t(n) = f + (1 - f) x`` with ``x = base/n``; solving
    the normal equation for ``f`` over all points gives the fit.  Useful
    for summarizing how far a predicted curve is from ideal.
    """
    _check_workers(workers)
    if len(workers) != len(normalized_times):
        raise ConfigurationError(
            f"lengths differ: {len(workers)} workers vs "
            f"{len(normalized_times)} times")
    base = workers[0]
    num, den = 0.0, 0.0
    for n, t in zip(workers, normalized_times):
        x = base / n
        num += (t - x) * (1 - x)
        den += (1 - x) ** 2
    if den == 0:
        return 0.0
    return min(max(num / den, 0.0), 1.0)


def _check_workers(workers: Sequence[int]) -> None:
    if not workers:
        raise ConfigurationError("worker list must be non-empty")
    if any(n < 1 for n in workers):
        raise ConfigurationError(
            f"worker counts must be >= 1, got {list(workers)}")
