"""Roofline baseline: the simplest credible time model.

The roofline charges one batch ``max(flops / peak_compute,
bytes / memory_bandwidth)`` per accelerator and ignores communication,
parallelism interaction, bubbles and efficiency.  AMPeD's value over
this baseline is precisely the gap the case studies explore; the
benchmark harness reports both so the comparison is explicit (the role
the related-work section assigns to simple predictors).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, require_finite_fields
from repro.hardware.accelerator import AcceleratorSpec
from repro.hardware.precision import PrecisionPolicy
from repro.transformer.config import TransformerConfig
from repro.transformer.params import model_flops_per_batch, total_parameters
from repro.units import BITS_PER_BYTE


@dataclass(frozen=True)
class RooflinePoint:
    """One roofline evaluation."""

    compute_time_s: float
    memory_time_s: float

    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def time_s(self) -> float:
        """The roofline bound: the larger of the two ceilings."""
        return max(self.compute_time_s, self.memory_time_s)

    @property
    def compute_bound(self) -> bool:
        """Whether the compute ceiling binds."""
        return self.compute_time_s >= self.memory_time_s


def roofline_batch_time(model: TransformerConfig,
                        accelerator: AcceleratorSpec,
                        precision: PrecisionPolicy,
                        global_batch: int,
                        n_accelerators: int,
                        weight_reuse: float = None) -> RooflinePoint:
    """Roofline time of one batch spread over ``n_accelerators``.

    Memory traffic is approximated as one read of all weights plus one
    write/read of activations per layer, amortized by ``weight_reuse``
    (how many times a fetched weight is used — defaults to the batch's
    token count, the ideal for large batches).
    """
    if n_accelerators < 1:
        raise ConfigurationError(
            f"n_accelerators must be >= 1, got {n_accelerators}")
    if accelerator.memory_bandwidth_bits_per_s <= 0:
        raise ConfigurationError(
            f"{accelerator.name} has no memory bandwidth configured")
    flops = model_flops_per_batch(model, global_batch)
    compute_time = flops / (accelerator.peak_mac_flops_per_s
                            * n_accelerators)

    tokens = global_batch * model.sequence_length
    if weight_reuse is None:
        weight_reuse = float(tokens)
    if weight_reuse < 1:
        raise ConfigurationError(
            f"weight_reuse must be >= 1, got {weight_reuse}")
    weight_bits = total_parameters(model) * precision.parameter_bits
    act_bits = (3.0 * tokens * model.hidden_size * model.n_layers
                * precision.activation_bits)
    traffic_bits = weight_bits * tokens / weight_reuse + act_bits
    memory_time = traffic_bits / (
        accelerator.memory_bandwidth_bits_per_s * n_accelerators)
    return RooflinePoint(compute_time_s=compute_time,
                         memory_time_s=memory_time)


def arithmetic_intensity(model: TransformerConfig,
                         global_batch: int,
                         precision: PrecisionPolicy) -> float:
    """FLOPs per byte of weight traffic — the roofline's x-axis."""
    flops = model_flops_per_batch(model, global_batch)
    weight_bytes = (total_parameters(model)
                    * precision.parameter_bits / BITS_PER_BYTE)
    return flops / weight_bytes
