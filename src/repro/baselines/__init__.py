"""Baseline performance models AMPeD is compared against."""

from repro.baselines.amdahl import (
    amdahl_scaling,
    fitted_serial_fraction,
    ideal_scaling,
)
from repro.baselines.roofline import (
    RooflinePoint,
    arithmetic_intensity,
    roofline_batch_time,
)

__all__ = [
    "RooflinePoint",
    "roofline_batch_time",
    "arithmetic_intensity",
    "ideal_scaling",
    "amdahl_scaling",
    "fitted_serial_fraction",
]
