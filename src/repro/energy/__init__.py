"""Energy modeling for Case Study II's DP-vs-PP trade-off."""

from repro.energy.energy import (
    JOULES_PER_KWH,
    EnergyEstimate,
    breakeven_idle_fraction,
    estimate_energy,
)
from repro.energy.power import PowerModel

__all__ = [
    "PowerModel",
    "EnergyEstimate",
    "estimate_energy",
    "breakeven_idle_fraction",
    "JOULES_PER_KWH",
]
