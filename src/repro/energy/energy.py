"""Training-run energy estimates and the DP-vs-PP break-even analysis.

Builds directly on AMPeD's breakdown: the bubble component is idle time
(reduced power), everything else is active time.  Reproduces Case Study
II's energy argument quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.breakdown import TrainingTimeBreakdown
from repro.energy.power import PowerModel
from repro.errors import ConfigurationError, require_finite_fields

#: Joules per kWh, for reporting.
JOULES_PER_KWH = 3.6e6


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy of one training run across all accelerators."""

    active_joules: float
    idle_joules: float
    n_accelerators: int

    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def total_joules(self) -> float:
        """Total energy of the run."""
        return self.active_joules + self.idle_joules

    @property
    def total_kwh(self) -> float:
        """Total energy in kilowatt-hours."""
        return self.total_joules / JOULES_PER_KWH


def estimate_energy(breakdown: TrainingTimeBreakdown,
                    power: PowerModel,
                    n_accelerators: int) -> EnergyEstimate:
    """Energy of a run whose per-run breakdown is ``breakdown``.

    Bubble time draws idle power; compute and communication draw active
    power.  All accelerators are assumed to share the same duty cycle
    (homogeneous mapping), so system energy is per-accelerator energy
    times the accelerator count.
    """
    if n_accelerators < 1:
        raise ConfigurationError(
            f"n_accelerators must be >= 1, got {n_accelerators}")
    active_time = breakdown.compute_time + breakdown.comm_time
    idle_time = breakdown.bubble
    return EnergyEstimate(
        active_joules=active_time * power.active_watts * n_accelerators,
        idle_joules=idle_time * power.idle_watts * n_accelerators,
        n_accelerators=n_accelerators,
    )


def breakeven_idle_fraction(time_fast_s: float, time_slow_s: float,
                            bubble_share_slow: float) -> float:
    """Idle-power fraction below which the slower, bubblier run wins on
    energy (Case Study II's "~30%" figure).

    The faster run spends ``time_fast`` fully active; the slower run
    spends ``time_slow`` of which ``bubble_share_slow`` idles at
    fraction ``x`` of active power.  Energy parity:

        time_fast = time_slow * (1 - share) + time_slow * share * x

    solved for ``x``.  The slower run wins on energy whenever its idle
    fraction is *below* the returned value: a result <= 0 means it never
    wins (its active time alone exceeds the fast run), >= 1 means it
    always wins (it is not actually slower in active time).
    """
    if time_fast_s <= 0 or time_slow_s <= 0:
        raise ConfigurationError(
            f"run times must be positive, got {time_fast_s}, "
            f"{time_slow_s}")
    if not 0 < bubble_share_slow < 1:
        raise ConfigurationError(
            f"bubble_share_slow must be in (0, 1), got "
            f"{bubble_share_slow}")
    active = time_slow_s * (1 - bubble_share_slow)
    idle = time_slow_s * bubble_share_slow
    return (time_fast_s - active) / idle
