"""Accelerator power model.

Case Study II observes that pipeline bubbles idle the accelerators, and
that if idle power drops below ~30% of active power, the PP
configuration — though ~4% slower — consumes *less energy* than DP.
This module makes that argument quantitative: a two-state power model
(active / idle) driven by the AMPeD breakdown's bubble share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, require_finite_fields
from repro.hardware.accelerator import AcceleratorSpec


@dataclass(frozen=True)
class PowerModel:
    """Two-state accelerator power model.

    Parameters
    ----------
    active_watts:
        Draw while computing or communicating (defaults to the
        accelerator's TDP when built via :meth:`for_accelerator`).
    idle_fraction:
        Idle draw as a fraction of active draw.  The paper's break-even
        analysis revolves around this knob ("the lower power state
        should use less than ~30% of the power of the system during
        full execution").
    """

    active_watts: float
    idle_fraction: float = 0.3

    def __post_init__(self) -> None:
        require_finite_fields(self)
        if self.active_watts <= 0:
            raise ConfigurationError(
                f"active_watts must be positive, got {self.active_watts}")
        if not 0 <= self.idle_fraction <= 1:
            raise ConfigurationError(
                f"idle_fraction must be in [0, 1], got "
                f"{self.idle_fraction}")

    @classmethod
    def for_accelerator(cls, accelerator: AcceleratorSpec,
                        idle_fraction: float = 0.3) -> "PowerModel":
        """Build from an accelerator's TDP."""
        if accelerator.tdp_watts <= 0:
            raise ConfigurationError(
                f"{accelerator.name} has no TDP configured")
        return cls(active_watts=accelerator.tdp_watts,
                   idle_fraction=idle_fraction)

    @property
    def idle_watts(self) -> float:
        """Draw while idling in a pipeline bubble."""
        return self.active_watts * self.idle_fraction

    def average_watts(self, busy_share: float) -> float:
        """Mean draw when ``busy_share`` of time is active work."""
        if not 0 <= busy_share <= 1:
            raise ConfigurationError(
                f"busy_share must be in [0, 1], got {busy_share}")
        return (busy_share * self.active_watts
                + (1 - busy_share) * self.idle_watts)
