"""Microbatch sizing and the microbatch-efficiency fit ``eff(ub)``.

Eq. 3 derates an accelerator's peak MAC throughput by a *microbatch
efficiency* — how well a kernel working on a microbatch of ``ub``
sequences utilizes the compute cores.  The paper fits the empirical form

    eff(ub) = a * ub / (b + ub)

("a functional form a.ub/(b+ub) allows a good fit until a critical
microbatch size"), optionally clamped below by a floor (Case Study I
uses a fixed lower limit of 25%) and above by 1.

The microbatch size itself follows §V-B / §VI-B: the global batch is
divided among data-parallel replicas, and each replica's share is cut
into ``N_ub`` microbatches for pipelining:

    ub = global_batch / (N_DP * N_ub)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, MappingError, require_finite
from repro.parallelism.spec import ParallelismSpec


@dataclass(frozen=True)
class MicrobatchEfficiency:
    """Saturating efficiency fit ``eff(ub) = clamp(a*ub / (b + ub))``.

    Parameters
    ----------
    a:
        Asymptotic efficiency scale.  Values slightly above 1 are legal
        (the ceiling clamps the result); they model kernels that saturate
        before the fit's asymptote.
    b:
        Half-saturation microbatch size: at ``ub == b`` the unclamped fit
        reaches ``a / 2``.
    floor:
        Lower clamp (Case Study I uses 0.25 — "the microbatch efficiency
        curve has a fixed lower limit of 25% in our case").
    ceiling:
        Upper clamp, at most 1.0.
    """

    a: float = 1.0
    b: float = 4.0
    floor: float = 0.0
    ceiling: float = 1.0

    def __post_init__(self) -> None:
        # NaN slips through every comparison below (each is false), so
        # the finiteness guards must come first.
        for name in ("a", "b", "floor", "ceiling"):
            require_finite(name, getattr(self, name))
        if self.a <= 0:
            raise ConfigurationError(f"a must be positive, got {self.a}")
        if self.b < 0:
            raise ConfigurationError(f"b must be non-negative, got {self.b}")
        if not 0 <= self.floor <= 1:
            raise ConfigurationError(
                f"floor must be in [0, 1], got {self.floor}")
        if not 0 < self.ceiling <= 1:
            raise ConfigurationError(
                f"ceiling must be in (0, 1], got {self.ceiling}")
        if self.floor > self.ceiling:
            raise ConfigurationError(
                f"floor ({self.floor}) exceeds ceiling ({self.ceiling})")

    def __call__(self, microbatch_size: float) -> float:
        """Efficiency in ``[max(floor, tiny), ceiling]`` for ``ub > 0``."""
        require_finite("microbatch size", microbatch_size)
        if not microbatch_size > 0:  # rejects NaN as well as <= 0
            raise ConfigurationError(
                f"microbatch size must be positive, got {microbatch_size}")
        raw = self.a * microbatch_size / (self.b + microbatch_size)
        return min(self.ceiling, max(self.floor, raw))

    @classmethod
    def from_points(cls, point_low, point_high, floor: float = 0.0,
                    ceiling: float = 1.0) -> "MicrobatchEfficiency":
        """Fit (a, b) through two measured ``(ub, eff)`` points.

        This mirrors the paper's procedure of deriving the efficiency
        empirically per application/machine.  The two points must have
        distinct ``ub`` and efficiencies increasing with ``ub``.
        """
        (ub1, e1), (ub2, e2) = point_low, point_high
        if ub1 <= 0 or ub2 <= 0 or ub1 == ub2:
            raise ConfigurationError(
                f"need two distinct positive microbatch sizes, got "
                f"{ub1} and {ub2}")
        if not (0 < e1 < e2 <= 1):
            raise ConfigurationError(
                f"efficiencies must satisfy 0 < e1 < e2 <= 1, got "
                f"{e1} and {e2}")
        # e = a*ub/(b+ub)  =>  b = ub*(a/e - 1); equate for both points.
        b = (ub1 * ub2 * (e2 - e1)) / (e1 * ub2 - e2 * ub1)
        if b <= 0:
            raise ConfigurationError(
                f"points ({point_low}, {point_high}) imply a non-saturating "
                f"fit (b = {b:.3g}); pick points below saturation")
        a = e1 * (b + ub1) / ub1
        return cls(a=a, b=b, floor=floor, ceiling=ceiling)


#: Perfect utilization — useful for isolating communication effects.
PERFECT_EFFICIENCY = MicrobatchEfficiency(a=1.0, b=0.0, floor=1.0)

#: The Case Study I fit: reproduces the paper's quoted operating points
#: (~30% at ub = 16 for DP-heavy mappings, ~80% at ub = 128 for TP-intra
#: mappings) with the paper's 25% floor.
CASE_STUDY_EFFICIENCY = MicrobatchEfficiency(a=1.05, b=40.0, floor=0.25)


def microbatch_size(global_batch: int, spec: ParallelismSpec,
                    minimum: float = 1.0) -> float:
    """Microbatch size ``ub = global_batch / (N_DP * N_ub)``.

    Raises :class:`MappingError` when the mapping dices the batch below
    ``minimum`` sequences per microbatch — such configurations cannot
    actually run (a microbatch cannot hold a fraction of a sequence).
    """
    if global_batch < 1:
        raise ConfigurationError(
            f"global_batch must be >= 1, got {global_batch}")
    ub = global_batch / (spec.dp * spec.microbatches)
    if ub < minimum:
        raise MappingError(
            f"batch {global_batch} split over dp={spec.dp} x "
            f"N_ub={spec.microbatches} leaves microbatches of {ub:.3g} "
            f"sequences (< {minimum})")
    return ub


def replica_batch_size(global_batch: int, spec: ParallelismSpec) -> float:
    """Per-data-parallel-replica batch ``b = global_batch / N_DP`` — the
    'effective batch size' of Eq. 6's activation volume."""
    if global_batch < 1:
        raise ConfigurationError(
            f"global_batch must be >= 1, got {global_batch}")
    return global_batch / spec.dp
