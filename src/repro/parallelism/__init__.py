"""Parallelism mappings, topology factors and microbatch efficiency.

The knobs of §II-B / §IV: which parallelism type (DP, TP, PP, MoE) runs
at which level of the machine (intra-node vs inter-node), how collectives
traverse the topology, and how the microbatch size that results from a
mapping translates into compute efficiency.
"""

from repro.parallelism.mapping import (
    enumerate_mappings,
    factor_triples,
    mapping_for,
)
from repro.parallelism.microbatch import (
    CASE_STUDY_EFFICIENCY,
    PERFECT_EFFICIENCY,
    MicrobatchEfficiency,
    microbatch_size,
    replica_batch_size,
)
from repro.parallelism.spec import ParallelismSpec, spec_from_totals
from repro.parallelism.topology import (
    FULLY_CONNECTED,
    PAIRWISE_ALLTOALL,
    RING,
    TOPOLOGIES,
    TREE,
    CollectiveTopology,
    FullyConnectedAllReduce,
    PairwiseAllToAll,
    RingAllReduce,
    TreeAllReduce,
)

__all__ = [
    "ParallelismSpec",
    "spec_from_totals",
    "enumerate_mappings",
    "factor_triples",
    "mapping_for",
    "MicrobatchEfficiency",
    "microbatch_size",
    "replica_batch_size",
    "PERFECT_EFFICIENCY",
    "CASE_STUDY_EFFICIENCY",
    "CollectiveTopology",
    "RingAllReduce",
    "TreeAllReduce",
    "FullyConnectedAllReduce",
    "PairwiseAllToAll",
    "RING",
    "TREE",
    "FULLY_CONNECTED",
    "PAIRWISE_ALLTOALL",
    "TOPOLOGIES",
]
