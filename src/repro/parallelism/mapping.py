"""Enumeration of legal parallelism mappings for a system.

Case Study I performs an "exhaustive exploration [of] all possible
combinations of data, pipeline, and tensor parallelism in intra-node and
inter-node accelerators".  This module produces those combinations: every
factorization of the node size into (tp_intra, pp_intra, dp_intra) and of
the node count into (tp_inter, pp_inter, dp_inter), optionally filtered
by model constraints (pipeline depth <= layer count, TP divides heads).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.errors import MappingError
from repro.hardware.system import SystemSpec
from repro.parallelism.spec import ParallelismSpec
from repro.transformer.config import TransformerConfig
from repro.units import divisors


def factor_triples(total: int) -> Iterator[tuple]:
    """Yield every ordered triple ``(x, y, z)`` with ``x*y*z == total``."""
    for x in divisors(total):
        rest = total // x
        for y in divisors(rest):
            yield x, y, rest // y


def enumerate_mappings(system: SystemSpec,
                       model: Optional[TransformerConfig] = None,
                       require_tp_divides_heads: bool = True,
                       **spec_kwargs) -> List[ParallelismSpec]:
    """All parallelism mappings that tile ``system`` exactly.

    When ``model`` is given, mappings the model cannot honor (pipeline
    deeper than the layer count, TP not dividing the attention heads)
    are dropped.  Extra keyword arguments are forwarded to every
    :class:`ParallelismSpec` (e.g. ``n_microbatches`` or
    ``bubble_overlap_ratio``).
    """
    node_size = system.node.n_accelerators
    mappings = []
    for tp_intra, pp_intra, dp_intra in factor_triples(node_size):
        for tp_inter, pp_inter, dp_inter in factor_triples(system.n_nodes):
            spec = ParallelismSpec(
                tp_intra=tp_intra, tp_inter=tp_inter,
                pp_intra=pp_intra, pp_inter=pp_inter,
                dp_intra=dp_intra, dp_inter=dp_inter,
                **spec_kwargs)
            if model is not None and not _model_allows(
                    spec, model, require_tp_divides_heads):
                continue
            mappings.append(spec)
    return mappings


def _model_allows(spec: ParallelismSpec, model: TransformerConfig,
                  require_tp_divides_heads: bool) -> bool:
    if spec.pp > model.n_layers:
        return False
    if require_tp_divides_heads and spec.tp > 1 \
            and model.n_heads % spec.tp != 0:
        return False
    return True


def mapping_for(system: SystemSpec, intra: str, inter: str,
                inter_split: Optional[tuple] = None,
                **spec_kwargs) -> ParallelismSpec:
    """Build the named mappings the case studies talk about.

    ``intra`` and ``inter`` name the parallelism type occupying that
    level: one of ``"tp"``, ``"pp"``, ``"dp"`` for ``intra``; for
    ``inter`` additionally the mixed forms ``"tp+pp"``, ``"tp+dp"``,
    ``"pp+dp"``, in which case ``inter_split = (first_degree,
    second_degree)`` divides the node count between the two types.

    Examples
    --------
    >>> from repro.hardware import megatron_a100_cluster
    >>> system = megatron_a100_cluster()
    >>> mapping_for(system, intra="tp", inter="dp").describe()
    'TP=8x1, DP=1x128'
    """
    node_size = system.node.n_accelerators
    n_nodes = system.n_nodes
    degrees = {"tp_intra": 1, "tp_inter": 1, "pp_intra": 1,
               "pp_inter": 1, "dp_intra": 1, "dp_inter": 1}

    intra_key = _level_key(intra, "intra")
    degrees[intra_key] = node_size

    if "+" in inter:
        first, second = inter.split("+")
        if inter_split is None:
            raise MappingError(
                f"mixed inter-node parallelism {inter!r} needs an "
                f"inter_split=(d1, d2)")
        d1, d2 = inter_split
        if d1 * d2 != n_nodes:
            raise MappingError(
                f"inter_split {inter_split} does not multiply to the "
                f"node count {n_nodes}")
        degrees[_level_key(first, "inter")] = d1
        degrees[_level_key(second, "inter")] = d2
    else:
        degrees[_level_key(inter, "inter")] = n_nodes

    return ParallelismSpec(**degrees, **spec_kwargs)


def _level_key(kind: str, level: str) -> str:
    kind = kind.strip().lower()
    if kind not in ("tp", "pp", "dp"):
        raise MappingError(
            f"unknown parallelism type {kind!r}; expected tp/pp/dp")
    return f"{kind}_{level}"
