"""Topology factors for collective operations.

Eq. 6/9/11 scale every collective's latency and volume terms by a
*topology factor* ``T``: the number of communication steps the topology
needs, divided by the number of participating accelerators [Yu et al.,
Gadget].  The paper's examples:

- ring all-reduce: ``T = 2 (N - 1) / N`` (reduce-scatter + all-gather,
  each ``N - 1`` steps, each step moving ``1/N`` of the data);
- pairwise-exchange all-to-all: ``T = (N - 1) / N``.

The classes below also report the raw *step count*, which the
step-level simulator in :mod:`repro.collectives` uses to cross-check the
closed forms.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.errors import ConfigurationError
from repro.units import Seconds


def _check_participants(n: int) -> None:
    if not isinstance(n, int) or n < 1:
        raise ConfigurationError(
            f"participant count must be a positive integer, got {n!r}")


class CollectiveTopology(ABC):
    """How a group of accelerators executes a collective operation."""

    name: str = "abstract"

    def __eq__(self, other: object) -> bool:
        # Topologies are stateless strategies: two instances of the same
        # class are interchangeable.  Value equality (rather than the
        # default identity) keeps cache keys built from topology objects
        # — e.g. :meth:`repro.core.model.AMPeD.sweep_identity` — stable
        # across pickling, so worker processes warmed with compiled
        # tables recognise them when task messages arrive.
        return type(other) is type(self)

    def __hash__(self) -> int:
        return hash(type(self))

    @abstractmethod
    def factor(self, n_participants: int) -> float:
        """Topology factor ``T``, the volume multiplier of the collective.

        Time to move a payload of ``V`` bits is ``C * steps + V / BW * T``.
        For step-symmetric topologies like the ring, ``T`` equals
        steps / participants (the paper's convention).  A single
        participant needs no communication, so ``T(1) == 0``.
        """

    @abstractmethod
    def steps(self, n_participants: int) -> int:
        """Number of sequential communication steps."""

    def latency_term(self, link_latency_s: Seconds,
                     n_participants: int) -> Seconds:
        """The latency contribution of Eqs. 6 and 11.

        The paper writes it as ``C * T * N``; for the ring this equals
        ``C * steps`` (``T * N = 2 (N - 1)``), and ``C * steps`` is the
        form that stays correct for topologies whose steps move the full
        payload, so that is what we compute.
        """
        _check_participants(n_participants)
        return link_latency_s * self.steps(n_participants)

    def volume_term(self, n_values: float, value_bits: float,
                    bandwidth_bits_per_s: float,
                    n_participants: int) -> float:
        """The ``N * S / BW * T`` bandwidth contribution of Eqs. 6 and 11."""
        _check_participants(n_participants)
        return (n_values * value_bits / bandwidth_bits_per_s
                * self.factor(n_participants))


class RingAllReduce(CollectiveTopology):
    """Bandwidth-optimal ring all-reduce: ``T = 2 (N - 1) / N``.

    The default for TP activation all-reduce (Eq. 6) and DP gradient
    all-reduce (Eq. 11), matching the paper's worked example.
    """

    name = "ring-allreduce"

    def factor(self, n_participants: int) -> float:
        _check_participants(n_participants)
        n = n_participants
        return 2.0 * (n - 1) / n

    def steps(self, n_participants: int) -> int:
        _check_participants(n_participants)
        return 2 * (n_participants - 1)


class TreeAllReduce(CollectiveTopology):
    """Latency-optimal binary-tree all-reduce: reduce up, broadcast down.

    ``2 * ceil(log2 N)`` steps, each moving the *full* payload (unlike
    the ring, whose steps move ``1/N`` of it), so the volume multiplier
    equals the step count.  Latency-cheap, bandwidth-expensive:
    preferable only for small payloads over high-latency links.
    """

    name = "tree-allreduce"

    def factor(self, n_participants: int) -> float:
        _check_participants(n_participants)
        if n_participants == 1:
            return 0.0
        return 2.0 * math.ceil(math.log2(n_participants))

    def steps(self, n_participants: int) -> int:
        _check_participants(n_participants)
        if n_participants == 1:
            return 0
        return 2 * math.ceil(math.log2(n_participants))


class FullyConnectedAllReduce(CollectiveTopology):
    """Single-step direct-exchange all-reduce over a full crossbar
    (NVSwitch-style): every rank sends its shard to every other rank in
    one step; ``T = (N - 1) / N``."""

    name = "fully-connected-allreduce"

    def factor(self, n_participants: int) -> float:
        _check_participants(n_participants)
        n = n_participants
        return (n - 1) / n

    def steps(self, n_participants: int) -> int:
        _check_participants(n_participants)
        return 0 if n_participants == 1 else 1


class PairwiseAllToAll(CollectiveTopology):
    """Pairwise-exchange all-to-all: ``T = (N - 1) / N`` (Eq. 9's default
    for MoE expert dispatch/combine)."""

    name = "pairwise-alltoall"

    def factor(self, n_participants: int) -> float:
        _check_participants(n_participants)
        n = n_participants
        return (n - 1) / n

    def steps(self, n_participants: int) -> int:
        _check_participants(n_participants)
        return n_participants - 1


#: Library defaults, matching the paper's examples.
RING = RingAllReduce()
TREE = TreeAllReduce()
FULLY_CONNECTED = FullyConnectedAllReduce()
PAIRWISE_ALLTOALL = PairwiseAllToAll()

TOPOLOGIES = {
    RING.name: RING,
    TREE.name: TREE,
    FULLY_CONNECTED.name: FULLY_CONNECTED,
    PAIRWISE_ALLTOALL.name: PAIRWISE_ALLTOALL,
}
