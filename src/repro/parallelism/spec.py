"""Parallelism mapping description.

AMPeD distinguishes *intra-node* and *inter-node* degrees for each
parallelism type because they ride different links (Eq. 5 keeps separate
TP-intra/TP-inter and PP-intra/PP-inter terms).  A
:class:`ParallelismSpec` therefore carries six degrees:

====================  =========================================
``tp_intra``          tensor-parallel ways inside a node
``tp_inter``          tensor-parallel ways across nodes
``pp_intra``          pipeline stages inside a node
``pp_inter``          pipeline stages across nodes
``dp_intra``          data-parallel replicas inside a node
``dp_inter``          data-parallel replicas across nodes
====================  =========================================

The intra degrees must multiply to the node's accelerator count and the
inter degrees to the node count, so the mapping tiles the machine
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigurationError, MappingError, require_finite
from repro.hardware.system import SystemSpec


@dataclass(frozen=True)
class ParallelismSpec:
    """A complete mapping of DP/TP/PP (+MoE) degrees onto a system.

    Parameters
    ----------
    tp_intra, tp_inter, pp_intra, pp_inter, dp_intra, dp_inter:
        Parallelism degrees, all >= 1.
    n_microbatches:
        ``N_ub``, microbatches per (mini)batch.  Defaults to the total
        pipeline degree — the choice used by the paper's PP validation
        ("we set the number of microbatches to be equal to the pipeline
        degree").
    expert_parallel:
        Whether MoE experts are sharded across workers (adds Eq. 9's
        all-to-all for models that have experts; a no-op for dense
        models).
    bubble_overlap_ratio:
        ``R`` in Eq. 8 — 1.0 for naive/GPipe pipelining, < 1 for
        interleaved schedules that overlap bubbles.
    """

    tp_intra: int = 1
    tp_inter: int = 1
    pp_intra: int = 1
    pp_inter: int = 1
    dp_intra: int = 1
    dp_inter: int = 1
    n_microbatches: Optional[int] = None
    expert_parallel: bool = True
    bubble_overlap_ratio: float = 1.0

    def __post_init__(self) -> None:
        for name in ("tp_intra", "tp_inter", "pp_intra",
                     "pp_inter", "dp_intra", "dp_inter"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ConfigurationError(
                    f"{name} must be an integer >= 1, got {value!r}")
        if self.n_microbatches is not None and self.n_microbatches < 1:
            raise ConfigurationError(
                f"n_microbatches must be >= 1, got {self.n_microbatches}")
        require_finite("bubble_overlap_ratio", self.bubble_overlap_ratio)
        if self.bubble_overlap_ratio < 0:
            raise ConfigurationError(
                f"bubble_overlap_ratio must be >= 0, got "
                f"{self.bubble_overlap_ratio}")

    # -- aggregate degrees ---------------------------------------------------

    @property
    def tp(self) -> int:
        """Total tensor-parallel degree ``N_TP``."""
        return self.tp_intra * self.tp_inter

    @property
    def pp(self) -> int:
        """Total pipeline-parallel degree ``N_PP``."""
        return self.pp_intra * self.pp_inter

    @property
    def dp(self) -> int:
        """Total data-parallel degree ``N_DP``."""
        return self.dp_intra * self.dp_inter

    @property
    def world_size(self) -> int:
        """Total workers claimed by this mapping."""
        return self.tp * self.pp * self.dp

    @property
    def intra_degree(self) -> int:
        """Workers claimed inside one node."""
        return self.tp_intra * self.pp_intra * self.dp_intra

    @property
    def inter_degree(self) -> int:
        """Node-level replication claimed across the cluster."""
        return self.tp_inter * self.pp_inter * self.dp_inter

    @property
    def microbatches(self) -> int:
        """``N_ub``: explicit value, or the pipeline degree by default."""
        if self.n_microbatches is not None:
            return self.n_microbatches
        return self.pp

    @property
    def uses_inter_tp(self) -> bool:
        """Whether any tensor parallelism crosses the node boundary."""
        return self.tp_inter > 1

    @property
    def uses_inter_pp(self) -> bool:
        """Whether any pipeline stage boundary crosses nodes."""
        return self.pp_inter > 1

    # -- validation ----------------------------------------------------------

    def validate_against(self, system: SystemSpec) -> None:
        """Raise :class:`MappingError` unless this mapping tiles
        ``system`` exactly."""
        node_size = system.node.n_accelerators
        if self.intra_degree != node_size:
            raise MappingError(
                f"intra-node degrees tp*pp*dp = {self.intra_degree} do not "
                f"tile the node ({node_size} accelerators)")
        if self.inter_degree != system.n_nodes:
            raise MappingError(
                f"inter-node degrees tp*pp*dp = {self.inter_degree} do not "
                f"tile the cluster ({system.n_nodes} nodes)")

    def validate_against_model(self, n_layers: int, n_heads: int) -> None:
        """Raise :class:`MappingError` for degrees the model cannot honor:
        more pipeline stages than layers, or TP wider than the head count."""
        if self.pp > n_layers:
            raise MappingError(
                f"pipeline degree {self.pp} exceeds the model's "
                f"{n_layers} layers")
        if self.tp > 1 and n_heads % self.tp != 0:
            raise MappingError(
                f"tensor-parallel degree {self.tp} does not divide the "
                f"model's {n_heads} attention heads")

    # -- derived helpers -----------------------------------------------------

    def with_microbatches(self, n_microbatches: int) -> "ParallelismSpec":
        """A copy with an explicit microbatch count."""
        return replace(self, n_microbatches=n_microbatches)

    def with_overlap(self, bubble_overlap_ratio: float) -> "ParallelismSpec":
        """A copy with a different bubble overlap ratio ``R``."""
        return replace(self, bubble_overlap_ratio=bubble_overlap_ratio)

    def describe(self) -> str:
        """Compact human-readable mapping summary."""
        parts = []
        for label, intra, inter in (("TP", self.tp_intra, self.tp_inter),
                                    ("PP", self.pp_intra, self.pp_inter),
                                    ("DP", self.dp_intra, self.dp_inter)):
            if intra > 1 or inter > 1:
                parts.append(f"{label}={intra}x{inter}")
        return ", ".join(parts) if parts else "serial"


def spec_from_totals(system: SystemSpec, tp: int = 1, pp: int = 1,
                     dp: int = 1, **kwargs) -> ParallelismSpec:
    """Place total degrees onto a system, TP innermost.

    Follows the Megatron placement practice the paper validates against:
    tensor parallelism fills the node first (it is the most
    bandwidth-hungry), then pipeline stages, then data-parallel replicas;
    whatever does not fit inside the node spills across nodes.

    Raises :class:`MappingError` when the degrees cannot be split along
    the node boundary without fragmenting (e.g. TP=8 on 6-GPU nodes).
    """
    node_size = system.node.n_accelerators
    if tp * pp * dp != system.n_accelerators:
        raise MappingError(
            f"tp*pp*dp = {tp * pp * dp} does not equal the system's "
            f"{system.n_accelerators} accelerators")

    remaining = node_size
    tp_intra, tp_inter = _split_degree(tp, remaining, "TP")
    remaining //= tp_intra
    pp_intra, pp_inter = _split_degree(pp, remaining, "PP")
    remaining //= pp_intra
    dp_intra, dp_inter = _split_degree(dp, remaining, "DP")
    remaining //= dp_intra
    if remaining != 1:
        raise MappingError(
            f"degrees (tp={tp}, pp={pp}, dp={dp}) leave {remaining} "
            f"accelerators per node unused")
    return ParallelismSpec(tp_intra=tp_intra, tp_inter=tp_inter,
                           pp_intra=pp_intra, pp_inter=pp_inter,
                           dp_intra=dp_intra, dp_inter=dp_inter, **kwargs)


def _split_degree(total: int, room_in_node: int, label: str):
    """Split a total degree into (intra, inter) filling the node first."""
    if total <= room_in_node:
        if room_in_node % total != 0:
            raise MappingError(
                f"{label} degree {total} does not divide the remaining "
                f"node capacity {room_in_node}")
        return total, 1
    if total % room_in_node != 0:
        raise MappingError(
            f"{label} degree {total} does not split along a node "
            f"boundary of {room_in_node}")
    return room_in_node, total // room_in_node
