"""Serialization for hardware specs: calibrated catalog entries on disk.

The calibration pipeline (:mod:`repro.fitting.trace_fit`) ends by
*writing down* what it learned — a system description with the fitted
achievable-FLOPs fraction folded into the accelerator clock and the
fitted latency/bandwidth scales folded into the links, next to the
fitted microbatch-efficiency curve.  This module provides the JSON
round-trip for that artifact:

- :func:`system_to_dict` / :func:`system_from_dict` — lossless
  (de)serialization of :class:`~repro.hardware.system.SystemSpec` and
  its nested :class:`~repro.hardware.node.NodeSpec` /
  :class:`~repro.hardware.accelerator.AcceleratorSpec` /
  :class:`~repro.hardware.interconnect.LinkSpec`, field-for-field, so a
  written entry reconstructs through the *same validated dataclasses*
  the in-memory catalog uses;
- :func:`derated_system` — the calibrated copy of a system: clock
  scaled by the achievable-FLOPs fraction, links scaled by the fitted
  latency/bandwidth factors;
- :func:`write_catalog_entry` / :func:`load_catalog_entry` — the
  ``amped calibrate --write-catalog`` artifact (format version, specs,
  efficiency curve, free-form provenance).

File format (``docs/calibration.md`` §5)::

    {"format": "repro.hardware.catalog_entry/v1",
     "name": "...", "system": {...}, "efficiency": {...},
     "provenance": {...}}
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.hardware.accelerator import AcceleratorSpec
from repro.hardware.interconnect import LinkSpec
from repro.hardware.node import NodeSpec
from repro.hardware.system import SystemSpec
from repro.parallelism.microbatch import MicrobatchEfficiency

#: Format tag written into every catalog entry file.
CATALOG_ENTRY_FORMAT = "repro.hardware.catalog_entry/v1"


def _spec_to_dict(spec: Any) -> Dict[str, Any]:
    """One dataclass instance as a flat field dict (no recursion)."""
    return {item.name: getattr(spec, item.name)
            for item in dataclasses.fields(spec)}


def system_to_dict(system: SystemSpec) -> Dict[str, Any]:
    """A :class:`SystemSpec` as plain JSON-serializable dicts."""
    node = system.node
    return {
        "n_nodes": system.n_nodes,
        "node": {
            "n_accelerators": node.n_accelerators,
            "n_nics": node.n_nics,
            "accelerator": _spec_to_dict(node.accelerator),
            "intra_link": _spec_to_dict(node.intra_link),
            "inter_link": _spec_to_dict(node.inter_link),
        },
    }


def _build(cls: type, payload: Any, label: str) -> Any:
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"catalog entry {label} must be an object, got "
            f"{type(payload).__name__}")
    known = {item.name for item in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ConfigurationError(
            f"catalog entry {label} has unknown fields {unknown}")
    try:
        return cls(**payload)
    except TypeError as error:
        raise ConfigurationError(
            f"catalog entry {label} is incomplete ({error})") from None


def system_from_dict(payload: Any) -> SystemSpec:
    """Rebuild a :class:`SystemSpec` written by :func:`system_to_dict`.

    Construction goes through the ordinary dataclass constructors, so
    every validation rule (positive bandwidths, integer core counts,
    ...) applies to data read from disk exactly as it does in code.
    """
    if not isinstance(payload, dict) or "node" not in payload:
        raise ConfigurationError(
            "catalog entry system must be an object with a 'node'")
    node_payload = payload["node"]
    if not isinstance(node_payload, dict):
        raise ConfigurationError("catalog entry node must be an object")
    node = NodeSpec(
        accelerator=_build(AcceleratorSpec,
                           node_payload.get("accelerator"),
                           "accelerator"),
        n_accelerators=node_payload.get("n_accelerators", 0),
        intra_link=_build(LinkSpec, node_payload.get("intra_link"),
                          "intra_link"),
        inter_link=_build(LinkSpec, node_payload.get("inter_link"),
                          "inter_link"),
        n_nics=node_payload.get("n_nics", 1),
    )
    return SystemSpec(node=node, n_nodes=payload.get("n_nodes", 0))


def _scaled_link(link: LinkSpec, latency_scale: float,
                 bandwidth_scale: float) -> LinkSpec:
    if latency_scale == 1.0 and bandwidth_scale == 1.0:
        return link
    return LinkSpec(
        name=f"{link.name} (calibrated)",
        latency_s=link.latency_s * latency_scale,
        bandwidth_bits_per_s=(link.bandwidth_bits_per_s
                              * bandwidth_scale),
    )


def derated_system(system: SystemSpec, flops_fraction: float = 1.0,
                   link_latency_scale: float = 1.0,
                   link_bandwidth_scale: float = 1.0) -> SystemSpec:
    """The calibrated copy of ``system``.

    ``flops_fraction`` is the achievable fraction of the datasheet
    peak, applied as a whole-chip clock derate (it scales the MAC *and*
    non-linear pipelines together — the model's peaks are both linear
    in ``frequency_hz``).  The link scales multiply every link's
    latency and bandwidth uniformly (intra and inter); use the
    :class:`LinkSpec` helpers directly for asymmetric adjustments.
    """
    for name, value in (("flops_fraction", flops_fraction),
                        ("link_latency_scale", link_latency_scale),
                        ("link_bandwidth_scale", link_bandwidth_scale)):
        if not value > 0:
            raise ConfigurationError(
                f"{name} must be positive, got {value!r}")
    if (flops_fraction == 1.0 and link_latency_scale == 1.0
            and link_bandwidth_scale == 1.0):
        return system
    accelerator = system.accelerator
    if flops_fraction != 1.0:
        accelerator = dataclasses.replace(
            accelerator,
            name=f"{accelerator.name} (calibrated)",
            frequency_hz=accelerator.frequency_hz * flops_fraction)
    node = dataclasses.replace(
        system.node,
        accelerator=accelerator,
        intra_link=_scaled_link(system.node.intra_link,
                                link_latency_scale,
                                link_bandwidth_scale),
        inter_link=_scaled_link(system.node.inter_link,
                                link_latency_scale,
                                link_bandwidth_scale),
    )
    return SystemSpec(node=node, n_nodes=system.n_nodes)


def write_catalog_entry(path: "str | Path", name: str,
                        system: SystemSpec,
                        efficiency: MicrobatchEfficiency,
                        provenance: Optional[Dict[str, Any]] = None
                        ) -> Path:
    """Write a calibrated catalog entry; returns the path.

    The entry is validated by immediately reading it back through
    :func:`load_catalog_entry` before the write is considered done, so
    a file on disk always round-trips.
    """
    payload = {
        "format": CATALOG_ENTRY_FORMAT,
        "name": name,
        "system": system_to_dict(system),
        "efficiency": _spec_to_dict(efficiency),
        "provenance": dict(provenance or {}),
    }
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2, allow_nan=False)
                      + "\n")
    load_catalog_entry(target)
    return target


def load_catalog_entry(path: "str | Path"
                       ) -> Tuple[str, SystemSpec,
                                  MicrobatchEfficiency,
                                  Dict[str, Any]]:
    """Read a calibrated catalog entry back into validated specs.

    Returns ``(name, system, efficiency, provenance)``.  Raises
    :class:`ConfigurationError` on a malformed file.
    """
    target = Path(path)
    try:
        payload = json.loads(target.read_text())
    except OSError as error:
        raise ConfigurationError(
            f"cannot read catalog entry {target} ({error})") from error
    except json.JSONDecodeError as error:
        raise ConfigurationError(
            f"catalog entry {target} is not valid JSON "
            f"({error})") from error
    if not isinstance(payload, dict) \
            or payload.get("format") != CATALOG_ENTRY_FORMAT:
        raise ConfigurationError(
            f"catalog entry {target} does not declare format "
            f"{CATALOG_ENTRY_FORMAT!r}")
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            f"catalog entry {target} is missing a non-empty 'name'")
    system = system_from_dict(payload.get("system"))
    efficiency = _build(MicrobatchEfficiency,
                        payload.get("efficiency"), "efficiency")
    provenance = payload.get("provenance") or {}
    if not isinstance(provenance, dict):
        raise ConfigurationError(
            f"catalog entry {target} provenance must be an object")
    return name, system, efficiency, provenance
