"""Catalog of accelerators and reference systems used by the paper.

Accelerator rows reproduce Table IV (A100, H100) exactly and encode the
validation platforms of Table I (V100 / HGX-2) and Table III (P100 /
PCIe).  The ``f * N_cores * N_FU * W_FU`` products land on the vendor
FP16 peaks:

===========  ==========================  ==================
Accelerator  f*N_cores*N_FU*W_FU         vendor FP16 peak
===========  ==========================  ==================
A100         312 TFLOP/s                 312 TFLOP/s
H100         973 TFLOP/s                 ~990 TFLOP/s
V100 SXM3    125 TFLOP/s                 125 TFLOP/s
P100         21.2 TFLOP/s                21.2 TFLOP/s (FP16)
===========  ==========================  ==================

Non-linear functional-unit counts for V100/P100 are not in the paper; we
use the special-function-unit counts of the respective architectures.
"""

from __future__ import annotations

from repro.hardware.accelerator import AcceleratorSpec
from repro.hardware.interconnect import (
    IB_EDR,
    IB_HDR,
    IB_NDR,
    NVLINK2,
    NVLINK3,
    NVLINK4,
    PCIE3_X16,
    LinkSpec,
)
from repro.hardware.node import NodeSpec
from repro.hardware.system import SystemSpec
from repro.units import GIB, gbytes_per_second_to_bits_per_second

# ---------------------------------------------------------------------------
# Accelerators
# ---------------------------------------------------------------------------

#: Nvidia A100 (Table IV row 1).
A100 = AcceleratorSpec(
    name="Nvidia A100",
    frequency_hz=1.41e9,
    n_cores=108,
    n_fu=4,
    fu_width=512,
    n_fu_nonlinear=192,
    fu_nonlinear_width=4,
    memory_bytes=80 * GIB,
    memory_bandwidth_bits_per_s=gbytes_per_second_to_bits_per_second(1935),
    offchip_bandwidth_bits_per_s=NVLINK3.bandwidth_bits_per_s,
    tdp_watts=400.0,
)

#: Nvidia H100 (Table IV row 2).
H100 = AcceleratorSpec(
    name="Nvidia H100",
    frequency_hz=1.8e9,
    n_cores=132,
    n_fu=4,
    fu_width=1024,
    n_fu_nonlinear=320,
    fu_nonlinear_width=4,
    memory_bytes=80 * GIB,
    memory_bandwidth_bits_per_s=gbytes_per_second_to_bits_per_second(3350),
    offchip_bandwidth_bits_per_s=NVLINK4.bandwidth_bits_per_s,
    tdp_watts=700.0,
)

#: Nvidia V100 SXM3 as in the HGX-2 validation node (Table I).
V100_SXM3 = AcceleratorSpec(
    name="Nvidia V100 SXM3",
    frequency_hz=1.53e9,
    n_cores=80,
    n_fu=8,
    fu_width=128,
    n_fu_nonlinear=80,
    fu_nonlinear_width=8,
    memory_bytes=32 * GIB,
    memory_bandwidth_bits_per_s=gbytes_per_second_to_bits_per_second(897),
    offchip_bandwidth_bits_per_s=NVLINK2.bandwidth_bits_per_s,
    tdp_watts=250.0,
)

#: Nvidia P100 as in the GPipe validation (Table III).
P100 = AcceleratorSpec(
    name="Nvidia P100",
    frequency_hz=1.48e9,
    n_cores=56,
    n_fu=64,
    fu_width=4,
    n_fu_nonlinear=56,
    fu_nonlinear_width=8,
    memory_bytes=16 * GIB,
    memory_bandwidth_bits_per_s=gbytes_per_second_to_bits_per_second(732),
    offchip_bandwidth_bits_per_s=PCIE3_X16.bandwidth_bits_per_s,
    tdp_watts=300.0,
)

ACCELERATORS = {
    "a100": A100,
    "h100": H100,
    "v100": V100_SXM3,
    "p100": P100,
}

# ---------------------------------------------------------------------------
# Reference systems
# ---------------------------------------------------------------------------


def hgx2_node(n_accelerators: int = 16) -> SystemSpec:
    """The HGX-2 validation platform of Table I: one node, up to 16 V100s
    behind NVLink + NVSwitch.  Used for the Fig. 2a/2b experiments."""
    node = NodeSpec(
        accelerator=V100_SXM3,
        n_accelerators=n_accelerators,
        intra_link=NVLINK2,
        inter_link=IB_EDR,
        n_nics=8,
    )
    return SystemSpec(node=node, n_nodes=1)


def megatron_a100_cluster(n_nodes: int = 128,
                          accelerators_per_node: int = 8,
                          inter_link: LinkSpec = IB_HDR,
                          n_nics: int = 8) -> SystemSpec:
    """Case Study I's platform: 128 nodes x 8 A100 over NVLink, nodes
    connected by an HDR InfiniBand fabric (one NIC per accelerator)."""
    node = NodeSpec(
        accelerator=A100,
        n_accelerators=accelerators_per_node,
        intra_link=NVLINK3,
        inter_link=inter_link,
        n_nics=n_nics,
    )
    return SystemSpec(node=node, n_nodes=n_nodes)


def lowend_a100_cluster(accelerators_per_node: int,
                        total_accelerators: int = 1024) -> SystemSpec:
    """Case Study II's platform family: the same 1024 A100 pool grouped
    into nodes of 1/2/4/8 accelerators with one EDR NIC each."""
    base = megatron_a100_cluster(
        n_nodes=total_accelerators // 8, accelerators_per_node=8,
        inter_link=IB_EDR, n_nics=8)
    return base.repartitioned(accelerators_per_node,
                              n_nics=accelerators_per_node)


def glam_h100_reference(n_nodes: int = 384,
                        accelerators_per_node: int = 8) -> SystemSpec:
    """Case Study III's reference: 3072 H100s in 8-GPU NVLink nodes with
    8 NDR InfiniBand cards per node."""
    node = NodeSpec(
        accelerator=H100,
        n_accelerators=accelerators_per_node,
        intra_link=NVLINK4,
        inter_link=IB_NDR,
        n_nics=8,
    )
    return SystemSpec(node=node, n_nodes=n_nodes)


def gpipe_p100_node(n_accelerators: int) -> SystemSpec:
    """The GPipe validation platform of Table III: P100 GPUs sharing a
    PCIe 3.0 fabric inside one host."""
    node = NodeSpec(
        accelerator=P100,
        n_accelerators=n_accelerators,
        intra_link=PCIE3_X16,
        inter_link=IB_EDR,
        n_nics=1,
    )
    return SystemSpec(node=node, n_nodes=1)
