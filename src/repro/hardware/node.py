"""Multi-accelerator node description.

A node groups ``n_accelerators`` identical accelerators behind one
intra-node fabric and attaches to the cluster network through
``n_nics`` network cards.  AMPeD's equations consume two bandwidths per
node boundary:

- the intra-node link bandwidth, taken directly from ``intra_link``;
- the per-accelerator share of inter-node bandwidth, which is the
  aggregate NIC bandwidth divided by the accelerators that share it.
  Case Study II varies exactly this ratio (1/2/4/8 accelerators + NICs
  per node).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.hardware.accelerator import AcceleratorSpec
from repro.hardware.interconnect import LinkSpec
from repro.units import BitsPerSecond


@dataclass(frozen=True)
class NodeSpec:
    """One node: accelerators + intra-node fabric + NICs.

    Parameters
    ----------
    accelerator:
        The (homogeneous) accelerator populating the node.
    n_accelerators:
        Accelerators per node.
    intra_link:
        Link connecting accelerators inside the node (NVLink, PCIe,
        optical substrate).
    inter_link:
        One network card / fiber attachment toward other nodes.
    n_nics:
        Number of inter-node attachments on the node.
    """

    accelerator: AcceleratorSpec
    n_accelerators: int
    intra_link: LinkSpec
    inter_link: LinkSpec
    n_nics: int = 1

    def __post_init__(self) -> None:
        if self.n_accelerators < 1:
            raise ConfigurationError(
                f"n_accelerators must be >= 1, got {self.n_accelerators}")
        if self.n_nics < 1:
            raise ConfigurationError(
                f"n_nics must be >= 1, got {self.n_nics}")

    @property
    def aggregate_inter_bandwidth_bits_per_s(self) -> BitsPerSecond:
        """Total node-to-network bandwidth across all NICs."""
        return self.inter_link.bandwidth_bits_per_s * self.n_nics

    @property
    def inter_bandwidth_per_accelerator_bits_per_s(self) -> BitsPerSecond:
        """Inter-node bandwidth available to one accelerator.

        When accelerators outnumber NICs they share NIC bandwidth; when
        NICs outnumber accelerators, each accelerator can drive more than
        one card (multi-rail), so the share is simply the aggregate
        divided by the accelerator count in both regimes.
        """
        return self.aggregate_inter_bandwidth_bits_per_s / self.n_accelerators

    @property
    def effective_inter_link(self) -> LinkSpec:
        """The inter-node link as seen by one accelerator.

        Latency is the NIC latency; bandwidth is this accelerator's share
        of the node's aggregate NIC bandwidth.
        """
        return self.inter_link.with_bandwidth(
            self.inter_bandwidth_per_accelerator_bits_per_s,
            name=f"{self.inter_link.name} (per-accelerator share)",
        )

    def with_accelerator(self, accelerator: AcceleratorSpec) -> "NodeSpec":
        """A copy with a different accelerator model."""
        return replace(self, accelerator=accelerator)

    def with_links(self, intra_link: LinkSpec = None,
                   inter_link: LinkSpec = None) -> "NodeSpec":
        """A copy with replacement links (None keeps the current one)."""
        return replace(
            self,
            intra_link=intra_link if intra_link is not None else self.intra_link,
            inter_link=inter_link if inter_link is not None else self.inter_link,
        )
