"""Numeric precision descriptions.

AMPeD's Eq. 2 scales the time a functional unit is busy by
``ceil(max(S_p, S_act) / S_FU)`` — the number of passes a functional unit
built for ``S_FU``-bit operands needs to process a ``max(S_p, S_act)``-bit
operand.  This module provides the precision vocabulary used everywhere:
parameter precision ``S_p``, activation precision ``S_act``, non-linear
precision ``S_nonlin``, gradient size ``S_g``, and the hardware-determined
functional-unit precisions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Common operand widths, in bits.
FP8 = 8
FP16 = 16
BF16 = 16
FP32 = 32
FP64 = 64


@dataclass(frozen=True)
class PrecisionPolicy:
    """Operand widths used during training, all in bits.

    Attributes mirror the paper's symbols:

    - ``parameter_bits`` — ``S_p``, weight storage precision.
    - ``activation_bits`` — ``S_act``, activation (and error) precision;
      also the width of every tensor moved by TP/PP/MoE communication.
    - ``nonlinear_bits`` — ``S_nonlin``, operand width of softmax /
      layernorm / GeLU evaluations.
    - ``gradient_bits`` — ``S_g``, width of each gradient value moved by
      the data-parallel all-reduce.
    """

    parameter_bits: int = FP16
    activation_bits: int = FP16
    nonlinear_bits: int = FP16
    gradient_bits: int = FP16

    def __post_init__(self) -> None:
        for name in ("parameter_bits", "activation_bits",
                     "nonlinear_bits", "gradient_bits"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ConfigurationError(
                    f"{name} must be a positive integer number of bits, "
                    f"got {value!r}")

    @property
    def mac_operand_bits(self) -> int:
        """``max(S_p, S_act)`` — the operand width seen by MAC units."""
        return max(self.parameter_bits, self.activation_bits)


def precision_passes(operand_bits: int, functional_unit_bits: int) -> int:
    """Number of functional-unit passes for one operand (Eq. 2's ceil).

    A 32-bit multiply on a 16-bit unit takes ``ceil(32/16) = 2`` passes;
    an 8-bit multiply on the same unit still takes one full pass.
    """
    if operand_bits <= 0:
        raise ConfigurationError(
            f"operand width must be positive, got {operand_bits}")
    if functional_unit_bits <= 0:
        raise ConfigurationError(
            f"functional-unit width must be positive, got "
            f"{functional_unit_bits}")
    return math.ceil(operand_bits / functional_unit_bits)


#: Mixed-precision FP16 training (the common Megatron configuration).
MIXED_FP16 = PrecisionPolicy()

#: Full FP32 training (the minGPT validation runs).
FULL_FP32 = PrecisionPolicy(parameter_bits=FP32, activation_bits=FP32,
                            nonlinear_bits=FP32, gradient_bits=FP32)

#: 8-bit training assumed by Case Study III for the GLaM exploration.
FP8_TRAINING = PrecisionPolicy(parameter_bits=FP8, activation_bits=FP8,
                               nonlinear_bits=FP8, gradient_bits=FP8)
