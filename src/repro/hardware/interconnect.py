"""Communication link descriptions.

AMPeD models every communication cost as ``latency + volume / bandwidth``
scaled by a topology factor, so a link is fully described by its latency
``C`` (seconds per message) and bandwidth ``BW`` (bits/second).  Intra-node
links (NVLink, PCIe, optical substrate) and inter-node links (InfiniBand
NICs, substrate-attached fibers) use the same type.

Node-level inter-node bandwidth is the per-NIC bandwidth multiplied by the
NIC count; :class:`~repro.hardware.node.NodeSpec` performs that
aggregation and exposes the per-accelerator share used by the equations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError, require_finite
from repro.units import BitsPerSecond, Seconds, gbps_to_bits_per_second


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point communication link.

    Parameters
    ----------
    name:
        Human-readable identifier ("NVLink 3", "HDR InfiniBand").
    latency_s:
        ``C`` in Eqs. 6, 7, 9, 11 — the fixed per-message startup cost.
    bandwidth_bits_per_s:
        ``BW`` — sustained unidirectional bandwidth of one link.
    """

    name: str
    latency_s: Seconds
    bandwidth_bits_per_s: BitsPerSecond

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("link name must be non-empty")
        require_finite("latency_s", self.latency_s)
        if self.latency_s < 0:
            raise ConfigurationError(
                f"latency_s must be non-negative, got {self.latency_s}")
        require_finite("bandwidth_bits_per_s", self.bandwidth_bits_per_s)
        if self.bandwidth_bits_per_s <= 0:
            raise ConfigurationError(
                f"bandwidth_bits_per_s must be positive, got "
                f"{self.bandwidth_bits_per_s}")

    def transfer_time(self, n_bits: float) -> Seconds:
        """Time to move ``n_bits`` over this link, latency included."""
        require_finite("transfer size", n_bits)
        if n_bits < 0:
            raise ConfigurationError(
                f"transfer size must be non-negative, got {n_bits}")
        return self.latency_s + n_bits / self.bandwidth_bits_per_s

    def scaled(self, bandwidth_factor: float,
               name: str = "") -> "LinkSpec":
        """A copy with bandwidth multiplied by ``bandwidth_factor``."""
        if bandwidth_factor <= 0:
            raise ConfigurationError(
                f"bandwidth factor must be positive, got {bandwidth_factor}")
        return replace(
            self,
            name=name or f"{self.name} (x{bandwidth_factor:g})",
            bandwidth_bits_per_s=(
                self.bandwidth_bits_per_s * bandwidth_factor),
        )

    def with_bandwidth(self, bandwidth_bits_per_s: float,
                       name: str = "") -> "LinkSpec":
        """A copy with an absolute replacement bandwidth."""
        return replace(self, name=name or self.name,
                       bandwidth_bits_per_s=bandwidth_bits_per_s)


# ---------------------------------------------------------------------------
# Catalog of common links.
#
# Latencies are not given in the paper; the defaults below are typical
# measured one-way latencies (NVLink ~ couple of microseconds end to end
# through NVSwitch, InfiniBand a few microseconds NIC-to-NIC) and are
# deliberately exposed as plain constructor arguments so studies can
# override them.
# ---------------------------------------------------------------------------

#: NVLink 2 as in the HGX-2 / V100 validation platform (~150 GB/s usable).
NVLINK2 = LinkSpec("NVLink 2 (V100)", latency_s=2e-6,
                   bandwidth_bits_per_s=1.2e12)

#: NVLink 3 on A100, Table IV: 2.4e12 bits/s.
NVLINK3 = LinkSpec("NVLink 3 (A100)", latency_s=2e-6,
                   bandwidth_bits_per_s=2.4e12)

#: NVLink 4 on H100, Table IV: 3.6e12 bits/s.
NVLINK4 = LinkSpec("NVLink 4 (H100)", latency_s=2e-6,
                   bandwidth_bits_per_s=3.6e12)

#: PCIe 3.0 x16, used by the GPipe P100 validation (Table III).
PCIE3_X16 = LinkSpec("PCIe 3.0 x16", latency_s=5e-6,
                     bandwidth_bits_per_s=gbps_to_bits_per_second(128.0))

#: InfiniBand NICs (per-card unidirectional bandwidth).
IB_EDR = LinkSpec("EDR InfiniBand", latency_s=5e-6,
                  bandwidth_bits_per_s=gbps_to_bits_per_second(100.0))
IB_HDR = LinkSpec("HDR InfiniBand", latency_s=5e-6,
                  bandwidth_bits_per_s=gbps_to_bits_per_second(200.0))
IB_NDR = LinkSpec("NDR InfiniBand", latency_s=5e-6,
                  bandwidth_bits_per_s=gbps_to_bits_per_second(400.0))


def optical_fiber_link(per_fiber_bandwidth_bits_per_s: float,
                       n_fibers: int,
                       latency_s: float = 1e-6) -> LinkSpec:
    """An optical-substrate inter-node attachment (Case Study III).

    The substrate attaches ``n_fibers`` dedicated fibers on its edge, each
    carrying the full accelerator off-chip bandwidth, bypassing NICs.
    Optical links also shave latency relative to electrical NIC paths.
    """
    if n_fibers < 1:
        raise ConfigurationError(
            f"n_fibers must be >= 1, got {n_fibers}")
    return LinkSpec(
        name=f"optical substrate ({n_fibers} fibers)",
        latency_s=latency_s,
        bandwidth_bits_per_s=per_fiber_bandwidth_bits_per_s * n_fibers,
    )
