"""Accelerator micro-architecture description.

The paper parameterizes an accelerator exactly as its Table IV does: a
clock frequency ``f``, a number of cores ``N_cores`` (streaming
multiprocessors on NVIDIA parts), ``N_FU`` matrix functional units per
core each ``W_FU`` lanes wide, and a separate pool of non-linear
functional units (``N_FU_nonlin`` of width ``W_FU_nonlin``).

The product ``f · N_cores · N_FU · W_FU`` reproduces the vendor FP16
tensor peak in FLOP/s for the A100 (312 TFLOP/s) and H100 (973 TFLOP/s)
rows of Table IV, so throughout this library operation counts are FLOPs
(1 MAC = 2 FLOPs) and "MAC throughput" means FLOP throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError, require_finite
from repro.hardware.precision import FP16
from repro.units import (
    Bytes,
    BitsPerSecond,
    FlopsPerSecond,
    Watts,
)


@dataclass(frozen=True)
class AcceleratorSpec:
    """One homogeneous accelerator (GPU or otherwise).

    Parameters
    ----------
    name:
        Human-readable identifier ("Nvidia A100").
    frequency_hz:
        Core clock ``f`` in cycles/second.
    n_cores:
        ``N_cores``, number of compute cores (SMs).
    n_fu:
        ``N_FU``, matrix (MAC) functional units per core.
    fu_width:
        ``W_FU``, lanes per matrix unit, expressed in FLOPs per cycle per
        unit at the native precision ``mac_fu_bits``.
    n_fu_nonlinear:
        ``N_FU_nonlin``, special-function units for softmax/GeLU/etc.
        (chip-wide count, matching Table IV's usage in Eq. 4 where no
        ``N_cores`` factor appears).
    fu_nonlinear_width:
        ``W_FU_nonlin``, lanes per non-linear unit.
    mac_fu_bits:
        ``S_FU_MAC``, native operand width of the MAC pipeline, bits.
    nonlinear_fu_bits:
        ``S_FU_nonlin``, native operand width of the non-linear pipeline.
    memory_bytes:
        HBM capacity available to one accelerator, in bytes.
    memory_bandwidth_bits_per_s:
        HBM bandwidth, bits/second (used by the roofline baseline).
    offchip_bandwidth_bits_per_s:
        Off-chip I/O bandwidth of the accelerator, bits/second.  For
        NVLink-connected GPUs this is the NVLink bandwidth; Case Study III
        scales it for future optically-connected designs.
    tdp_watts:
        Thermal design power, used by the energy model.
    """

    name: str
    frequency_hz: float
    n_cores: int
    n_fu: int
    fu_width: int
    n_fu_nonlinear: int
    fu_nonlinear_width: int
    mac_fu_bits: int = FP16
    nonlinear_fu_bits: int = FP16
    memory_bytes: Bytes = 0.0
    memory_bandwidth_bits_per_s: BitsPerSecond = 0.0
    offchip_bandwidth_bits_per_s: BitsPerSecond = 0.0
    tdp_watts: Watts = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("accelerator name must be non-empty")
        require_finite("frequency_hz", self.frequency_hz)
        if self.frequency_hz <= 0:
            raise ConfigurationError(
                f"frequency_hz must be positive, got {self.frequency_hz}")
        for name in ("n_cores", "n_fu", "fu_width",
                     "n_fu_nonlinear", "fu_nonlinear_width"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ConfigurationError(
                    f"{name} must be a positive integer, got {value!r}")
        for name in ("mac_fu_bits", "nonlinear_fu_bits"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ConfigurationError(
                    f"{name} must be a positive integer number of bits, "
                    f"got {value!r}")
        for name in ("memory_bytes", "memory_bandwidth_bits_per_s",
                     "offchip_bandwidth_bits_per_s", "tdp_watts"):
            require_finite(name, getattr(self, name))
            if getattr(self, name) < 0:
                raise ConfigurationError(
                    f"{name} must be non-negative, got {getattr(self, name)}")

    # -- throughputs --------------------------------------------------------

    @property
    def peak_mac_flops_per_s(self) -> FlopsPerSecond:
        """Peak MAC-pipeline throughput ``f·N_cores·N_FU·W_FU`` (FLOP/s).

        This is the 100%-efficiency throughput; Eq. 3 derates it by the
        microbatch efficiency ``eff(ub)``.
        """
        return (self.frequency_hz * self.n_cores
                * self.n_fu * self.fu_width)

    @property
    def peak_nonlinear_ops_per_s(self) -> FlopsPerSecond:
        """Peak non-linear throughput ``f·N_FU_nonlin·W_FU_nonlin`` (op/s),
        the reciprocal of Eq. 4."""
        return (self.frequency_hz * self.n_fu_nonlinear
                * self.fu_nonlinear_width)

    def with_offchip_bandwidth_scaled(self, factor: float) -> "AcceleratorSpec":
        """A copy with off-chip bandwidth multiplied by ``factor``.

        Case Study III's *Opt. 3* models future accelerator designs whose
        electrical-to-optical conversion sits next to the die, allowing 2x
        and 4x off-chip bandwidth without touching compute throughput.
        """
        if factor <= 0:
            raise ConfigurationError(
                f"bandwidth scale factor must be positive, got {factor}")
        return replace(
            self,
            name=f"{self.name} (x{factor:g} off-chip BW)",
            offchip_bandwidth_bits_per_s=(
                self.offchip_bandwidth_bits_per_s * factor),
        )
