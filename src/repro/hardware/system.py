"""Cluster (distributed system) description.

A system is ``n_nodes`` identical nodes.  This is the hardware half of an
AMPeD evaluation; the other half is the parallelism mapping
(:mod:`repro.parallelism`) describing how TP/PP/DP/MoE degrees are laid
out over intra-node and inter-node accelerators.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.hardware.node import NodeSpec
from repro.units import FlopsPerSecond


@dataclass(frozen=True)
class SystemSpec:
    """A homogeneous cluster of multi-accelerator nodes."""

    node: NodeSpec
    n_nodes: int

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError(
                f"n_nodes must be >= 1, got {self.n_nodes}")

    @property
    def n_accelerators(self) -> int:
        """Total accelerator count in the system."""
        return self.n_nodes * self.node.n_accelerators

    @property
    def accelerator(self):
        """Shorthand for the accelerator model used throughout."""
        return self.node.accelerator

    @property
    def peak_system_flops_per_s(self) -> FlopsPerSecond:
        """Aggregate 100%-efficiency MAC throughput of the whole system."""
        return self.n_accelerators * self.accelerator.peak_mac_flops_per_s

    def with_node(self, node: NodeSpec) -> "SystemSpec":
        """A copy with a replacement node description."""
        return replace(self, node=node)

    def with_n_nodes(self, n_nodes: int) -> "SystemSpec":
        """A copy with a different node count."""
        return replace(self, n_nodes=n_nodes)

    def repartitioned(self, accelerators_per_node: int,
                      n_nics: int = None) -> "SystemSpec":
        """The same total accelerator pool regrouped into different nodes.

        Case Study II keeps 1024 accelerators constant while sweeping the
        node size (1/2/4/8 accelerators + NICs per node); Case Study III
        grows the node to 16/32/48 accelerators on an optical substrate.
        The total accelerator count must be divisible by the new node
        size.
        """
        total = self.n_accelerators
        if accelerators_per_node < 1:
            raise ConfigurationError(
                f"accelerators_per_node must be >= 1, got "
                f"{accelerators_per_node}")
        if total % accelerators_per_node != 0:
            raise ConfigurationError(
                f"cannot regroup {total} accelerators into nodes of "
                f"{accelerators_per_node}")
        node = replace(
            self.node,
            n_accelerators=accelerators_per_node,
            n_nics=n_nics if n_nics is not None else self.node.n_nics,
        )
        return SystemSpec(node=node,
                          n_nodes=total // accelerators_per_node)

    def describe(self) -> str:
        """One-line summary used by reports and the CLI."""
        node = self.node
        return (f"{self.n_nodes} nodes x {node.n_accelerators} "
                f"{node.accelerator.name} ({self.n_accelerators} total), "
                f"intra: {node.intra_link.name}, "
                f"inter: {node.n_nics} x {node.inter_link.name}")
