"""Hardware descriptions: accelerators, links, nodes and systems.

The public surface mirrors the knobs of the paper's Tables I and IV: an
:class:`AcceleratorSpec` (clock, core count, functional units and widths),
:class:`LinkSpec` (latency + bandwidth), and their composition into
:class:`NodeSpec` and :class:`SystemSpec`.  :mod:`repro.hardware.catalog`
provides the concrete parts used by the paper's experiments.
"""

from repro.hardware.accelerator import AcceleratorSpec
from repro.hardware.catalog import (
    A100,
    ACCELERATORS,
    H100,
    P100,
    V100_SXM3,
    glam_h100_reference,
    gpipe_p100_node,
    hgx2_node,
    lowend_a100_cluster,
    megatron_a100_cluster,
)
from repro.hardware.interconnect import (
    IB_EDR,
    IB_HDR,
    IB_NDR,
    NVLINK2,
    NVLINK3,
    NVLINK4,
    PCIE3_X16,
    LinkSpec,
    optical_fiber_link,
)
from repro.hardware.node import NodeSpec
from repro.hardware.precision import (
    FP8,
    FP8_TRAINING,
    FP16,
    FP32,
    FULL_FP32,
    MIXED_FP16,
    PrecisionPolicy,
    precision_passes,
)
from repro.hardware.system import SystemSpec

__all__ = [
    "AcceleratorSpec",
    "LinkSpec",
    "NodeSpec",
    "SystemSpec",
    "PrecisionPolicy",
    "precision_passes",
    "FP8",
    "FP16",
    "FP32",
    "MIXED_FP16",
    "FULL_FP32",
    "FP8_TRAINING",
    "A100",
    "H100",
    "V100_SXM3",
    "P100",
    "ACCELERATORS",
    "NVLINK2",
    "NVLINK3",
    "NVLINK4",
    "PCIE3_X16",
    "IB_EDR",
    "IB_HDR",
    "IB_NDR",
    "optical_fiber_link",
    "hgx2_node",
    "megatron_a100_cluster",
    "lowend_a100_cluster",
    "glam_h100_reference",
    "gpipe_p100_node",
]
