"""Multi-level network fabric model for the inter-node link.

AMPeD abstracts the cluster network into a single latency/bandwidth
pair.  Real clusters run multi-level fat-trees whose upper levels are
often *oversubscribed*: a leaf switch with 32 down-links may have only
8 up-links, so traffic leaving the leaf's subtree sees 1/4 of the port
bandwidth.  This module derives AMPeD's effective inter-node
:class:`~repro.hardware.interconnect.LinkSpec` from such a fabric: the
deeper in the tree two communicating nodes are separated, the less
bandwidth and the more latency each flow gets.

It plays the role ASTRA-sim-style topology studies play for the related
work (§III): a network substrate under the analytical model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError, require_finite_fields
from repro.hardware.interconnect import LinkSpec
from repro.hardware.system import SystemSpec
from repro.units import BitsPerSecond, Seconds


@dataclass(frozen=True)
class FabricLevel:
    """One switching level of a fat-tree.

    Parameters
    ----------
    name:
        Level label ("leaf", "spine", "core").
    down_ports:
        Children per switch at this level (nodes for the leaf level,
        switches above).
    up_ports:
        Uplinks per switch toward the next level (0 for the top level).
        ``down_ports / up_ports`` is the oversubscription ratio traffic
        pays to leave this level's subtree.
    hop_latency_s:
        One-way latency added per traversal of this level's switch.
    """

    name: str
    down_ports: int
    up_ports: int
    hop_latency_s: float

    def __post_init__(self) -> None:
        require_finite_fields(self)
        if self.down_ports < 1:
            raise ConfigurationError(
                f"down_ports must be >= 1, got {self.down_ports}")
        if self.up_ports < 0:
            raise ConfigurationError(
                f"up_ports must be >= 0, got {self.up_ports}")
        if self.hop_latency_s < 0:
            raise ConfigurationError(
                f"hop_latency_s must be non-negative, got "
                f"{self.hop_latency_s}")

    @property
    def oversubscription(self) -> float:
        """Bandwidth taper for traffic leaving this subtree (>= 1 for
        tapered fabrics; < 1 would be over-provisioned, allowed)."""
        if self.up_ports == 0:
            raise ConfigurationError(
                f"level {self.name!r} has no uplinks; traffic cannot "
                f"leave it")
        return self.down_ports / self.up_ports


@dataclass(frozen=True)
class FatTreeFabric:
    """A fat-tree connecting the cluster's nodes.

    Parameters
    ----------
    port_bandwidth_bits_per_s:
        NIC/port speed at the node level.
    nic_latency_s:
        Node-to-leaf-switch latency (paid once at each end).
    levels:
        Switching levels from the leaf upward.  The topmost level needs
        no uplinks.
    """

    port_bandwidth_bits_per_s: float
    nic_latency_s: float
    levels: Tuple[FabricLevel, ...]

    def __post_init__(self) -> None:
        require_finite_fields(self)
        if self.port_bandwidth_bits_per_s <= 0:
            raise ConfigurationError(
                f"port bandwidth must be positive, got "
                f"{self.port_bandwidth_bits_per_s}")
        if self.nic_latency_s < 0:
            raise ConfigurationError(
                f"nic_latency_s must be non-negative, got "
                f"{self.nic_latency_s}")
        if not self.levels:
            raise ConfigurationError("a fabric needs at least one level")

    @property
    def max_nodes(self) -> int:
        """Nodes the full tree can host."""
        total = 1
        for level in self.levels:
            total *= level.down_ports
        return total

    def levels_to_span(self, n_nodes: int) -> int:
        """How many switching levels a group of ``n_nodes`` must climb
        (1 = all behind one leaf)."""
        if n_nodes < 1:
            raise ConfigurationError(
                f"n_nodes must be >= 1, got {n_nodes}")
        if n_nodes > self.max_nodes:
            raise ConfigurationError(
                f"fabric hosts at most {self.max_nodes} nodes, "
                f"asked for {n_nodes}")
        reach = 1
        for depth, level in enumerate(self.levels, start=1):
            reach *= level.down_ports
            if n_nodes <= reach:
                return depth
        return len(self.levels)

    def effective_bandwidth(self, n_nodes: int) -> BitsPerSecond:
        """Per-flow bandwidth for a group spanning ``n_nodes``.

        The flow pays the product of oversubscription ratios of every
        level it must leave (all levels *below* the spanning level).
        """
        depth = self.levels_to_span(n_nodes)
        taper = 1.0
        for level in self.levels[:depth - 1]:
            taper *= level.oversubscription
        # an over-provisioned fabric (taper < 1) cannot exceed the
        # node's own port speed
        return self.port_bandwidth_bits_per_s / max(taper, 1.0)

    def effective_latency(self, n_nodes: int) -> Seconds:
        """One-way latency for a group spanning ``n_nodes``: NIC at each
        end plus up-and-down traversal of the spanned levels."""
        depth = self.levels_to_span(n_nodes)
        switch_hops = 2 * depth - 1  # up (depth-1), across (1), down (depth-1)
        hop_latency = sum(level.hop_latency_s
                          for level in self.levels[:depth])
        # approximate per-hop latency as the mean of traversed levels
        per_hop = hop_latency / depth
        return 2 * self.nic_latency_s + switch_hops * per_hop

    def effective_link(self, n_nodes: int, name: str = "") -> LinkSpec:
        """The :class:`LinkSpec` AMPeD should use for a communication
        group spanning ``n_nodes`` nodes of this fabric."""
        return LinkSpec(
            name=name or f"fabric link ({n_nodes} nodes, "
                         f"{self.levels_to_span(n_nodes)} levels)",
            latency_s=self.effective_latency(n_nodes),
            bandwidth_bits_per_s=self.effective_bandwidth(n_nodes),
        )


def apply_fabric(system: SystemSpec, fabric: FatTreeFabric) -> SystemSpec:
    """A copy of ``system`` whose inter-node link reflects cluster-wide
    communication over ``fabric`` (the conservative choice: collectives
    at full cluster span)."""
    link = fabric.effective_link(system.n_nodes)
    return system.with_node(system.node.with_links(inter_link=link))


def two_level_fat_tree(port_bandwidth_bits_per_s: float,
                       nodes_per_leaf: int = 16,
                       n_leaves: int = 32,
                       oversubscription: float = 1.0,
                       nic_latency_s: float = 1e-6,
                       hop_latency_s: float = 5e-7) -> FatTreeFabric:
    """A standard leaf-spine fabric with a tunable taper.

    ``oversubscription = 1`` is a full-bisection (rail-optimized)
    fabric; 4 means each leaf's uplinks carry a quarter of its downlink
    capacity — the common cost-cut this module exists to quantify.
    """
    if oversubscription <= 0:
        raise ConfigurationError(
            f"oversubscription must be positive, got "
            f"{oversubscription}")
    up_ports = max(1, round(nodes_per_leaf / oversubscription))
    leaf = FabricLevel("leaf", down_ports=nodes_per_leaf,
                       up_ports=up_ports, hop_latency_s=hop_latency_s)
    spine = FabricLevel("spine", down_ports=n_leaves, up_ports=0,
                        hop_latency_s=hop_latency_s)
    return FatTreeFabric(
        port_bandwidth_bits_per_s=port_bandwidth_bits_per_s,
        nic_latency_s=nic_latency_s,
        levels=(leaf, spine),
    )
