"""Cluster network fabrics: deriving AMPeD's inter-node link from a
multi-level fat-tree with oversubscription."""

from repro.network.fabric import (
    FabricLevel,
    FatTreeFabric,
    apply_fabric,
    two_level_fat_tree,
)

__all__ = [
    "FabricLevel",
    "FatTreeFabric",
    "apply_fabric",
    "two_level_fat_tree",
]
