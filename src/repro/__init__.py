"""AMPeD — An Analytical Model for Performance in Distributed Training of
Transformers (ISPASS 2023) — full reproduction.

The top-level namespace re-exports the handful of names a typical study
needs; the subpackages hold the rest:

- :mod:`repro.core` — the analytical model (Eqs. 1-12).
- :mod:`repro.transformer` — model descriptions and operation counts.
- :mod:`repro.hardware` — accelerators, links, nodes, systems.
- :mod:`repro.parallelism` — mappings, topology factors, efficiency.
- :mod:`repro.collectives` — step-level collective simulator.
- :mod:`repro.pipeline` — discrete-event pipeline-schedule simulator.
- :mod:`repro.memory` / :mod:`repro.energy` — footprint and energy models.
- :mod:`repro.search` — design-space exploration.
- :mod:`repro.baselines` — roofline and ideal-scaling baselines.
- :mod:`repro.validation` — published data and error reporting.
- :mod:`repro.experiments` — every table and figure of the paper.
- :mod:`repro.fitting` — efficiency-curve fitting and calibration.
- :mod:`repro.hetero` — heterogeneous-accelerator pipelines.
- :mod:`repro.sensitivity` — per-knob elasticity analysis.
- :mod:`repro.cost` — dollars and CO2 for training runs.
- :mod:`repro.network` — fat-tree fabrics behind the inter-node link.
- :mod:`repro.runtime` — ramps, checkpointing, failure inflation.
"""

from repro.core.breakdown import TrainingEstimate, TrainingTimeBreakdown
from repro.core.model import AMPeD
from repro.core.zero import ZeroConfig
from repro.hardware.accelerator import AcceleratorSpec
from repro.hardware.interconnect import LinkSpec
from repro.hardware.node import NodeSpec
from repro.hardware.precision import PrecisionPolicy
from repro.hardware.system import SystemSpec
from repro.parallelism.microbatch import MicrobatchEfficiency
from repro.parallelism.spec import ParallelismSpec, spec_from_totals
from repro.transformer.config import MoEConfig, TransformerConfig

__version__ = "1.0.0"

__all__ = [
    "AMPeD",
    "TrainingTimeBreakdown",
    "TrainingEstimate",
    "ZeroConfig",
    "TransformerConfig",
    "MoEConfig",
    "AcceleratorSpec",
    "LinkSpec",
    "NodeSpec",
    "SystemSpec",
    "PrecisionPolicy",
    "ParallelismSpec",
    "spec_from_totals",
    "MicrobatchEfficiency",
    "__version__",
]
