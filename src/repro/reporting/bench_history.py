"""Per-PR benchmark history report: ``BENCH_trajectory.json`` as text.

Every ``bench_gate.py`` run appends one row to the trajectory; this
module renders that ledger as aligned tables plus ASCII sparklines —
one table per benchmark suite (DSE throughput, observability
overhead, serve latency), all sharing the same sparkline helper — so
the performance story across PRs is readable straight from a
terminal:

    PYTHONPATH=src python -m repro.reporting.bench_history
    PYTHONPATH=src python -m repro.reporting.bench_history --last 10

Rows predating a phase or suite (the vectorized backend landed after
the compiled one; the obs/serve columns only exist once
``BENCH_obs.json``/``BENCH_serve.json`` do; no-NumPy environments
skip vectorized entirely) simply hold ``None`` — the table prints a
dash and the sparkline leaves a gap, so mixed-era trajectories render
without special-casing.  Suites absent from *every* row are omitted
wholesale.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError, ReproError
from repro.reporting.tables import render_table

#: Sparkline glyph ramp, lowest to highest; a space marks a missing
#: sample so eras without a phase read as gaps, not zeros.
SPARK_LEVELS = ".:-=+*#@"

#: ``(column header, trajectory field)`` per phase column, in display
#: order.
PHASE_COLUMNS = (
    ("reference/s", "reference_mappings_per_s"),
    ("fast/s", "fast_mappings_per_s"),
    ("compiled/s", "compiled_mappings_per_s"),
    ("vectorized/s", "vectorized_mappings_per_s"),
    ("crossprod/s", "crossproduct_mappings_per_s"),
)

#: Observability-overhead suite columns (``BENCH_obs.json``-derived).
OBS_COLUMNS = (
    ("overhead x", "obs_enabled_overhead"),
)

#: Serve-latency suite columns (``BENCH_serve.json``-derived).
SERVE_COLUMNS = (
    ("warm p50 s", "serve_warm_p50_s"),
    ("warm req/s", "serve_warm_requests_per_s"),
    ("burst req/s", "serve_burst_requests_per_s"),
)


def load_trajectory(path) -> List[dict]:
    """The trajectory rows at ``path`` (a JSON list of dicts)."""
    target = Path(path)
    if not target.exists():
        raise ConfigurationError(
            f"no benchmark trajectory at {target} — run "
            f"'PYTHONPATH=src python benchmarks/bench_gate.py' to "
            f"record the first entry")
    try:
        history = json.loads(target.read_text())
    except json.JSONDecodeError as error:
        raise ConfigurationError(
            f"{target} is not valid JSON: {error}") from error
    if not isinstance(history, list) \
            or not all(isinstance(row, dict) for row in history):
        raise ConfigurationError(
            f"{target} must hold a JSON list of entry dicts")
    return history


def sparkline(values: Sequence[Optional[float]]) -> str:
    """One character per sample, scaled to the finite range; ``None``
    renders as a gap."""
    finite = [value for value in values if value is not None]
    if not finite:
        return " " * len(values)
    low, high = min(finite), max(finite)
    spread = (high - low) or 1.0
    top = len(SPARK_LEVELS) - 1
    marks = []
    for value in values:
        if value is None:
            marks.append(" ")
        else:
            marks.append(SPARK_LEVELS[round((value - low) / spread
                                            * top)])
    return "".join(marks)


def _rate_cell(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:,.0f}"


def _measure_cell(value: Optional[float]) -> str:
    """Mixed-magnitude cell: request rates and sub-ms latencies share
    a table, so pick the format by size."""
    if value is None:
        return "-"
    if abs(value) >= 100:
        return f"{value:,.0f}"
    return f"{value:.4g}"


#: ``(suite title, columns, cell formatter)`` per rendered table.  The
#: DSE suite always renders; the others only once some row carries at
#: least one of their fields.
SUITE_TABLES = (
    ("DSE throughput", PHASE_COLUMNS, _rate_cell),
    ("observability overhead", OBS_COLUMNS, _measure_cell),
    ("serve latency", SERVE_COLUMNS, _measure_cell),
)


def _suite_section(title: str, columns, cell, entries: List[dict]
                   ) -> str:
    """One suite's table plus its per-column sparklines."""
    rows = []
    for entry in entries:
        rows.append([
            str(entry.get("commit", "unknown")),
            str(entry.get("timestamp", ""))[:10],
        ] + [cell(entry.get(field)) for _, field in columns])
    table = render_table(
        ["commit", "date"] + [header for header, _ in columns],
        rows, title=f"{title} trajectory ({len(entries)} runs)")
    lines = [table, ""]
    width = max(len(header) for header, _ in columns)
    for header, field in columns:
        series = [entry.get(field) for entry in entries]
        lines.append(f"{header.ljust(width)} {sparkline(series)}")
    lines.append(f"{'scale'.ljust(width)} low '{SPARK_LEVELS[0]}' .. "
                 f"high '{SPARK_LEVELS[-1]}', gap = phase absent")
    return "\n".join(lines)


def render_history(entries: List[dict],
                   last: Optional[int] = None) -> str:
    """The trajectory as one table + sparkline block per suite."""
    if not entries:
        raise ConfigurationError(
            "benchmark trajectory is empty — run bench_gate.py to "
            "record the first entry")
    if last is not None:
        if last < 1:
            raise ConfigurationError(
                f"--last must be at least 1, got {last}")
        entries = entries[-last:]
    sections = []
    for index, (title, columns, cell) in enumerate(SUITE_TABLES):
        present = any(entry.get(field) is not None
                      for entry in entries for _, field in columns)
        if index == 0 or present:
            sections.append(
                _suite_section(title, columns, cell, entries))
    return "\n\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.reporting.bench_history",
        description="Render BENCH_trajectory.json as a per-PR "
                    "throughput table with sparklines.")
    parser.add_argument(
        "--path", default="BENCH_trajectory.json",
        help="trajectory file (default: ./BENCH_trajectory.json)")
    parser.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="only the most recent N runs")
    args = parser.parse_args(argv)
    try:
        print(render_history(load_trajectory(args.path),
                             last=args.last))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via -m
    sys.exit(main())
