"""Minimal ASCII charts for the benchmark harness.

Two marks cover everything the paper's figures need: horizontal bar
charts (Fig. 3's breakdown, Fig. 11's optimization ladder) and
multi-series line charts over a log-ish x-axis (the scaling and sweep
figures).  Output is deliberately plain text so it renders anywhere.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.errors import ConfigurationError

_BAR = "#"
_MARKERS = "ox+*sd^v"


def bar_chart(labels: Sequence[str], values: Sequence[float],
              title: Optional[str] = None, width: int = 50,
              unit: str = "") -> str:
    """Horizontal bar chart; bars scale to the largest value."""
    if len(labels) != len(values):
        raise ConfigurationError(
            f"{len(labels)} labels vs {len(values)} values")
    if not values:
        raise ConfigurationError("bar chart needs at least one value")
    if any(v < 0 for v in values):
        raise ConfigurationError(f"values must be non-negative: {values}")
    peak = max(values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    if title:
        lines += [title, "=" * len(title)]
    for label, value in zip(labels, values):
        bar = _BAR * max(1 if value > 0 else 0,
                         round(width * value / peak))
        lines.append(f"{label.ljust(label_width)} | {bar} "
                     f"{value:.4g}{(' ' + unit) if unit else ''}")
    return "\n".join(lines)


def line_chart(x_values: Sequence[float],
               series: Dict[str, Sequence[float]],
               title: Optional[str] = None,
               height: int = 12, width: int = 60) -> str:
    """Multi-series scatter/line chart on a character grid.

    ``series`` maps a name to y-values aligned with ``x_values``.  Each
    series gets a marker; a legend follows the grid.  Both axes are
    linear; x-positions are spread by rank when values are uneven (the
    sweeps use 2^k grids, where rank spacing reads best).
    """
    if not x_values:
        raise ConfigurationError("line chart needs x values")
    if not series:
        raise ConfigurationError("line chart needs at least one series")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ConfigurationError(
                f"series {name!r} has {len(ys)} points, expected "
                f"{len(x_values)}")

    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    spread = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    n = len(x_values)
    for index, (name, ys) in enumerate(sorted(series.items())):
        marker = _MARKERS[index % len(_MARKERS)]
        for i, y in enumerate(ys):
            col = 0 if n == 1 else round(i * (width - 1) / (n - 1))
            row = (height - 1
                   - round((y - y_min) / spread * (height - 1)))
            grid[row][col] = marker

    lines = []
    if title:
        lines += [title, "=" * len(title)]
    lines.append(f"y: {y_min:.4g} .. {y_max:.4g}")
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f"x: {x_values[0]:g} .. {x_values[-1]:g} "
                 f"({n} points, rank-spaced)")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}"
        for i, name in enumerate(sorted(series)))
    lines.append(legend)
    return "\n".join(lines)
