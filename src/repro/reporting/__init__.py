"""Plain-text tables, ASCII charts, CSV/JSON export and sweep ledgers."""

from repro.reporting.ascii_plot import bar_chart, line_chart
from repro.reporting.export import export_csv, export_json, load_json
from repro.reporting.markdown import MarkdownReport, render_markdown_table
from repro.reporting.sweep import SweepReport
from repro.reporting.tables import render_table

__all__ = [
    "render_table",
    "render_markdown_table",
    "MarkdownReport",
    "SweepReport",
    "bar_chart",
    "line_chart",
    "export_csv",
    "export_json",
    "load_json",
]
