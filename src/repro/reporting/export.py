"""CSV / JSON export of experiment series.

Every experiment module returns plain data (lists of dataclasses or
dicts); these helpers persist them so downstream plotting or diffing
does not need to re-run the sweeps.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Sequence, Union

from repro.errors import ConfigurationError

PathLike = Union[str, Path]


def export_csv(path: PathLike, headers: Sequence[str],
               rows: Sequence[Sequence]) -> Path:
    """Write rows to ``path`` as CSV, creating parent directories."""
    if not headers:
        raise ConfigurationError("CSV export needs at least one column")
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {row!r} has {len(row)} cells, expected "
                f"{len(headers)}")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return target


def export_json(path: PathLike, payload) -> Path:
    """Write a JSON-serializable payload to ``path`` (indented)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target


def load_json(path: PathLike):
    """Read back a payload written by :func:`export_json`."""
    with Path(path).open() as handle:
        return json.load(handle)
