"""Structured accounting for resilient design-space sweeps.

A long sweep is only trustworthy when it can say what happened to every
candidate: evaluated, resumed from a journal, skipped (and *why*), or
lost to a worker failure.  :class:`SweepReport` is that ledger — the
resilient sweep runtime (:mod:`repro.search.resilience`) fills one in
as it runs and surfaces it next to the ranked results, so "the sweep
finished" and "the sweep covered the space" stop being the same claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.reporting.tables import render_table


@dataclass
class SweepReport:
    """Counters describing how a sweep covered its candidate space.

    Attributes
    ----------
    n_candidates:
        Size of the full candidate space (resumed + pending).
    evaluated:
        Candidates fully evaluated *this run*.
    resumed:
        Candidates restored from the journal instead of re-evaluated.
    skipped:
        Per-category counts of discarded candidates (categories from
        :data:`repro.search.dse.SKIP_CATEGORIES`).
    retried:
        Work batches that were re-submitted after a worker timeout,
        crash, or unexpected exception.
    worker_errors:
        Candidates that kept raising non-``ReproError`` exceptions even
        serially and were journaled as ``worker_error`` skips.
    degraded:
        True when the runtime abandoned the process pool for serial
        execution; ``degraded_reason`` says why.
    partial:
        True when the sweep was cancelled before covering the space —
        the ranking is exact over everything evaluated so far.
    journal_path:
        Where progress was persisted (``None`` when journaling is off).
    """

    n_candidates: int = 0
    evaluated: int = 0
    resumed: int = 0
    skipped: Dict[str, int] = field(default_factory=dict)
    retried: int = 0
    worker_errors: int = 0
    degraded: bool = False
    degraded_reason: str = ""
    partial: bool = False
    journal_path: Optional[str] = None

    def record_skip(self, category: str) -> None:
        """Count one skipped candidate under ``category``."""
        self.skipped[category] = self.skipped.get(category, 0) + 1

    @property
    def total_skipped(self) -> int:
        """Candidates discarded across every skip category."""
        return sum(self.skipped.values())

    @property
    def covered(self) -> int:
        """Candidates with a journaled fate (evaluated/resumed/skipped)."""
        return self.evaluated + self.resumed + self.total_skipped

    def as_dict(self) -> dict:
        """JSON-serializable snapshot (journal footers, bench payloads)."""
        return {
            "n_candidates": self.n_candidates,
            "evaluated": self.evaluated,
            "resumed": self.resumed,
            "skipped": dict(sorted(self.skipped.items())),
            "retried": self.retried,
            "worker_errors": self.worker_errors,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "partial": self.partial,
            "journal_path": self.journal_path,
        }

    def format_table(self, title: str = "sweep coverage") -> str:
        """A small aligned text table of the coverage counters."""
        rows = [("candidates", self.n_candidates),
                ("evaluated", self.evaluated),
                ("resumed from journal", self.resumed)]
        rows += [(f"skipped: {category}", count)
                 for category, count in sorted(self.skipped.items())]
        rows += [("batches retried", self.retried),
                 ("worker errors", self.worker_errors)]
        if self.degraded:
            rows.append(("degraded to serial", self.degraded_reason))
        if self.partial:
            rows.append(("PARTIAL", "sweep interrupted before full "
                                    "coverage"))
        if self.journal_path:
            rows.append(("journal", self.journal_path))
        return render_table(["counter", "value"],
                            [(k, str(v)) for k, v in rows], title=title)
