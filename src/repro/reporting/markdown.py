"""GitHub-flavored-markdown rendering for reports.

The plain-text renderer (:mod:`repro.reporting.tables`) targets
terminals and CI logs; this module targets committed artifacts —
``amped export`` writes a ``report.md`` with every reproduced series as
a markdown table.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ConfigurationError


def render_markdown_table(headers: Sequence[str],
                          rows: Sequence[Sequence],
                          float_format: str = "{:.4g}") -> str:
    """Render rows as a GitHub-flavored markdown table.

    Pipes inside cells are escaped; floats go through ``float_format``.
    """
    if not headers:
        raise ConfigurationError("table needs at least one column")
    lines = ["| " + " | ".join(_cell(h, float_format)
                               for h in headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {row!r} has {len(row)} cells, expected "
                f"{len(headers)}")
        lines.append("| " + " | ".join(_cell(cell, float_format)
                                       for cell in row) + " |")
    return "\n".join(lines)


def _cell(value, float_format: str) -> str:
    if isinstance(value, bool):
        text = str(value)
    elif isinstance(value, float):
        text = float_format.format(value)
    else:
        text = str(value)
    return text.replace("|", "\\|")


class MarkdownReport:
    """An incrementally-built markdown document."""

    def __init__(self, title: str) -> None:
        if not title:
            raise ConfigurationError("report title must be non-empty")
        self._parts: List[str] = [f"# {title}"]

    def add_section(self, heading: str,
                    body: Optional[str] = None) -> "MarkdownReport":
        """Append a ``##`` section with optional prose."""
        self._parts.append(f"## {heading}")
        if body:
            self._parts.append(body)
        return self

    def add_table(self, headers: Sequence[str],
                  rows: Sequence[Sequence],
                  caption: Optional[str] = None) -> "MarkdownReport":
        """Append a markdown table with an optional italic caption."""
        self._parts.append(render_markdown_table(headers, rows))
        if caption:
            self._parts.append(f"*{caption}*")
        return self

    def render(self) -> str:
        """The full document."""
        return "\n\n".join(self._parts) + "\n"
