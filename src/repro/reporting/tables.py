"""Plain-text table rendering.

The benchmark harness prints every reproduced table and figure as
aligned text so the reproduction is legible in CI logs without plotting
dependencies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ConfigurationError


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None,
                 float_format: str = "{:.4g}") -> str:
    """Render rows as an aligned text table.

    Cells may be any type; floats are formatted with ``float_format``,
    everything else with ``str``.  Column widths adapt to content.
    """
    if not headers:
        raise ConfigurationError("table needs at least one column")
    formatted_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {row!r} has {len(row)} cells, expected "
                f"{len(headers)}")
        formatted_rows.append([_format_cell(cell, float_format)
                               for cell in row])

    widths = [len(h) for h in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted_rows:
        lines.append("  ".join(cell.rjust(w) if _is_numeric(cell)
                               else cell.ljust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(cell, float_format: str) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return float_format.format(cell)
    return str(cell)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell)
    except ValueError:
        return False
    return True
