"""Model-vs-measured drift: is the calibrated model still honest?

The last stage of the observability loop: given a (possibly freshly
calibrated) :class:`~repro.core.model.AMPeD` scenario and the measured
observations :mod:`repro.obs.ingest` extracted, diff the modeled
per-term times against the measured ones and flag every term whose
relative error exceeds a threshold.  ``amped calibrate --report``
prints/writes this; run it periodically against production traces to
catch the model drifting away from the machine it was calibrated on
(kernel upgrades, link renegotiation, a changed collective algorithm).

Instrumented with its own observability: a ``calibrate.drift`` span
around the evaluation and ``drift.*`` metrics —

==========================  =============================================
``drift.max_rel_error``     gauge, worst |relative error| over all terms
``drift.flagged_terms``     gauge, count of terms above the threshold
``drift.observations``      counter, observations checked (cumulative)
==========================  =============================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Sequence

from repro.core.model import AMPeD
from repro.errors import ConfigurationError, require_finite_fields
from repro.obs.ingest import TERM_NAMES, EstimateObservation
from repro.obs.metrics import get_metrics
from repro.obs.trace import span
from repro.reporting.tables import render_table

#: Default relative-error threshold above which a term is flagged.
DEFAULT_DRIFT_THRESHOLD = 0.05


@dataclass(frozen=True)
class TermDrift:  # amplint: disable=AMP005 — max/mean_rel_error carry inf as designed "measured zero, modeled non-zero" reporting values
    """Aggregated modeled-vs-measured error for one breakdown term."""

    term: str
    n_samples: int
    measured_total_s: float
    modeled_total_s: float
    max_abs_rel_error: float
    mean_rel_error: float
    flagged: bool

    @property
    def total_rel_error(self) -> float:
        """Relative error of the term's summed time."""
        if self.measured_total_s != 0.0:
            return (self.modeled_total_s - self.measured_total_s) \
                / self.measured_total_s
        return 0.0 if self.modeled_total_s == 0.0 else math.inf  # amplint: disable=AMP003 — reporting value: zero measurement vs non-zero prediction


@dataclass(frozen=True)
class DriftReport:
    """Per-term drift between a model and a set of observations."""

    threshold: float
    n_observations: int
    terms: List[TermDrift]

    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def max_rel_error(self) -> float:
        """Worst per-sample |relative error| across every term."""
        return max((item.max_abs_rel_error for item in self.terms),
                   default=0.0)

    @property
    def flagged(self) -> List[TermDrift]:
        """Terms whose worst sample exceeds the threshold."""
        return [item for item in self.terms if item.flagged]

    @property
    def healthy(self) -> bool:
        """True when no term drifts past the threshold."""
        return not self.flagged

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (``amped calibrate --report``).

        Non-finite relative errors (a measured-zero term the model
        prices) serialize as ``null`` so the payload stays strict JSON.
        """
        def finite_or_none(value: float):
            return value if math.isfinite(value) else None

        return {
            "threshold": self.threshold,
            "n_observations": self.n_observations,
            "max_rel_error": finite_or_none(self.max_rel_error),
            "healthy": self.healthy,
            "terms": [{
                "term": item.term,
                "n_samples": item.n_samples,
                "measured_total_s": item.measured_total_s,
                "modeled_total_s": item.modeled_total_s,
                "max_abs_rel_error": finite_or_none(
                    item.max_abs_rel_error),
                "mean_rel_error": finite_or_none(item.mean_rel_error),
                "flagged": item.flagged,
            } for item in self.terms],
        }

    def format_table(self) -> str:
        """Aligned text table, worst term first."""
        ordered = sorted(self.terms,
                         key=lambda item: -item.max_abs_rel_error)
        rows = [(item.term, item.n_samples,
                 f"{item.measured_total_s:.6g}",
                 f"{item.modeled_total_s:.6g}",
                 f"{item.max_abs_rel_error:+.3%}"
                 if math.isfinite(item.max_abs_rel_error) else "inf",
                 "DRIFT" if item.flagged else "ok")
                for item in ordered]
        verdict = "healthy" if self.healthy else (
            f"{len(self.flagged)} term(s) above threshold")
        return render_table(
            ["term", "samples", "measured (s)", "modeled (s)",
             "worst rel err", "status"],
            rows,
            title=f"model-vs-measured drift over "
                  f"{self.n_observations} observation(s) — {verdict} "
                  f"(threshold {self.threshold:.1%})")


def compute_drift(amped: AMPeD,
                  observations: Sequence[EstimateObservation],
                  threshold: float = DEFAULT_DRIFT_THRESHOLD
                  ) -> DriftReport:
    """Diff ``amped``'s per-term predictions against measurements.

    Each observation is evaluated at its own mapping and batch size
    (``amped``'s mapping is the fallback for observations that carry
    none); terms absent from an observation are skipped.
    """
    if not 0 < threshold:
        raise ConfigurationError(
            f"drift threshold must be positive, got {threshold!r}")
    if not observations:
        raise ConfigurationError("no observations to compute drift on")
    with span("calibrate.drift", category="fitting",
              attrs={"n_observations": len(observations),
                     "threshold": threshold}):
        per_term: Dict[str, List[float]] = {}
        measured_totals: Dict[str, float] = {}
        modeled_totals: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for observation in observations:
            mapping = observation.mapping or amped.parallelism
            global_batch = observation.global_batch
            if global_batch <= 0:
                raise ConfigurationError(
                    f"observation {observation.source or '<unknown>'} "
                    f"carries no positive global_batch")
            modeled = replace(amped, parallelism=mapping,
                              evaluation_path="collapsed",
                              validate=False) \
                .estimate_batch(global_batch).as_dict()
            for term in TERM_NAMES:
                if term not in observation.terms:
                    continue
                measured = float(observation.terms[term])
                predicted = modeled[term]
                if measured != 0.0:
                    rel = (predicted - measured) / measured
                elif predicted == 0.0:
                    rel = 0.0
                else:
                    rel = math.inf  # amplint: disable=AMP003 — reporting value: zero measurement vs non-zero prediction
                per_term.setdefault(term, []).append(rel)
                measured_totals[term] = measured_totals.get(term, 0.0) \
                    + measured
                modeled_totals[term] = modeled_totals.get(term, 0.0) \
                    + predicted
                counts[term] = counts.get(term, 0) + 1
        terms = []
        for term in TERM_NAMES:
            if term not in per_term:
                continue
            rels = per_term[term]
            worst = max(abs(value) for value in rels)
            finite = [value for value in rels if math.isfinite(value)]
            mean = sum(finite) / len(finite) if finite else math.inf  # amplint: disable=AMP003 — reporting value: every sample was infinitely wrong
            terms.append(TermDrift(
                term=term,
                n_samples=counts[term],
                measured_total_s=measured_totals[term],
                modeled_total_s=modeled_totals[term],
                max_abs_rel_error=worst,
                mean_rel_error=mean,
                flagged=worst > threshold,
            ))
        report = DriftReport(threshold=threshold,
                             n_observations=len(observations),
                             terms=terms)
        metrics = get_metrics()
        metrics.gauge("drift.max_rel_error").set(
            report.max_rel_error if math.isfinite(report.max_rel_error)
            else -1.0)
        metrics.gauge("drift.flagged_terms").set(len(report.flagged))
        metrics.counter("drift.observations").inc(len(observations))
        return report
