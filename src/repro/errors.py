"""Exception hierarchy for the AMPeD reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers that drive large design-space sweeps can catch a single type and
skip infeasible configurations without masking genuine programming errors
(``TypeError``, ``AttributeError`` and friends still propagate).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A model, hardware or parallelism description is internally invalid.

    Raised when a single object fails its own validation, e.g. a
    transformer with zero layers or a link with negative bandwidth.
    """


class MappingError(ReproError):
    """A parallelism mapping does not fit the target system.

    Raised when intra-node degrees do not multiply to the number of
    accelerators per node, inter-node degrees do not multiply to the node
    count, or a degree does not divide the quantity it partitions.
    """


class MemoryCapacityError(ReproError):
    """A configuration does not fit in accelerator memory.

    Carries the computed footprint and the capacity so sweep drivers can
    report *how far* over budget a configuration is.
    """

    def __init__(self, message: str, required_bytes: float = 0.0,
                 available_bytes: float = 0.0) -> None:
        super().__init__(message)
        self.required_bytes = required_bytes
        self.available_bytes = available_bytes


class ValidationDataError(ReproError):
    """A published reference dataset is missing or inconsistent."""


class SimulationError(ReproError):
    """A discrete-event or step simulation reached an invalid state."""
