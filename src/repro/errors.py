"""Exception hierarchy for the AMPeD reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers that drive large design-space sweeps can catch a single type and
skip infeasible configurations without masking genuine programming errors
(``TypeError``, ``AttributeError`` and friends still propagate).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, List, Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A model, hardware or parallelism description is internally invalid.

    Raised when a single object fails its own validation, e.g. a
    transformer with zero layers or a link with negative bandwidth.
    """


class MappingError(ReproError):
    """A parallelism mapping does not fit the target system.

    Raised when intra-node degrees do not multiply to the number of
    accelerators per node, inter-node degrees do not multiply to the node
    count, or a degree does not divide the quantity it partitions.
    """


class MemoryCapacityError(ReproError):
    """A configuration does not fit in accelerator memory.

    Carries the computed footprint and the capacity so sweep drivers can
    report *how far* over budget a configuration is.
    """

    def __init__(self, message: str, required_bytes: float = 0.0,
                 available_bytes: float = 0.0) -> None:
        super().__init__(message)
        self.required_bytes = required_bytes
        self.available_bytes = available_bytes


class ValidationDataError(ReproError):
    """A published reference dataset is missing or inconsistent."""


class SimulationError(ReproError):
    """A discrete-event or step simulation reached an invalid state."""


class WorkerError(ReproError):
    """A sweep worker failed with a non-:class:`ReproError` exception.

    Raised by the resilient sweep runtime when a candidate evaluation
    keeps failing even after retries and degradation to serial
    execution.  Carries the journal path (when journaling is on) so the
    finished portion of the sweep remains recoverable.
    """

    def __init__(self, message: str,
                 journal_path: Optional[str] = None) -> None:
        super().__init__(message)
        self.journal_path = journal_path


class SweepInterrupted(ReproError):
    """A sweep was cancelled (SIGINT) before covering the full space.

    Carries the journal path (for ``--resume``) and the exact ranked
    results over everything evaluated up to the interruption, so callers
    that opt into exception-style cancellation lose nothing.
    """

    def __init__(self, message: str,
                 journal_path: Optional[str] = None,
                 partial_results: Optional[List[Any]] = None) -> None:
        super().__init__(message)
        self.journal_path = journal_path
        self.partial_results: List[Any] = (
            partial_results if partial_results else [])


class IngestError(ReproError):
    """A measurement artifact (Chrome trace, CSV timings) could not be
    ingested.

    Raised by :mod:`repro.obs.ingest` with enough context to act on —
    the offending file and, when known, the event index or line number —
    and mapped by ``amped calibrate`` to a structured exit 2, never a
    traceback.  ``offset`` is the zero-based event position inside a
    trace's ``traceEvents`` array, or the one-based line number inside
    a CSV file; ``None`` when the failure is not tied to one record.
    """

    def __init__(self, message: str, path: Optional[str] = None,
                 offset: Optional[int] = None) -> None:
        location = ""
        if path is not None:
            location = f"{path}: " if offset is None \
                else f"{path}:{offset}: "
        super().__init__(f"{location}{message}")
        self.path = path
        self.offset = offset


class RequestValidationError(ReproError):
    """An estimation-service request failed schema validation.

    The serve daemon maps this to a structured HTTP 400 — never a
    traceback.  ``code`` is a stable machine-readable identifier
    (``invalid_json``, ``unknown_field``, ``invalid_value``, ...) and
    ``field`` names the offending request field when one is known.
    """

    def __init__(self, message: str, field: Optional[str] = None,
                 code: str = "invalid_request") -> None:
        super().__init__(message)
        self.field = field
        self.code = code


class ServiceOverloaded(ReproError):
    """The estimation service shed a request instead of queuing it.

    Raised at the admission boundary when the bounded queue is full
    (HTTP 429), the circuit breaker is open, or the daemon is draining
    for shutdown (both HTTP 503).  ``retry_after_s`` is the suggested
    client backoff, surfaced as a ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0,
                 code: str = "overloaded") -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.code = code


class DeadlineExceeded(ReproError):
    """A request's deadline elapsed before its evaluation finished.

    The serve daemon answers the client with a structured HTTP 504 and
    counts the hit against the circuit breaker, so a hung evaluation
    can degrade the evaluation path but never stall the daemon.
    """

    def __init__(self, message: str, deadline_s: float = 0.0) -> None:
        super().__init__(message)
        self.deadline_s = deadline_s


def require_finite(name: str, value: float) -> None:
    """Raise :class:`ConfigurationError` unless ``value`` is a finite
    number (rejects ``nan`` and ``±inf``, which otherwise slip through
    ``<``/``<=`` range checks because every NaN comparison is false)."""
    try:
        finite = math.isfinite(value)
    except TypeError:
        raise ConfigurationError(
            f"{name} must be a real number, got {value!r}") from None
    if not finite:
        raise ConfigurationError(
            f"{name} must be finite, got {value!r}")


#: Per-class cache of dataclass field names, so hot-path containers
#: (span records, breakdowns) skip ``dataclasses.fields`` introspection
#: after their first construction.
_FIELD_NAMES_BY_CLASS: dict = {}


def require_finite_fields(instance: Any) -> None:
    """Apply :func:`require_finite` to every real-number field of a
    dataclass instance.

    The standard ``__post_init__`` guard for spec and result containers
    (analyzer rule AMP005): a NaN passes every ``< 0`` range check and an
    infinity survives them, so both must be rejected at construction,
    before they poison a sweep ranking far from the mistake.  Bools and
    non-numeric fields are skipped; ints are checked too (they are always
    finite, but may arrive as floats through untyped call sites).
    """
    cls = instance.__class__
    names = _FIELD_NAMES_BY_CLASS.get(cls)
    if names is None:
        names = tuple(item.name for item in dataclasses.fields(instance))
        _FIELD_NAMES_BY_CLASS[cls] = names
    for name in names:
        value = getattr(instance, name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        require_finite(name, value)
