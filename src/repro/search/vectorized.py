"""Vectorized batch evaluation: whole sweeps as array programs.

The sweep compiler (:mod:`repro.search.compiler`) made candidate
evaluation sublinear — key projection + dict lookups + scalar adds —
but still walks candidates one at a time in Python.  This module turns
that inner loop into NumPy array operations:

1. **Project**: every candidate is projected onto integer *key
   indices*, one per term table, using the same minimal-key taxonomy as
   :data:`repro.collectives.keys.TERM_KEYS` (the projections are
   inlined in the binding loop for speed; ``tests/search/
   test_vectorized.py`` pins them against the taxonomy functions).
2. **Batch-fill**: each term table is filled once per *distinct* key
   through :class:`~repro.search.compiler.CompiledSweep`'s batch-fill
   accessors — the fills land in the compiled sweep's own dict tables,
   so the scalar and vectorized backends always read identical values —
   and the values are packed into dense ``float64`` arrays.
3. **Gather + sum**: all candidates evaluate as column-wise gathers
   into those arrays plus elementwise arithmetic that replays
   ``_combine``'s association order operation for operation.  IEEE-754
   elementwise array ops round identically to the scalar ops (NumPy
   performs no re-association and no FMA contraction for these
   expressions), so vectorized batch times are **bit-exact** against
   ``evaluation_path="compiled"`` and therefore ≤ 1e-9 relative against
   ``"per_layer"`` — the property suite enforces both.

The microbatch-tuning axis rides along as extra *lanes*: communication
terms are independent of ``N_ub``, so each candidate expands into one
lane per candidate microbatch count and ``best_microbatch`` becomes a
segmented ``minimum.reduceat`` (first minimum wins, matching the scalar
strictly-smaller tie-break).  The branch-and-bound pruner's lower bound
is likewise one segmented ``maximum.reduceat`` over efficiencies plus a
no-bubble evaluation — one array compare replaces per-candidate
``lower_bound`` calls.

NumPy is an **optional** dependency: without it,
``evaluation_path="vectorized"`` raises a
:class:`~repro.errors.ConfigurationError` (CLI exit code 2) and the
pure-python ``"compiled"`` path remains the default and the fallback.
With NumPy installed, :func:`resolve_evaluation_path` auto-upgrades
``"compiled"`` sweeps to the vectorized backend once the candidate
count crosses :data:`AUTO_VECTORIZE_THRESHOLD`.  See
``docs/performance.md`` for the key-index layout and the full
bit-exactness argument.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, MappingError
from repro.parallelism.microbatch import microbatch_size
from repro.parallelism.spec import ParallelismSpec
from repro.search import shm as _shm
from repro.search.compiler import COMPONENT_NAMES, CompiledSweep, compile_sweep
from repro.search.tuning import candidate_microbatch_counts

try:  # Optional extra: repro[vectorized].
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-NumPy CI leg
    _np = None

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids the cycle
    from repro.core.model import AMPeD
    from repro.search.dse import CandidateOutcome

#: Whether the NumPy backend is importable in this process.
HAVE_NUMPY = _np is not None

#: Fallback candidate count at which :func:`resolve_evaluation_path`
#: auto-selects the vectorized backend for a default ``"compiled"``
#: sweep.  Below it the pure-python path wins (array setup costs more
#: than it saves).  When ``BENCH_trajectory.json`` carries measured
#: per-path rates, :func:`auto_vectorize_threshold` replaces this
#: constant with the machine's own break-even point.
AUTO_VECTORIZE_THRESHOLD = 2048

#: Bounds on the self-tuned threshold: below the floor the array
#: backend's fixed setup can never win, above the ceiling the tuner is
#: extrapolating noise (it effectively disables the auto-upgrade).
THRESHOLD_CLAMP = (256, 1 << 20)

#: Environment override for the auto-upgrade threshold (an integer);
#: takes precedence over both the trajectory fit and the constant.
THRESHOLD_ENV_VAR = "AMPED_VECTORIZE_THRESHOLD"

#: Environment override for the trajectory file consulted by the tuner.
TRAJECTORY_ENV_VAR = "AMPED_BENCH_TRAJECTORY"

#: Candidates evaluated per array batch inside ``run_sweep`` — bounds
#: array memory and keeps the journal/SIGINT boundary responsive.
DEFAULT_CHUNK_CANDIDATES = 4096

#: Lanes evaluated per internal slice of the column-wise combiner.  The
#: combiner's ~40 temporaries then stay inside a few MB, so the
#: allocator reuses warm buffers instead of faulting fresh pages per
#: array statement — worth an order of magnitude on million-lane
#: batches (slicing changes which elements an op touches, never the
#: op itself, so bit-exactness is unaffected).
_EVAL_CHUNK_LANES = 131072


def require_numpy() -> None:
    """Raise :class:`ConfigurationError` when NumPy is unavailable.

    The message names the remedy and the fallback; the CLI surfaces it
    with exit code 2 like every other configuration error.
    """
    if not HAVE_NUMPY:
        raise ConfigurationError(
            "evaluation_path='vectorized' requires NumPy, an optional "
            "dependency (pip install numpy, or the repro[vectorized] "
            "extra); without it use the pure-python 'compiled' path, "
            "which is the default fallback")


def resolve_evaluation_path(requested: str, n_candidates: int) -> str:
    """The evaluation path a sweep should actually run.

    An explicit ``"vectorized"`` request validates that NumPy is
    importable (raising otherwise — never a silent downgrade); a
    default ``"compiled"`` request is upgraded to ``"vectorized"`` when
    NumPy is available and the sweep is large enough to amortize array
    setup (the :func:`auto_vectorize_threshold` break-even, self-tuned
    from the benchmark trajectory when one is available).  Everything
    else passes through untouched.
    """
    if requested == "vectorized":
        require_numpy()
        return requested
    if (requested == "compiled" and HAVE_NUMPY
            and n_candidates >= auto_vectorize_threshold()):
        return "vectorized"
    return requested


# ---------------------------------------------------------------------------
# Self-tuned auto-upgrade threshold (PR 6 follow-up)
# ---------------------------------------------------------------------------

#: Resolved threshold cache: ``(value, source)`` or ``None`` before the
#: first resolution.  Guarded by ``_STATS_LOCK`` (same contention
#: domain: serve handler threads race the metrics endpoint).
_THRESHOLD: Optional[Tuple[int, str]] = None


def _trajectory_paths(explicit=None) -> List[Path]:
    if explicit is not None:
        return [Path(explicit)]
    env = os.environ.get(TRAJECTORY_ENV_VAR)
    if env:
        return [Path(env)]
    # Benchmarks run from the repo root; installed trees fall through
    # to the constant when neither candidate exists.
    return [Path.cwd() / "BENCH_trajectory.json",
            Path(__file__).resolve().parents[3] / "BENCH_trajectory.json"]


def _fit_threshold(entries: List[dict]) -> Optional[int]:
    """Break-even candidate count from the newest usable trajectory row.

    Costs per candidate, from the row's measured rates: the compiled
    path pays ``t_c = 1/compiled_mappings_per_s``; the vectorized path
    pays a fixed per-batch setup ``f0 = vectorized_setup_seconds``
    (measured by binding a deliberately tiny chunk) plus a linear bind
    cost ``t_b = (build - f0)/n`` plus ``t_v = 1/vectorized rate``.
    Vectorized wins once ``n * t_c >= f0 + n * (t_b + t_v)``, i.e. at

        n* = f0 / (t_c - t_b - t_v)

    A non-positive denominator means binding alone outweighs the
    compiled path on this machine — the tuner then pins the ceiling,
    which disables the auto-upgrade rather than guessing.
    """
    for entry in reversed(entries):
        try:
            t_c = 1.0 / float(entry["compiled_mappings_per_s"])
            t_v = 1.0 / float(entry["vectorized_mappings_per_s"])
            setup = float(entry["vectorized_setup_seconds"])
            build = float(entry["vectorized_build_seconds"])
            n_ref = float(entry["vectorized_n_candidates"])
        except (KeyError, TypeError, ValueError, ZeroDivisionError):
            continue  # pre-tuning rows (or damaged ones): keep looking
        if n_ref <= 0 or setup < 0 or build < setup or t_c <= 0 or t_v <= 0:
            continue
        linear_bind = (build - setup) / n_ref
        margin = t_c - linear_bind - t_v
        low, high = THRESHOLD_CLAMP
        if margin <= 0.0:
            return high
        return max(low, min(high, math.ceil(setup / margin)))
    return None


def auto_vectorize_threshold(trajectory_path=None) -> int:
    """The auto-upgrade threshold in force, resolved once per process.

    Precedence: the :data:`THRESHOLD_ENV_VAR` integer override, then a
    break-even fit over measured per-path rates in the benchmark
    trajectory (:data:`TRAJECTORY_ENV_VAR` or the repo's
    ``BENCH_trajectory.json``), then :data:`AUTO_VECTORIZE_THRESHOLD`.
    ``vectorized_stats()`` reports the resolved value and its source.
    """
    global _THRESHOLD
    with _STATS_LOCK:
        if _THRESHOLD is not None and trajectory_path is None:
            return _THRESHOLD[0]
    override = os.environ.get(THRESHOLD_ENV_VAR)
    resolved: Optional[Tuple[int, str]] = None
    if override:
        try:
            low, high = THRESHOLD_CLAMP
            resolved = (max(1, min(high, int(override))), "env")
        except ValueError:
            resolved = None  # fall through to the fit, like unset
    if resolved is None:
        for path in _trajectory_paths(trajectory_path):
            try:
                entries = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if not isinstance(entries, list):
                continue
            fitted = _fit_threshold(entries)
            if fitted is not None:
                resolved = (fitted, f"trajectory:{path.name}")
                break
    if resolved is None:
        resolved = (AUTO_VECTORIZE_THRESHOLD, "constant")
    with _STATS_LOCK:
        if trajectory_path is None:
            _THRESHOLD = resolved
    return resolved[0]


def threshold_info() -> Dict[str, object]:
    """The resolved threshold and where it came from (``constant``,
    ``env``, or ``trajectory:<file>``); resolves on first use."""
    auto_vectorize_threshold()
    with _STATS_LOCK:
        value, source = _THRESHOLD  # type: ignore[misc]
    return {"threshold": value, "source": source}


def clear_threshold_cache() -> None:
    """Forget the resolved threshold (tests, env changes)."""
    global _THRESHOLD
    with _STATS_LOCK:
        _THRESHOLD = None


# ---------------------------------------------------------------------------
# Backend statistics (folded into cache.vectorized.* gauges)
# ---------------------------------------------------------------------------

_STATS: Dict[str, float] = {
    "builds": 0, "build_seconds": 0.0, "array_bytes": 0,
    "lanes": 0, "batches": 0, "max_batch_size": 0,
}

#: Serve handler threads build batches concurrently with the metrics
#: endpoint reading the totals; every _STATS access goes through this.
_STATS_LOCK = threading.Lock()


def vectorized_stats() -> Dict[str, float]:
    """Cumulative binder statistics: batches bound, table build time,
    array bytes, lanes evaluated (``cache.vectorized.*`` gauges)."""
    with _STATS_LOCK:
        stats = dict(_STATS)
        resolved = _THRESHOLD
    stats["available"] = 1 if HAVE_NUMPY else 0
    if resolved is not None:  # report only once resolved: no IO here
        stats["auto_threshold"] = resolved[0]
    return stats


def clear_vectorized_stats() -> None:
    """Reset the cumulative binder statistics (tests, fresh runs)."""
    with _STATS_LOCK:
        for name in _STATS:
            _STATS[name] = 0


def _record_build(batch: "BoundBatch", seconds: float) -> None:
    with _STATS_LOCK:
        _STATS["builds"] += 1
        _STATS["build_seconds"] += seconds
        _STATS["array_bytes"] += batch.array_bytes
        _STATS["lanes"] += batch.n_lanes
        _STATS["batches"] += 1
        _STATS["max_batch_size"] = max(_STATS["max_batch_size"],
                                       batch.n_specs)


# ---------------------------------------------------------------------------
# The binder
# ---------------------------------------------------------------------------


class BoundBatch:
    """One candidate batch projected, filled and ready to evaluate.

    Construction performs the projection (candidate → key indices per
    term, expanded over the ``N_ub`` lanes when tuning) and the batch
    fill (one accessor call per distinct key, landing in the compiled
    sweep's dict tables *and* in dense arrays).  Evaluation is then
    pure gather+sum.  The object is picklable: it holds only arrays,
    plain metadata and the (picklable) compiled sweep.
    """

    def __init__(self, compiled: CompiledSweep,
                 specs: Sequence[ParallelismSpec],
                 tune_microbatches: bool = False) -> None:
        require_numpy()
        started = time.perf_counter()
        np = _np
        self.compiled = compiled
        self.specs: List[ParallelismSpec] = list(specs)
        self.tune_microbatches = tune_microbatches
        global_batch = compiled.global_batch

        # Sweep constants snapshot (scalar replay parameters).
        self._exposed = compiled.exposed
        self._bcr = compiled.backward_comm_ratio
        self._explicit_zero = compiled.explicit_zero
        eq8 = compiled.bubble_model == "eq8"
        n_layers = compiled.model.n_layers
        #: ``(weight, is_transformer, is_moe)`` per layer class, in the
        #: combiner's class order.
        self._class_meta: List[Tuple[float, bool, bool]] = [
            (weight, layer.index >= 0, layer.is_moe)
            for layer, weight, *_ in compiled.classes]
        concurrent = compiled.concurrent_stage_comm

        # -- projection: candidates -> key indices ------------------------
        # The tuple layouts below inline the TERM_KEYS projections of
        # repro.collectives.keys (tp_intra_key, tp_inter_key, pp_key,
        # moe_key, gradient_key, efficiency_key, bubble_key);
        # test_vectorized.py pins the equivalence spec by spec.
        tpi_index: Dict[tuple, int] = {}
        tpx_index: Dict[tuple, int] = {}
        pp_index: Dict[tuple, int] = {}
        moe_index: Dict[tuple, int] = {}
        grad_index: Dict[tuple, int] = {}
        eff_index: Dict[tuple, int] = {}
        bub_index: Dict[tuple, int] = {}
        tpi_reps: List[ParallelismSpec] = []
        tpx_reps: List[ParallelismSpec] = []
        pp_reps: List[ParallelismSpec] = []
        moe_reps: List[ParallelismSpec] = []
        grad_reps: List[ParallelismSpec] = []
        eff_reps: List[Tuple[ParallelismSpec, int]] = []

        tpi_idx: List[int] = []
        tpx_idx: List[int] = []
        pp_idx: List[int] = []
        moe_idx: List[int] = []
        grad_idx: List[int] = []
        workers_col: List[float] = []
        stage_col: List[float] = []
        divisor_col: List[float] = []
        pp_gt1_col: List[bool] = []
        counts: List[int] = []
        lane_eff: List[int] = []
        lane_bub: List[int] = []
        lane_nub: List[int] = []

        for spec in self.specs:
            tp_i = spec.tp_intra
            tp_x = spec.tp_inter
            ep = spec.expert_parallel
            tp = tp_i * tp_x
            pp = spec.pp_intra * spec.pp_inter
            dp = spec.dp_intra * spec.dp_inter

            key = (tp_i, dp)  # keys.tp_intra_key
            idx = tpi_index.get(key)
            if idx is None:
                idx = len(tpi_index)
                tpi_index[key] = idx
                tpi_reps.append(spec)
            tpi_idx.append(idx)

            key = (tp_i, tp_x, dp)  # keys.tp_inter_key
            idx = tpx_index.get(key)
            if idx is None:
                idx = len(tpx_index)
                tpx_index[key] = idx
                tpx_reps.append(spec)
            tpx_idx.append(idx)

            key = (spec.pp_intra > 1, spec.pp_inter > 1, dp)  # keys.pp_key
            idx = pp_index.get(key)
            if idx is None:
                idx = len(pp_index)
                pp_index[key] = idx
                pp_reps.append(spec)
            pp_idx.append(idx)

            key = (tp, dp, ep)  # keys.moe_key
            idx = moe_index.get(key)
            if idx is None:
                idx = len(moe_index)
                moe_index[key] = idx
                moe_reps.append(spec)
            moe_idx.append(idx)

            key = (tp, spec.dp_intra, spec.dp_inter, ep)  # keys.gradient_key
            idx = grad_index.get(key)
            if idx is None:
                idx = len(grad_index)
                grad_index[key] = idx
                grad_reps.append(spec)
            grad_idx.append(idx)

            workers_col.append(float(tp * pp * dp))
            stage_col.append(float(pp if concurrent else 1))
            divisor = tp * dp * pp
            if eq8:
                divisor *= n_layers
            divisor_col.append(float(divisor))
            pp_gt1_col.append(pp > 1)

            if tune_microbatches:
                n_ubs = candidate_microbatch_counts(spec, global_batch)
            else:
                n_ubs = [spec.microbatches]
            counts.append(len(n_ubs))
            ratio = spec.bubble_overlap_ratio
            for n_ub in n_ubs:
                key = (dp, n_ub)  # keys.efficiency_key
                idx = eff_index.get(key)
                if idx is None:
                    idx = len(eff_index)
                    eff_index[key] = idx
                    eff_reps.append((spec, n_ub))
                lane_eff.append(idx)
                key = (pp, n_ub, ratio)  # keys.bubble_key
                idx = bub_index.get(key)
                if idx is None:
                    idx = len(bub_index)
                    bub_index[key] = idx
                lane_bub.append(idx)
                lane_nub.append(n_ub)

        self._tpi_idx = np.asarray(tpi_idx, dtype=np.intp)
        self._tpx_idx = np.asarray(tpx_idx, dtype=np.intp)
        self._pp_idx = np.asarray(pp_idx, dtype=np.intp)
        self._moe_idx = np.asarray(moe_idx, dtype=np.intp)
        self._grad_idx = np.asarray(grad_idx, dtype=np.intp)
        self._workers = np.asarray(workers_col)
        self._stage_share = np.asarray(stage_col)
        self._bub_divisor = np.asarray(divisor_col)
        self._pp_gt1 = np.asarray(pp_gt1_col, dtype=bool)
        self._counts = np.asarray(counts, dtype=np.intp)
        self._offsets = np.zeros(len(counts), dtype=np.intp)
        if counts:
            np.cumsum(self._counts[:-1], out=self._offsets[1:])
        self._lane_spec = np.repeat(
            np.arange(len(self.specs), dtype=np.intp), self._counts)
        self._lane_eff_idx = np.asarray(lane_eff, dtype=np.intp)
        self._lane_bub_idx = np.asarray(lane_bub, dtype=np.intp)
        self._lane_nub = np.asarray(lane_nub, dtype=np.int64)

        # -- batch fill: one accessor call per distinct key ----------------
        # Fills land in the compiled sweep's own dict tables, keeping
        # both backends reading identical values; keys whose reference
        # function raises MappingError become NaN rows, so any lane
        # touching them evaluates non-finite and falls back to the
        # scalar path for the exact error semantics.
        self._eff_vals = np.empty(len(eff_reps))
        self._eff_ok = np.zeros(len(eff_reps), dtype=bool)
        for idx, (rep, n_ub) in enumerate(eff_reps):
            try:
                self._eff_vals[idx] = compiled.efficiency_for(
                    rep.with_microbatches(n_ub))
                self._eff_ok[idx] = True
            except MappingError:
                self._eff_vals[idx] = 1.0  # placeholder, masked below

        self._bub_vals = np.empty(len(bub_index))
        for key, idx in bub_index.items():
            self._bub_vals[idx] = compiled.bubble_prefactor_for(*key)

        self._tpi_vals = _fill(np, tpi_reps, compiled.tp_intra_for)
        self._tpx_vals = _fill(np, tpx_reps, compiled.tp_inter_for)
        self._pp_vals = _fill(np, pp_reps, compiled.pp_for)
        self._moe_vals = _fill(np, moe_reps, compiled.moe_for)

        n_classes = len(compiled.classes)
        self._comp = [np.zeros((len(eff_reps), 3))
                      for _ in range(n_classes)]
        for idx in range(len(eff_reps)):
            if not self._eff_ok[idx]:
                continue
            triples = compiled.compute_triples_for(
                float(self._eff_vals[idx]))
            for cls in range(n_classes):
                self._comp[cls][idx] = triples[cls]

        self._grad = [np.empty((len(grad_reps), 2))
                      for _ in range(n_classes)]
        self._zero = ([np.empty(len(grad_reps)) for _ in range(n_classes)]
                      if self._explicit_zero else None)
        for idx, rep in enumerate(grad_reps):
            try:
                pairs = compiled.gradient_pairs_for(rep)
                for cls in range(n_classes):
                    self._grad[cls][idx] = pairs[cls]
            except MappingError:
                for cls in range(n_classes):
                    self._grad[cls][idx] = math.nan
            if self._zero is not None:
                try:
                    gathers = compiled.zero_gathers_for(rep)
                    for cls in range(n_classes):
                        self._zero[cls][idx] = gathers[cls]
                except MappingError:
                    for cls in range(n_classes):
                        self._zero[cls][idx] = math.nan

        self._lane_ok = self._eff_ok[self._lane_eff_idx]
        self._lane_components_cache: Optional[tuple] = None
        self._lane_times_cache = None
        self.build_seconds = time.perf_counter() - started
        _record_build(self, self.build_seconds)

    # -- sizes ---------------------------------------------------------------

    @property
    def n_specs(self) -> int:
        return len(self.specs)

    @property
    def n_lanes(self) -> int:
        return int(self._lane_nub.shape[0])

    @property
    def array_bytes(self) -> int:
        """Total bytes held by the batch's dense arrays."""
        total = 0
        for value in vars(self).values():
            if isinstance(value, _np.ndarray):
                total += value.nbytes
            elif isinstance(value, list):
                total += sum(item.nbytes for item in value
                             if isinstance(item, _np.ndarray))
        return total

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_lane_components_cache"] = None
        state["_lane_times_cache"] = None
        # An attached batch (rebuilt from a shared-memory segment) never
        # re-pickles its mapping — receivers attach by name instead.
        state.pop("_shm_attachment", None)
        return state

    # -- the column-wise combiner ---------------------------------------------

    def _components(self, rows, eff_idx, bub_idx) -> tuple:
        """``_combine`` replayed column-wise: same class order, same
        per-term arithmetic, same accumulation association — NumPy
        elementwise float64 ops round exactly like the scalar ops, so
        each lane's components are bit-identical to the scalar
        combiner's.  ``bub_idx`` is ``None`` for the no-bubble (lower
        bound) evaluation, where the scalar path pins ``pref = 0.0``.
        """
        np = _np
        exposed = self._exposed
        bcr = self._bcr
        scale = 1.0 + bcr
        workers = self._workers[rows]
        stage_share = self._stage_share[rows]
        ratio = exposed / stage_share
        grad_rows = self._grad_idx[rows]
        n = rows.shape[0]

        v_tpi = self._tpi_vals[self._tpi_idx[rows]]
        v_tpx = self._tpx_vals[self._tpx_idx[rows]]
        v_pp = self._pp_vals[self._pp_idx[rows]]
        v_moe = self._moe_vals[self._moe_idx[rows]]
        a = v_tpi * ratio
        b = v_tpx * ratio
        d = v_pp * exposed
        ab_d = (a + b) + d  # m_f = ((a + b) + d) + c, scalar association
        c_moe_term = v_moe * ratio

        if bub_idx is not None:
            pref = self._bub_vals[bub_idx]
            divisor = self._bub_divisor[rows]
            # Scalar gate: ``if pref and pp > 1`` (NaN prefactors are
            # truthy there and non-equal to 0.0 here).
            gate = (pref != 0.0) & self._pp_gt1[rows]

        cf = np.zeros(n)
        cb = np.zeros(n)
        cw = np.zeros(n)
        c_tpi = np.zeros(n)
        c_tpx = np.zeros(n)
        c_pp = np.zeros(n)
        c_moe = np.zeros(n)
        g_intra = np.zeros(n)
        g_inter = np.zeros(n)
        c_zero = np.zeros(n)
        bub = np.zeros(n)

        for cls, (weight, is_transformer, is_moe) in \
                enumerate(self._class_meta):
            comp = self._comp[cls]
            u_f = comp[eff_idx, 0]
            u_b = comp[eff_idx, 1]
            u_w = comp[eff_idx, 2]
            cf = cf + weight * u_f / workers
            cb = cb + weight * u_b / workers
            cw = cw + weight * u_w / workers

            grad = self._grad[cls]
            g_intra = g_intra + weight * grad[grad_rows, 0] \
                / stage_share * exposed
            g_inter = g_inter + weight * grad[grad_rows, 1] \
                / stage_share * exposed
            if self._zero is not None:
                c_zero = c_zero + weight * 2.0 * self._zero[cls][grad_rows] \
                    / stage_share * exposed

            if not is_transformer:
                continue  # embedding pseudo-layer: no TP/PP/MoE/bubble
            c = c_moe_term if is_moe else 0.0
            m_f = ab_d + c
            m_b = m_f * bcr
            c_tpi = c_tpi + weight * a * scale
            c_tpx = c_tpx + weight * b * scale
            c_pp = c_pp + weight * d * scale
            c_moe = c_moe + weight * c * scale
            if bub_idx is not None:
                step = (u_f + u_b) / divisor + m_b + m_f
                bub = bub + np.where(gate, weight * (pref * step), 0.0)

        return (cf, cb, cw, c_tpi, c_tpx, c_pp, c_moe,
                g_intra, g_inter, c_zero, bub)

    def _components_chunked(self, rows, eff_idx, bub_idx) -> tuple:
        """:meth:`_components` over :data:`_EVAL_CHUNK_LANES`-sized
        slices, concatenated into full-length component arrays."""
        np = _np
        n = rows.shape[0]
        if n <= _EVAL_CHUNK_LANES:
            return self._components(rows, eff_idx, bub_idx)
        outs = tuple(np.empty(n) for _ in range(len(COMPONENT_NAMES)))
        for start in range(0, n, _EVAL_CHUNK_LANES):
            piece = slice(start, start + _EVAL_CHUNK_LANES)
            part = self._components(
                rows[piece], eff_idx[piece],
                None if bub_idx is None else bub_idx[piece])
            for out, column in zip(outs, part):
                out[piece] = column
        return outs

    @staticmethod
    def _totals_of(components: tuple):
        """``TrainingTimeBreakdown.total`` replayed column-wise."""
        (cf, cb, cw, c_tpi, c_tpx, c_pp, c_moe,
         g_intra, g_inter, c_zero, bub) = components
        compute_time = cf + cb + cw
        comm_time = ((c_tpi + c_tpx) + c_pp + c_moe
                     + (g_intra + g_inter) + c_zero)
        return compute_time + comm_time + bub

    # -- lane-level evaluation --------------------------------------------------

    def lane_components(self) -> tuple:
        """The 11 breakdown component arrays, one value per lane, in
        :data:`~repro.search.compiler.COMPONENT_NAMES` order."""
        if self._lane_components_cache is None:
            self._lane_components_cache = self._components_chunked(
                self._lane_spec, self._lane_eff_idx, self._lane_bub_idx)
        return self._lane_components_cache

    def lane_times(self):
        """Batch time per lane; NaN marks an infeasible microbatch."""
        if self._lane_times_cache is None:
            totals = self._totals_of(self.lane_components())
            self._lane_times_cache = _np.where(
                self._lane_ok, totals, _np.nan)
        return self._lane_times_cache

    # -- per-candidate reductions ----------------------------------------------

    def best_lanes(self):
        """Batched ``best_microbatch``: ``(times, picks, feasible)``
        per candidate.

        ``times`` is the minimal finite batch time across the
        candidate's lanes, ``picks`` the first lane achieving it (the
        scalar tuner keeps the earliest candidate on ties, because only
        a strictly smaller time replaces the incumbent), and
        ``feasible`` is False when every lane is infeasible or
        non-finite — callers fall back to the scalar path there for the
        exact error semantics.
        """
        np = _np
        if not self.specs:
            empty = np.empty(0)
            return empty, np.empty(0, dtype=np.intp), \
                np.empty(0, dtype=bool)
        times = self.lane_times()
        filled = np.where(np.isfinite(times), times, np.inf)
        best = np.minimum.reduceat(filled, self._offsets)
        hit = filled == np.repeat(best, self._counts)
        n_lanes = filled.shape[0]
        lane_ids = np.arange(n_lanes, dtype=np.intp)
        picks = np.minimum.reduceat(
            np.where(hit, lane_ids, n_lanes), self._offsets)
        feasible = np.isfinite(best)
        return best, picks, feasible

    def lower_bounds(self):
        """Batched pruner bound: one value per candidate, NaN when no
        microbatch count is feasible (the scalar path raises
        :class:`MappingError` there).

        Replays :meth:`CompiledSweep.lower_bound`: the best reachable
        efficiency across the candidate's lanes (a segmented max), then
        the no-bubble combine at that efficiency.
        """
        np = _np
        if not self.specs:
            return np.empty(0)
        eff_lane = np.where(self._lane_ok,
                            self._eff_vals[self._lane_eff_idx], -np.inf)
        best_eff = np.maximum.reduceat(eff_lane, self._offsets)
        feasible = best_eff > 0.0
        hit = eff_lane == np.repeat(best_eff, self._counts)
        n_lanes = eff_lane.shape[0]
        lane_ids = np.arange(n_lanes, dtype=np.intp)
        picks = np.minimum.reduceat(
            np.where(hit, lane_ids, n_lanes), self._offsets)
        picks = np.where(feasible, picks, 0)
        rows = np.arange(len(self.specs), dtype=np.intp)
        components = self._components_chunked(
            rows, self._lane_eff_idx[picks], None)
        bounds = self._totals_of(components)
        return np.where(feasible, bounds, np.nan)


def _fill(np, reps: List[ParallelismSpec], getter):
    """Dense value array for one comm-term table: one accessor call per
    distinct key; keys whose reference function raises MappingError
    become NaN (their lanes fall back to the scalar path)."""
    values = np.empty(len(reps))
    for idx, rep in enumerate(reps):
        try:
            values[idx] = getter(rep)
        except MappingError:
            values[idx] = math.nan
    return values


class VectorizedSweep:
    """Thin façade binding candidate batches against one compiled sweep."""

    def __init__(self, compiled: CompiledSweep) -> None:
        require_numpy()
        self.compiled = compiled

    def bind(self, specs: Sequence[ParallelismSpec],
             tune_microbatches: bool = False) -> BoundBatch:
        """Project + batch-fill ``specs`` into a :class:`BoundBatch`."""
        return BoundBatch(self.compiled, specs, tune_microbatches)

    def batch_times(self, specs: Sequence[ParallelismSpec]):
        """Batch time per candidate at its own ``N_ub`` (NaN =
        infeasible) — the array counterpart of
        :meth:`CompiledSweep.batch_time`."""
        return self.bind(specs).lane_times()

    def tuned_times(self, specs: Sequence[ParallelismSpec]):
        """Best batch time per candidate across its microbatch lanes
        (NaN = no feasible lane) — the array counterpart of
        :meth:`CompiledSweep.best_microbatch`."""
        best, _, feasible = self.bind(
            specs, tune_microbatches=True).best_lanes()
        return _np.where(feasible, best, _np.nan)


def vectorize_sweep(template: "AMPeD",
                    global_batch: int) -> VectorizedSweep:
    """A :class:`VectorizedSweep` over the process-cached compiled
    tables for ``(template, global_batch)``."""
    return VectorizedSweep(compile_sweep(template, global_batch))


# ---------------------------------------------------------------------------
# Candidate-outcome materialization (explore / run_sweep integration)
# ---------------------------------------------------------------------------


class PreboundChunk:
    """One candidate chunk validated and bound, ready to evaluate.

    Produced by :func:`bind_chunk` in the sweep driver's process and
    consumed by :func:`evaluate_prebound` — either immediately in the
    same process, or pickled to a warm pool worker so the worker skips
    the projection + batch-fill work entirely (the PR 6 follow-up:
    vectorized *parallel* sweeps used to re-bind per worker).

    Pickling strips the compiled sweep from the bound batch whenever
    the receiving process can reattach it from its own compile cache
    (:func:`~repro.search.compiler.warm_worker` installs it there), so
    each shipped chunk carries only its dense arrays, not another copy
    of the term tables.  When the driver calls :meth:`publish_shared`
    first, even the dense arrays stay out of the pickle: they live in a
    shared-memory segment and the pickle carries only the segment name
    plus scalar metadata, so worker-side unpickling is an O(1) map
    instead of an O(arrays) copy.
    """

    def __init__(self, specs: List[ParallelismSpec], valid: List[int],
                 batch: Optional[BoundBatch], global_batch: int,
                 tune_microbatches: bool) -> None:
        self.specs = specs
        self.valid = valid
        self.batch = batch
        self.global_batch = global_batch
        self.tune_microbatches = tune_microbatches
        self._shm_handle: Optional[_shm.SegmentHandle] = None
        self._shm_state: Optional[dict] = None

    # -- shared-memory transport (driver side) --------------------------------

    def publish_shared(self) -> bool:
        """Publish the bound batch's dense arrays into shared memory.

        Idempotent; returns ``True`` when a segment is live after the
        call.  ``False`` means there is nothing to share (no valid
        candidates) or the platform lacks ``shared_memory``/NumPy — the
        pickle path then ships the arrays by value, bit-exact either
        way.  Publish failures degrade the same way rather than fail
        the sweep.
        """
        if self._shm_handle is not None:
            return True
        if self.batch is None or not _shm.HAVE_SHM:
            return False
        try:
            shared = _shm.share_ndarray_state(self.batch.__getstate__(),
                                              "chunk")
        except Exception:  # noqa: BLE001 — fallback boundary: /dev/shm
            # exhaustion (ENOSPC) must degrade to the pickle path, not
            # abort a sweep that would succeed without sharing.
            return False
        if shared is None:
            return False
        self._shm_handle, self._shm_state = shared
        return True

    def release_shared(self) -> None:
        """Drop the driver's reference on the published segment.

        Idempotent.  The segment unlinks immediately (POSIX keeps the
        memory mapped for any worker still attached); call this only
        once every consumer has finished unpickling — in practice,
        after the worker's future resolves.
        """
        handle = self._shm_handle
        self._shm_handle = None
        self._shm_state = None
        if handle is not None:
            _shm.release_segment(handle.name)

    # -- shared-memory transport (worker side) --------------------------------

    def detach_shared(self) -> None:
        """Close the worker-side mapping once evaluation is done.

        The attached batch's arrays are views over the mapping, so the
        batch is dismantled first (no view may outlive the ``mmap``),
        then the segment closes.  No-op for pickle-shipped chunks.
        """
        batch = self.batch
        if batch is None:
            return
        attachment = batch.__dict__.pop("_shm_attachment", None)
        if attachment is not None:
            batch.__dict__.clear()
            self.batch = None
            attachment.close()

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_compiled_key"] = None
        if len(self.valid) == len(self.specs):
            # bind_chunk builds ``valid`` as a sorted subset of
            # range(n), so equal length means the identity mapping —
            # shipped as one int (a million-candidate chunk otherwise
            # pays ~0.3 s re-allocating the index list per worker).
            state["valid"] = len(self.specs)
        batch = self.batch
        if batch is None:
            return state
        cache_key = batch.compiled.cache_key
        if self._shm_handle is not None and self._shm_state is not None:
            # Zero-copy route: ship the segment name + scalar metadata.
            lean = dict(self._shm_state)
            if cache_key is not None:
                lean["compiled"] = None
                state["_compiled_key"] = cache_key
            state["batch"] = None
            state["_shm_state"] = lean
            return state
        if cache_key is not None:
            lean_batch = object.__new__(BoundBatch)
            lean_batch.__dict__.update(batch.__getstate__())
            lean_batch.compiled = None
            state["batch"] = lean_batch
            state["_compiled_key"] = cache_key
        return state

    def __setstate__(self, state: dict) -> None:
        key = state.pop("_compiled_key", None)
        handle = state.pop("_shm_handle", None)
        lean = state.pop("_shm_state", None)
        if isinstance(state.get("valid"), int):
            state["valid"] = list(range(state["valid"]))
        self.__dict__.update(state)
        self._shm_handle = None  # receivers never own the segment
        self._shm_state = None
        if handle is not None and lean is not None and self.batch is None:
            attachment = handle.attach()
            batch = object.__new__(BoundBatch)
            batch.__dict__.update(_shm.restore_ndarray_state(lean,
                                                             attachment))
            self.batch = batch
        if (key is not None and self.batch is not None
                and self.batch.compiled is None):
            from repro.search.compiler import cached_compiled
            self.batch.compiled = cached_compiled(key)


def bind_chunk(template: "AMPeD", compiled: CompiledSweep,
               specs: Sequence[ParallelismSpec], global_batch: int,
               tune_microbatches: bool) -> PreboundChunk:
    """Validate + project + batch-fill one candidate chunk.

    Candidates failing mapping validation are left out of the bound
    batch (their lanes fall back to the scalar route, which reproduces
    the exact error categories and detail strings); a chunk with no
    valid candidate carries ``batch=None``.
    """
    from repro.errors import ReproError

    n = len(specs)
    valid = list(range(n))
    if template.validate:
        valid = []
        for index, spec in enumerate(specs):
            try:
                spec.validate_against(template.system)
                spec.validate_against_model(template.model.n_layers,
                                            template.model.n_heads)
            except ReproError:
                continue  # scalar fallback raises/categorizes exactly
            valid.append(index)
    batch = (BoundBatch(compiled, [specs[i] for i in valid],
                        tune_microbatches)
             if valid else None)
    return PreboundChunk(list(specs), valid, batch, int(global_batch),
                         tune_microbatches)


def evaluate_prebound(chunk: PreboundChunk, need_bounds: bool = False
                      ) -> Tuple[Optional[List[float]],
                                 List[Optional["CandidateOutcome"]]]:
    """Evaluate a :class:`PreboundChunk` into sweep outcomes.

    Returns ``(bounds, outcomes)``: ``bounds`` is the batched pruner
    bound per candidate as a plain float list (NaN = provably
    infeasible; ``None`` when not requested — a list rather than an
    array so pool workers return cheap pickles), and ``outcomes`` holds
    one :class:`~repro.search.dse.CandidateOutcome` per candidate, with
    ``None`` marking candidates the array path cannot decide exactly —
    invalid mappings, all-lanes-infeasible candidates, non-finite
    results — which the caller re-evaluates through the scalar route.
    """
    from repro.search.dse import CandidateOutcome, ExplorationResult
    from repro.core.breakdown import TrainingTimeBreakdown
    from repro.errors import WorkerError

    specs = chunk.specs
    n = len(specs)
    outcomes: List[Optional[CandidateOutcome]] = [None] * n
    bounds = [math.nan] * n if need_bounds else None
    batch = chunk.batch
    if batch is None:
        return bounds, outcomes
    compiled = batch.compiled
    if compiled is None:
        raise WorkerError(
            "prebound chunk arrived without its compiled sweep (the "
            "worker's compile cache does not hold the shipped key)")
    valid = chunk.valid
    global_batch = chunk.global_batch
    tune_microbatches = chunk.tune_microbatches

    if bounds is not None:
        for index, value in zip(valid, batch.lower_bounds().tolist()):
            bounds[index] = value
    best, picks, feasible = batch.best_lanes()
    components = batch.lane_components()
    columns = [column.tolist() for column in components]
    picks_list = picks.tolist()
    feasible_list = feasible.tolist()
    nubs = batch._lane_nub.tolist()

    for j, index in enumerate(valid):
        if not feasible_list[j]:
            continue  # scalar fallback reproduces the exact failure
        lane = picks_list[j]
        spec = specs[index]
        breakdown = TrainingTimeBreakdown(**{
            name: column[lane]
            for name, column in zip(COMPONENT_NAMES, columns)})
        tuned = (spec.with_microbatches(nubs[lane])
                 if tune_microbatches else spec)
        microbatch = microbatch_size(global_batch, tuned)
        outcomes[index] = CandidateOutcome(spec=spec, result=ExplorationResult(
            parallelism=tuned,
            global_batch=global_batch,
            batch_time_s=breakdown.total,
            breakdown=breakdown,
            microbatch_size=microbatch,
            microbatch_efficiency=compiled.efficiency(microbatch),
        ))
    return bounds, outcomes


def evaluate_chunk(template: "AMPeD", compiled: CompiledSweep,
                   specs: Sequence[ParallelismSpec], global_batch: int,
                   tune_microbatches: bool, need_bounds: bool = False
                   ) -> Tuple[Optional[object],
                              List[Optional["CandidateOutcome"]]]:
    """Vector-evaluate one candidate chunk into sweep outcomes.

    :func:`bind_chunk` + :func:`evaluate_prebound` in one call, for
    callers that bind and evaluate in the same process.  ``bounds``
    comes back as a NumPy array (NaN = provably infeasible; ``None``
    when not requested).
    """
    chunk = bind_chunk(template, compiled, specs, global_batch,
                       tune_microbatches)
    bounds, outcomes = evaluate_prebound(chunk, need_bounds)
    if bounds is not None:
        bounds = _np.asarray(bounds)
    return bounds, outcomes
