"""DSE throughput benchmark: mappings evaluated per second.

The benchmark measures the Case Study I workload — every legal
parallelism factorization of a system, each evaluated through Eq. 1 —
three times: once with the per-layer reference path, once with the
collapsed layer-class fast path (both from cold caches), and once
through the sweep compiler (:mod:`repro.search.compiler`), whose
one-off term-table build is timed separately from the steady-state
per-candidate rate (a sweep pays the build once and the lookups
``n_mappings x n_microbatch_candidates`` times, so the steady-state
rate is what pruning and tuning actually see).  It also times a full
ranked sweep through the resilient runtime
(:func:`repro.search.resilience.run_sweep`: microbatch tuning +
branch-and-bound pruning + coverage accounting) and cross-checks all
evaluation paths against each other (``max_rel_error`` spans both the
collapsed and compiled paths vs the per-layer reference).

The resulting payload is written to ``BENCH_dse.json`` so successive
PRs can track the evaluation engine's throughput trajectory; its schema
is enforced by :func:`validate_bench_result` (exercised by both the
perf-marked benchmark and the tier-1 smoke test).
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from pathlib import Path
from typing import List, Optional, Tuple

from repro.core.communication import clear_comm_cache
from repro.core.model import AMPeD
from repro.core.operations import configure_operations_cache
from repro.errors import MappingError, MemoryCapacityError
from repro.hardware.catalog import megatron_a100_cluster
from repro.hardware.system import SystemSpec
from repro.parallelism.mapping import enumerate_mappings
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.search.compiler import clear_compiled_cache, compile_sweep
from repro.search.resilience import run_sweep
from repro.transformer.config import TransformerConfig
from repro.transformer.zoo import MEGATRON_1T

#: Top-level keys every benchmark payload must carry, with their types.
BENCH_SCHEMA = {
    "benchmark": str,
    "model": str,
    "system": str,
    "global_batch": int,
    "n_mappings": int,
    "reference": dict,
    "fast": dict,
    "compiled": dict,
    "speedup": float,
    "compiled_speedup_vs_fast": float,
    "max_rel_error": float,
    "explore": dict,
}

#: Keys every timed phase (``reference``/``fast``/``compiled``) must
#: carry (``compiled`` additionally reports ``build_seconds``).
PHASE_KEYS = ("path", "seconds", "mappings_per_s")


def _clear_caches() -> None:
    """Reset every evaluation-engine memo so a timed phase starts cold."""
    configure_operations_cache()
    clear_comm_cache()


def _time_path(template: AMPeD, mappings, global_batch: int,
               path: str) -> Tuple[float, List[Optional[float]]]:
    """Seconds to evaluate every mapping on ``path``, plus the totals."""
    amped = replace(template, evaluation_path=path)
    _clear_caches()
    totals: List[Optional[float]] = []
    start = time.perf_counter()
    for spec in mappings:
        candidate = replace(amped, parallelism=spec)
        try:
            totals.append(candidate.estimate_batch(global_batch).total)
        except (MappingError, MemoryCapacityError):
            totals.append(None)
    return time.perf_counter() - start, totals


def _time_compiled(template: AMPeD, mappings, global_batch: int
                   ) -> Tuple[float, float, List[Optional[float]]]:
    """Compiled-path timing: the one-off term-table build (cold caches)
    and the steady-state seconds to evaluate every mapping, plus the
    totals."""
    amped = replace(template, evaluation_path="compiled")
    _clear_caches()
    clear_compiled_cache()
    build_start = time.perf_counter()
    compiled = compile_sweep(amped, global_batch)
    compiled.prefill(mappings, tune_microbatches=False)
    build_s = time.perf_counter() - build_start
    totals: List[Optional[float]] = []
    start = time.perf_counter()
    for spec in mappings:
        try:
            totals.append(compiled.batch_time(spec))
        except (MappingError, MemoryCapacityError):
            totals.append(None)
    return build_s, time.perf_counter() - start, totals


def run_dse_benchmark(system: Optional[SystemSpec] = None,
                      model: Optional[TransformerConfig] = None,
                      global_batch: int = 2048,
                      max_results: int = 10) -> dict:
    """Run the throughput benchmark and return the payload dict.

    Defaults to the Case Study I exploration space (the 1024-A100
    cluster) with Megatron-1T, whose 128 identical layers are the
    collapsed path's headline case.
    """
    if system is None:
        system = megatron_a100_cluster()
    if model is None:
        model = MEGATRON_1T
    template = AMPeD.for_mapping(model, system, dp=system.n_accelerators,
                                 efficiency=CASE_STUDY_EFFICIENCY)
    mappings = enumerate_mappings(system, model)

    reference_s, reference_totals = _time_path(
        template, mappings, global_batch, "per_layer")
    fast_s, fast_totals = _time_path(
        template, mappings, global_batch, "collapsed")
    build_s, compiled_s, compiled_totals = _time_compiled(
        template, mappings, global_batch)

    max_rel_error = 0.0
    for candidate_totals in (fast_totals, compiled_totals):
        for total, reference_total in zip(candidate_totals,
                                          reference_totals):
            if total is None or reference_total is None:
                continue
            scale = max(abs(reference_total), 1e-300)
            max_rel_error = max(max_rel_error,
                                abs(total - reference_total) / scale)

    _clear_caches()
    explore_start = time.perf_counter()
    outcome = run_sweep(template, global_batch, mappings=mappings,
                        max_results=max_results)
    explore_s = time.perf_counter() - explore_start
    ranked = outcome.results

    n_mappings = len(mappings)
    return {
        "benchmark": "dse-throughput",
        "model": model.name,
        "system": system.describe(),
        "global_batch": global_batch,
        "n_mappings": n_mappings,
        "reference": _phase("per_layer", reference_s, n_mappings),
        "fast": _phase("collapsed", fast_s, n_mappings),
        "compiled": dict(_phase("compiled", compiled_s, n_mappings),
                         build_seconds=build_s),
        # Floor the denominator instead of emitting an infinity sentinel:
        # inf does not survive JSON round-trips and would defeat the
        # MappingError convention (analyzer rule AMP003).
        "speedup": reference_s / max(fast_s, 1e-12),
        "compiled_speedup_vs_fast": fast_s / max(compiled_s, 1e-12),
        "max_rel_error": max_rel_error,
        "explore": {
            "seconds": explore_s,
            "n_results": len(ranked),
            "best_mapping": ranked[0].label if ranked else None,
            "coverage": outcome.report.as_dict(),
        },
    }


def _phase(path: str, seconds: float, n_mappings: int) -> dict:
    return {
        "path": path,
        "seconds": seconds,
        "mappings_per_s": n_mappings / seconds if seconds > 0 else 0.0,
    }


def validate_bench_result(payload: dict) -> None:
    """Raise ``ValueError`` when ``payload`` violates the bench schema."""
    if not isinstance(payload, dict):
        raise ValueError(f"payload must be a dict, got {type(payload)}")
    for key, expected in BENCH_SCHEMA.items():
        if key not in payload:
            raise ValueError(f"payload missing key {key!r}")
        value = payload[key]
        if expected is float:
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                raise ValueError(
                    f"{key!r} must be a number, got {value!r}")
        elif not isinstance(value, expected):
            raise ValueError(
                f"{key!r} must be {expected.__name__}, got {value!r}")
    for phase_name in ("reference", "fast", "compiled"):
        phase = payload[phase_name]
        for key in PHASE_KEYS:
            if key not in phase:
                raise ValueError(f"{phase_name!r} missing key {key!r}")
        if phase["seconds"] <= 0 or phase["mappings_per_s"] <= 0:
            raise ValueError(
                f"{phase_name!r} timings must be positive, got {phase}")
    compiled_phase = payload["compiled"]
    if "build_seconds" not in compiled_phase:
        raise ValueError("'compiled' missing key 'build_seconds'")
    if compiled_phase["build_seconds"] <= 0:
        raise ValueError(
            f"'compiled' build_seconds must be positive, got "
            f"{compiled_phase['build_seconds']}")
    for key in ("speedup", "compiled_speedup_vs_fast"):
        if payload[key] <= 0:
            raise ValueError(f"{key} must be positive, got "
                             f"{payload[key]}")
    if payload["max_rel_error"] < 0:
        raise ValueError(f"max_rel_error must be non-negative, got "
                         f"{payload['max_rel_error']}")
    if payload["n_mappings"] < 1:
        raise ValueError(f"n_mappings must be >= 1, got "
                         f"{payload['n_mappings']}")
    explore_stats = payload["explore"]
    for key in ("seconds", "n_results", "best_mapping"):
        if key not in explore_stats:
            raise ValueError(f"'explore' missing key {key!r}")


def write_bench_json(payload: dict, path) -> Path:
    """Validate and write ``payload`` to ``path``; returns the path."""
    validate_bench_result(payload)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return target


# ---------------------------------------------------------------------------
# Regression gate + trajectory (CI)
# ---------------------------------------------------------------------------

#: Fractional slowdown tolerated by the CI gate before it fails: a
#: phase may measure down to ``(1 - tolerance)`` of its committed
#: ``mappings_per_s`` (CI runners are noisy; a genuine regression from
#: an algorithmic change dwarfs 20%).
GATE_TOLERANCE = 0.20

#: Phases the gate compares against the committed baseline.  The
#: per-layer reference is deliberately ungated — it is the semantics
#: oracle, not a performance product.
GATED_PHASES = ("fast", "compiled")


def check_bench_regression(measured: dict, committed: dict,
                           tolerance: float = GATE_TOLERANCE
                           ) -> List[str]:
    """Compare a fresh benchmark payload against the committed one.

    Returns one human-readable failure string per gated phase whose
    measured ``mappings_per_s`` fell below ``(1 - tolerance)`` of the
    committed value (one-sided: running *faster* than the baseline is
    progress, not a failure).
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(
            f"tolerance must be in [0, 1), got {tolerance}")
    failures: List[str] = []
    for phase_name in GATED_PHASES:
        measured_rate = measured[phase_name]["mappings_per_s"]
        committed_rate = committed[phase_name]["mappings_per_s"]
        floor = (1.0 - tolerance) * committed_rate
        if measured_rate < floor:
            failures.append(
                f"{phase_name}: {measured_rate:.0f} mappings/s is below "
                f"{floor:.0f} ({1.0 - tolerance:.0%} of the committed "
                f"{committed_rate:.0f})")
    return failures


def trajectory_entry(payload: dict, timestamp: str,
                     commit: str = "unknown") -> dict:
    """One ``BENCH_trajectory.json`` row distilled from a payload."""
    return {
        "timestamp": timestamp,
        "commit": commit,
        "n_mappings": payload["n_mappings"],
        "reference_mappings_per_s":
            payload["reference"]["mappings_per_s"],
        "fast_mappings_per_s": payload["fast"]["mappings_per_s"],
        "compiled_mappings_per_s":
            payload["compiled"]["mappings_per_s"],
        "compiled_build_seconds": payload["compiled"]["build_seconds"],
        "speedup": payload["speedup"],
        "compiled_speedup_vs_fast":
            payload["compiled_speedup_vs_fast"],
        "max_rel_error": payload["max_rel_error"],
    }


def append_trajectory(entry: dict, path) -> Path:
    """Append ``entry`` to the JSON list at ``path`` (created when
    missing); returns the path."""
    target = Path(path)
    if target.exists():
        history = json.loads(target.read_text())
        if not isinstance(history, list):
            raise ValueError(
                f"{target} must hold a JSON list, got "
                f"{type(history).__name__}")
    else:
        history = []
    history.append(entry)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(history, indent=2) + "\n")
    return target
