"""DSE throughput benchmark: mappings evaluated per second.

The benchmark measures the Case Study I workload — every legal
parallelism factorization of a system, each evaluated through Eq. 1 —
three times: once with the per-layer reference path, once with the
collapsed layer-class fast path (both from cold caches), and once
through the sweep compiler (:mod:`repro.search.compiler`), whose
one-off term-table build is timed separately from the steady-state
per-candidate rate (a sweep pays the build once and the lookups
``n_mappings x n_microbatch_candidates`` times, so the steady-state
rate is what pruning and tuning actually see).  It also times a full
ranked sweep through the resilient runtime
(:func:`repro.search.resilience.run_sweep`: microbatch tuning +
branch-and-bound pruning + coverage accounting) and cross-checks all
evaluation paths against each other (``max_rel_error`` spans both the
collapsed and compiled paths vs the per-layer reference).

The resulting payload is written to ``BENCH_dse.json`` so successive
PRs can track the evaluation engine's throughput trajectory; its schema
is enforced by :func:`validate_bench_result` (exercised by both the
perf-marked benchmark and the tier-1 smoke test).
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import replace
from pathlib import Path
from typing import List, Optional, Tuple

from repro.core.communication import clear_comm_cache
from repro.core.model import AMPeD
from repro.core.operations import configure_operations_cache
from repro.errors import MappingError, MemoryCapacityError
from repro.hardware.catalog import megatron_a100_cluster
from repro.hardware.system import SystemSpec
from repro.parallelism.mapping import enumerate_mappings
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.search.compiler import clear_compiled_cache, compile_sweep
from repro.search.resilience import run_sweep
from repro.search.vectorized import HAVE_NUMPY, VectorizedSweep
from repro.transformer.config import TransformerConfig
from repro.transformer.zoo import MEGATRON_1T, MODELS

#: Top-level keys every benchmark payload must carry, with their types.
BENCH_SCHEMA = {
    "benchmark": str,
    "model": str,
    "system": str,
    "global_batch": int,
    "n_mappings": int,
    "reference": dict,
    "fast": dict,
    "compiled": dict,
    "speedup": float,
    "compiled_speedup_vs_fast": float,
    "max_rel_error": float,
    "explore": dict,
}

#: Keys every timed phase (``reference``/``fast``/``compiled``) must
#: carry (``compiled`` additionally reports ``build_seconds``).
PHASE_KEYS = ("path", "seconds", "mappings_per_s")

#: Top-level keys the payload carries only when NumPy is importable
#: (the vectorized backend is an optional extra); validated when
#: present, never required.  ``parallel_transport`` additionally needs
#: ``multiprocessing.shared_memory``.
OPTIONAL_BENCH_KEYS = {
    "vectorized": dict,
    "vectorized_speedup_vs_compiled": float,
    "crossproduct": dict,
    "parallel_transport": dict,
}

#: Batch replication factor for the vectorized phase: the Case Study I
#: space replicated enough times that the array program's per-call
#: overhead amortizes and the steady-state gather+sum rate is what
#: gets measured (the compiled phase analogously measures post-prefill
#: steady state).
VECTORIZED_REPLICATION = 512

#: Candidate floor for the cross-product phase: models x systems x
#: bubble-overlap grid x mappings, sized to at least this many
#: end-to-end candidate evaluations.
CROSSPRODUCT_TARGET = 1_000_000

#: Lane floor for the parallel-transport phase: the shipped chunk's
#: bound batch holds at least this many lanes, matching the
#: cross-product scale a parallel sweep actually partitions.
TRANSPORT_TARGET_LANES = 1_000_000

#: One-sided floor on the transport phase's per-worker table warm-up
#: speedup (shared-memory attach vs pickle-by-value): asserted by
#: ``bench_dse.py`` and held by the CI gate whenever the measured
#: payload carries the phase.
MIN_TRANSPORT_WARMUP_SPEEDUP = 5.0


def _clear_caches() -> None:
    """Reset every evaluation-engine memo so a timed phase starts cold."""
    configure_operations_cache()
    clear_comm_cache()


def _time_path(template: AMPeD, mappings, global_batch: int,
               path: str) -> Tuple[float, List[Optional[float]]]:
    """Seconds to evaluate every mapping on ``path``, plus the totals."""
    amped = replace(template, evaluation_path=path)
    _clear_caches()
    totals: List[Optional[float]] = []
    start = time.perf_counter()
    for spec in mappings:
        candidate = replace(amped, parallelism=spec)
        try:
            totals.append(candidate.estimate_batch(global_batch).total)
        except (MappingError, MemoryCapacityError):
            totals.append(None)
    return time.perf_counter() - start, totals


def _time_compiled(template: AMPeD, mappings, global_batch: int
                   ) -> Tuple[float, float, List[Optional[float]]]:
    """Compiled-path timing: the one-off term-table build (cold caches)
    and the steady-state seconds to evaluate every mapping, plus the
    totals."""
    amped = replace(template, evaluation_path="compiled")
    _clear_caches()
    clear_compiled_cache()
    build_start = time.perf_counter()
    compiled = compile_sweep(amped, global_batch)
    compiled.prefill(mappings, tune_microbatches=False)
    build_s = time.perf_counter() - build_start
    totals: List[Optional[float]] = []
    start = time.perf_counter()
    for spec in mappings:
        try:
            totals.append(compiled.batch_time(spec))
        except (MappingError, MemoryCapacityError):
            totals.append(None)
    return build_s, time.perf_counter() - start, totals


def _time_vectorized(template: AMPeD, mappings, global_batch: int,
                     replication: int = VECTORIZED_REPLICATION
                     ) -> Tuple[float, float, float, int,
                                List[Optional[float]]]:
    """Vectorized-path timing: the one-off bind (projection + batch
    fill), the candidate-independent setup cost (a single-candidate
    bind — the fixed overhead the auto-upgrade threshold tuner
    amortizes), the steady-state seconds to evaluate the replicated
    batch, plus the original mappings' totals (NaN -> ``None``) for
    the exactness cross-check."""
    amped = replace(template, evaluation_path="compiled")
    _clear_caches()
    clear_compiled_cache()
    compiled = compile_sweep(amped, global_batch)
    vectorized = VectorizedSweep(compiled)
    setup_start = time.perf_counter()
    vectorized.bind(list(mappings[:1]), tune_microbatches=False)
    setup_s = time.perf_counter() - setup_start
    batch_specs = list(mappings) * replication
    build_start = time.perf_counter()
    batch = vectorized.bind(batch_specs, tune_microbatches=False)
    build_s = time.perf_counter() - build_start
    start = time.perf_counter()
    times = batch.lane_times()
    steady_s = time.perf_counter() - start
    # Untuned lanes are 1:1 with candidates, so the first len(mappings)
    # lanes are exactly the unreplicated sweep.
    head = times[:len(mappings)].tolist()
    totals = [None if math.isnan(total) else total for total in head]
    return build_s, setup_s, steady_s, len(batch_specs), totals


def run_crossproduct_benchmark(target: int = CROSSPRODUCT_TARGET,
                               global_batches: Tuple[int, ...] = (512,
                                                                  2048)
                               ) -> dict:
    """Cross-product sweep: every zoo model x cluster scale x bubble
    overlap ratio x legal mapping, evaluated end-to-end (bind +
    microbatch-tuned best time) through the vectorized backend.

    The bubble-overlap grid is sized so the space holds at least
    ``target`` candidate mappings; the payload reports the wall-clock
    end-to-end rate (projection and batch fill included — the honest
    number a planner would see) and the global winner.
    """
    base_system = megatron_a100_cluster()
    systems = [replace(base_system, n_nodes=n_nodes)
               for n_nodes in (32, 64, 128, 256)]
    cells = []
    per_grid_point = 0
    for model_key in sorted(MODELS):
        model = MODELS[model_key]
        for system in systems:
            mappings = enumerate_mappings(system, model)
            if not mappings:
                continue
            per_grid_point += len(mappings)
            cells.append((model, system, mappings))
    per_grid_point *= len(global_batches)
    n_ratios = max(1, -(-target // per_grid_point))  # ceil division
    ratios = [index / n_ratios for index in range(n_ratios)]

    _clear_caches()
    clear_compiled_cache()
    n_candidates = 0
    n_lanes = 0
    best: Optional[dict] = None
    start = time.perf_counter()
    for model, system, mappings in cells:
        template = AMPeD.for_mapping(
            model, system, dp=system.n_accelerators,
            efficiency=CASE_STUDY_EFFICIENCY)
        specs = [replace(spec, bubble_overlap_ratio=ratio)
                 for ratio in ratios for spec in mappings]
        for global_batch in global_batches:
            compiled = compile_sweep(template, global_batch)
            batch = VectorizedSweep(compiled).bind(
                specs, tune_microbatches=True)
            times, picks, feasible = batch.best_lanes()
            n_candidates += len(specs)
            n_lanes += batch.n_lanes
            if feasible.any():
                index = int(_argmin_finite(times, feasible))
                cell_best = float(times[index])
                if best is None or cell_best < best["batch_time_s"]:
                    best = {
                        "batch_time_s": cell_best,
                        "model": model.name,
                        "system": system.describe(),
                        "global_batch": global_batch,
                        "mapping": specs[index].describe(),
                    }
    seconds = time.perf_counter() - start
    return {
        "n_models": len({model.name for model, *_ in cells}),
        "n_systems": len(systems),
        "n_global_batches": len(global_batches),
        "n_overlap_ratios": n_ratios,
        "n_mappings": n_candidates,
        "n_lanes": n_lanes,
        "seconds": seconds,
        "mappings_per_s": n_candidates / seconds if seconds > 0
        else 0.0,
        "best": best,
    }


def _argmin_finite(times, feasible):
    """Index of the smallest feasible time (requires one feasible)."""
    import numpy as np
    masked = np.where(feasible, times, np.inf)
    return masked.argmin()


def _best_of(action, repeats: int = 3):
    """``(seconds, result)`` for the fastest of ``repeats`` runs (HTTP-
    and allocator-jitter smoothing, same convention as the serve
    bench); every run's result is returned so callers can clean up."""
    best_s = math.inf  # amplint: disable=AMP003 — timing fold seed, replaced by the first measurement
    results = []
    for _ in range(repeats):
        started = time.perf_counter()
        results.append(action())
        best_s = min(best_s, time.perf_counter() - started)
    return best_s, results


def run_transport_benchmark(target_lanes: int = TRANSPORT_TARGET_LANES
                            ) -> Optional[dict]:
    """Parallel-sweep chunk transport: pickle-by-value vs shared memory.

    A parallel vectorized sweep ships :class:`~repro.search.vectorized.
    PreboundChunk` objects to pool workers.  The per-worker warm-up this
    phase tracks is the cost of materializing the chunk's dense lane
    tables in the worker: the pickle fallback copies every array by
    value on unpickle, while the shared-memory route maps the published
    segment and builds O(1) views (``table_seconds`` under ``pickle``
    vs ``shm``; ``warmup_speedup`` is their ratio — the ISSUE's >= 5x
    acceptance bar lives on it).  Whole-chunk serialize/deserialize
    timings ride along for honesty: they include the candidate spec
    list, which both routes ship identically, so the end-to-end ratio
    is smaller than the table ratio by construction.

    Returns ``None`` when NumPy or ``multiprocessing.shared_memory``
    is unavailable (the payload then simply lacks the phase, like the
    ``vectorized`` phase without NumPy).
    """
    from repro.search import shm
    if not HAVE_NUMPY or not shm.HAVE_SHM:
        return None
    import pickle

    import numpy as np

    from repro.search.vectorized import bind_chunk

    system = megatron_a100_cluster()
    model = MEGATRON_1T
    template = AMPeD.for_mapping(model, system,
                                 dp=system.n_accelerators,
                                 efficiency=CASE_STUDY_EFFICIENCY)
    mappings = enumerate_mappings(system, model)
    _clear_caches()
    clear_compiled_cache()
    compiled = compile_sweep(replace(template,
                                     evaluation_path="compiled"), 2048)
    replication = max(1, -(-target_lanes // max(1, len(mappings))))
    specs = list(mappings) * replication
    chunk = bind_chunk(template, compiled, specs, 2048, False)
    if chunk.batch is None:
        return None

    attached = []
    try:
        # Pickle fallback: arrays ship by value.
        dumps_s, blobs = _best_of(lambda: pickle.dumps(chunk))
        blob = blobs[-1]
        loads_s, restored = _best_of(lambda: pickle.loads(blob))
        reference_times = restored[-1].batch.lane_times()
        # Table-only pickle cost: just the dense arrays, no spec list.
        batch_state = chunk.batch.__getstate__()
        tables = {
            key: value for key, value in batch_state.items()
            if isinstance(value, np.ndarray)
            or (isinstance(value, list) and value
                and all(isinstance(item, np.ndarray)
                        for item in value))}
        table_blob = pickle.dumps(tables)
        table_pickle_s, _ = _best_of(
            lambda: pickle.loads(table_blob))

        # Shared-memory route: publish once, workers attach by name.
        publish_start = time.perf_counter()
        if not chunk.publish_shared():
            return None
        publish_s = time.perf_counter() - publish_start
        shm_dumps_s, shm_blobs = _best_of(lambda: pickle.dumps(chunk))
        shm_blob = shm_blobs[-1]

        def _attach_chunk():
            out = pickle.loads(shm_blob)
            attached.append(out)
            return out

        shm_loads_s, shm_restored = _best_of(_attach_chunk)

        def _table_attach():
            attachment = chunk._shm_handle.attach()
            state = shm.restore_ndarray_state(dict(chunk._shm_state),
                                              attachment)
            return state, attachment

        table_attach_s = math.inf  # amplint: disable=AMP003 — timing fold seed, replaced by the first measurement
        for _ in range(3):
            started = time.perf_counter()
            state, attachment = _table_attach()
            table_attach_s = min(table_attach_s,
                                 time.perf_counter() - started)
            state.clear()  # no view may outlive the mapping
            attachment.close()

        bit_exact = bool(np.array_equal(
            reference_times, shm_restored[-1].batch.lane_times(),
            equal_nan=True))
        segment_bytes = chunk._shm_handle.nbytes
    finally:
        for out in attached:
            out.detach_shared()
        chunk.release_shared()

    return {
        "n_candidates": len(specs),
        "n_lanes": int(chunk.batch.n_lanes),
        "segment_bytes": int(segment_bytes),
        "pickle": {
            "bytes": len(blob),
            "dumps_seconds": dumps_s,
            "loads_seconds": loads_s,
            "table_seconds": table_pickle_s,
        },
        "shm": {
            "bytes": len(shm_blob),
            "publish_seconds": publish_s,
            "dumps_seconds": shm_dumps_s,
            "loads_seconds": shm_loads_s,
            "table_seconds": table_attach_s,
        },
        "warmup_speedup": table_pickle_s / max(table_attach_s, 1e-12),
        "bit_exact": bit_exact,
    }


def run_dse_benchmark(system: Optional[SystemSpec] = None,
                      model: Optional[TransformerConfig] = None,
                      global_batch: int = 2048,
                      max_results: int = 10) -> dict:
    """Run the throughput benchmark and return the payload dict.

    Defaults to the Case Study I exploration space (the 1024-A100
    cluster) with Megatron-1T, whose 128 identical layers are the
    collapsed path's headline case.  With NumPy importable the payload
    additionally carries the ``vectorized`` phase, and — on the
    default Case Study workload only (the cross-product sweeps its own
    model x system grid, so a custom workload would not change it) —
    the million-candidate ``crossproduct`` phase.
    """
    headline_workload = system is None and model is None
    if system is None:
        system = megatron_a100_cluster()
    if model is None:
        model = MEGATRON_1T
    template = AMPeD.for_mapping(model, system, dp=system.n_accelerators,
                                 efficiency=CASE_STUDY_EFFICIENCY)
    mappings = enumerate_mappings(system, model)

    reference_s, reference_totals = _time_path(
        template, mappings, global_batch, "per_layer")
    fast_s, fast_totals = _time_path(
        template, mappings, global_batch, "collapsed")
    build_s, compiled_s, compiled_totals = _time_compiled(
        template, mappings, global_batch)
    checked_totals = [fast_totals, compiled_totals]

    vectorized_phase: Optional[dict] = None
    crossproduct: Optional[dict] = None
    transport: Optional[dict] = None
    if HAVE_NUMPY:
        vec_build_s, vec_setup_s, vec_s, n_vectorized, \
            vectorized_totals = _time_vectorized(template, mappings,
                                                 global_batch)
        checked_totals.append(vectorized_totals)
        vectorized_phase = dict(
            _phase("vectorized", vec_s, n_vectorized),
            build_seconds=vec_build_s,
            setup_seconds=vec_setup_s,
            n_candidates=n_vectorized,
            replication=VECTORIZED_REPLICATION)
        if headline_workload:
            crossproduct = run_crossproduct_benchmark()
            transport = run_transport_benchmark()

    max_rel_error = 0.0
    for candidate_totals in checked_totals:
        for total, reference_total in zip(candidate_totals,
                                          reference_totals):
            if total is None or reference_total is None:
                continue
            scale = max(abs(reference_total), 1e-300)
            max_rel_error = max(max_rel_error,
                                abs(total - reference_total) / scale)

    _clear_caches()
    explore_start = time.perf_counter()
    outcome = run_sweep(template, global_batch, mappings=mappings,
                        max_results=max_results)
    explore_s = time.perf_counter() - explore_start
    ranked = outcome.results

    n_mappings = len(mappings)
    payload = {
        "benchmark": "dse-throughput",
        "model": model.name,
        "system": system.describe(),
        "global_batch": global_batch,
        "n_mappings": n_mappings,
        "reference": _phase("per_layer", reference_s, n_mappings),
        "fast": _phase("collapsed", fast_s, n_mappings),
        "compiled": dict(_phase("compiled", compiled_s, n_mappings),
                         build_seconds=build_s),
        # Floor the denominator instead of emitting an infinity sentinel:
        # inf does not survive JSON round-trips and would defeat the
        # MappingError convention (analyzer rule AMP003).
        "speedup": reference_s / max(fast_s, 1e-12),
        "compiled_speedup_vs_fast": fast_s / max(compiled_s, 1e-12),
        "max_rel_error": max_rel_error,
        "explore": {
            "seconds": explore_s,
            "n_results": len(ranked),
            "best_mapping": ranked[0].label if ranked else None,
            "coverage": outcome.report.as_dict(),
        },
    }
    if vectorized_phase is not None:
        payload["vectorized"] = vectorized_phase
        payload["vectorized_speedup_vs_compiled"] = (
            vectorized_phase["mappings_per_s"]
            / max(payload["compiled"]["mappings_per_s"], 1e-12))
    if crossproduct is not None:
        payload["crossproduct"] = crossproduct
    if transport is not None:
        payload["parallel_transport"] = transport
    return payload


def _phase(path: str, seconds: float, n_mappings: int) -> dict:
    return {
        "path": path,
        "seconds": seconds,
        "mappings_per_s": n_mappings / seconds if seconds > 0 else 0.0,
    }


def validate_bench_result(payload: dict) -> None:
    """Raise ``ValueError`` when ``payload`` violates the bench schema."""
    if not isinstance(payload, dict):
        raise ValueError(f"payload must be a dict, got {type(payload)}")
    for key, expected in BENCH_SCHEMA.items():
        if key not in payload:
            raise ValueError(f"payload missing key {key!r}")
        value = payload[key]
        if expected is float:
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                raise ValueError(
                    f"{key!r} must be a number, got {value!r}")
        elif not isinstance(value, expected):
            raise ValueError(
                f"{key!r} must be {expected.__name__}, got {value!r}")
    for phase_name in ("reference", "fast", "compiled"):
        phase = payload[phase_name]
        for key in PHASE_KEYS:
            if key not in phase:
                raise ValueError(f"{phase_name!r} missing key {key!r}")
        if phase["seconds"] <= 0 or phase["mappings_per_s"] <= 0:
            raise ValueError(
                f"{phase_name!r} timings must be positive, got {phase}")
    compiled_phase = payload["compiled"]
    if "build_seconds" not in compiled_phase:
        raise ValueError("'compiled' missing key 'build_seconds'")
    if compiled_phase["build_seconds"] <= 0:
        raise ValueError(
            f"'compiled' build_seconds must be positive, got "
            f"{compiled_phase['build_seconds']}")
    for key in ("speedup", "compiled_speedup_vs_fast"):
        if payload[key] <= 0:
            raise ValueError(f"{key} must be positive, got "
                             f"{payload[key]}")
    if payload["max_rel_error"] < 0:
        raise ValueError(f"max_rel_error must be non-negative, got "
                         f"{payload['max_rel_error']}")
    if payload["n_mappings"] < 1:
        raise ValueError(f"n_mappings must be >= 1, got "
                         f"{payload['n_mappings']}")
    explore_stats = payload["explore"]
    for key in ("seconds", "n_results", "best_mapping"):
        if key not in explore_stats:
            raise ValueError(f"'explore' missing key {key!r}")
    for key, expected in OPTIONAL_BENCH_KEYS.items():
        if key not in payload:
            continue
        value = payload[key]
        if expected is float:
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                raise ValueError(
                    f"{key!r} must be a number, got {value!r}")
        elif not isinstance(value, expected):
            raise ValueError(
                f"{key!r} must be {expected.__name__}, got {value!r}")
    if "vectorized" in payload:
        phase = payload["vectorized"]
        for key in PHASE_KEYS + ("build_seconds",):
            if key not in phase:
                raise ValueError(f"'vectorized' missing key {key!r}")
        if phase["seconds"] <= 0 or phase["mappings_per_s"] <= 0 \
                or phase["build_seconds"] <= 0:
            raise ValueError(
                f"'vectorized' timings must be positive, got {phase}")
    if "crossproduct" in payload:
        cross = payload["crossproduct"]
        for key in ("n_mappings", "seconds", "mappings_per_s"):
            if key not in cross:
                raise ValueError(f"'crossproduct' missing key {key!r}")
        if cross["n_mappings"] < 1 or cross["seconds"] <= 0 \
                or cross["mappings_per_s"] <= 0:
            raise ValueError(
                f"'crossproduct' coverage must be positive, got "
                f"{cross}")
    if "parallel_transport" in payload:
        transport = payload["parallel_transport"]
        for key in ("n_lanes", "warmup_speedup", "bit_exact",
                    "pickle", "shm"):
            if key not in transport:
                raise ValueError(
                    f"'parallel_transport' missing key {key!r}")
        if transport["n_lanes"] < 1 \
                or transport["warmup_speedup"] <= 0:
            raise ValueError(
                f"'parallel_transport' coverage must be positive, "
                f"got {transport}")
        for route in ("pickle", "shm"):
            timings = transport[route]
            for key in ("bytes", "loads_seconds", "table_seconds"):
                if key not in timings:
                    raise ValueError(
                        f"'parallel_transport.{route}' missing key "
                        f"{key!r}")


def write_bench_json(payload: dict, path) -> Path:
    """Validate and write ``payload`` to ``path``; returns the path."""
    validate_bench_result(payload)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return target


# ---------------------------------------------------------------------------
# Regression gate + trajectory (CI)
# ---------------------------------------------------------------------------

#: Fractional slowdown tolerated by the CI gate before it fails: a
#: phase may measure down to ``(1 - tolerance)`` of its committed
#: ``mappings_per_s`` (CI runners are noisy; a genuine regression from
#: an algorithmic change dwarfs 20%).
GATE_TOLERANCE = 0.20

#: Phases the gate compares against the committed baseline.  The
#: per-layer reference is deliberately ungated — it is the semantics
#: oracle, not a performance product.
GATED_PHASES = ("fast", "compiled", "vectorized")


def gated_phases_present(measured: dict, committed: dict
                         ) -> List[str]:
    """The gated phases carried by *both* payloads — the only ones a
    rate comparison is meaningful for (e.g. a no-NumPy environment
    produces no ``vectorized`` phase; a pre-vectorized baseline
    commits none)."""
    return [phase for phase in GATED_PHASES
            if phase in measured and phase in committed]


def check_bench_regression(measured: dict, committed: dict,
                           tolerance: float = GATE_TOLERANCE
                           ) -> List[str]:
    """Compare a fresh benchmark payload against the committed one.

    Returns one human-readable failure string per gated phase whose
    measured ``mappings_per_s`` fell below ``(1 - tolerance)`` of the
    committed value (one-sided: running *faster* than the baseline is
    progress, not a failure).  Only phases present in both payloads
    are rate-compared; a gated phase this run produced that the
    committed baseline lacks fails with an actionable message naming
    the fix (regenerate the baseline) instead of a ``KeyError``.
    Phases only the baseline carries (e.g. ``vectorized`` gated on a
    machine without NumPy) are skipped — the environment cannot
    measure them.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(
            f"tolerance must be in [0, 1), got {tolerance}")
    failures: List[str] = []
    for phase_name in gated_phases_present(measured, committed):
        measured_rate = measured[phase_name]["mappings_per_s"]
        committed_rate = committed[phase_name]["mappings_per_s"]
        floor = (1.0 - tolerance) * committed_rate
        if measured_rate < floor:
            failures.append(
                f"{phase_name}: {measured_rate:.0f} mappings/s is below "
                f"{floor:.0f} ({1.0 - tolerance:.0%} of the committed "
                f"{committed_rate:.0f})")
    for phase_name in GATED_PHASES:
        if phase_name in measured and phase_name not in committed:
            failures.append(
                f"{phase_name}: this run produced the phase but the "
                f"committed BENCH_dse.json lacks it — regenerate the "
                f"baseline (PYTHONPATH=src python "
                f"benchmarks/bench_dse.py) so the gate can track it")
    # The transport phase gates on absolute one-sided floors, not a
    # baseline ratio: warm-up speedups swing with allocator state, but
    # the shared-memory route must always clear the acceptance bar and
    # stay bit-exact whenever the environment can measure it.
    transport = measured.get("parallel_transport")
    if transport is not None:
        if transport["warmup_speedup"] < MIN_TRANSPORT_WARMUP_SPEEDUP:
            failures.append(
                f"parallel_transport: per-worker table warm-up "
                f"speedup {transport['warmup_speedup']:.1f}x is below "
                f"the {MIN_TRANSPORT_WARMUP_SPEEDUP:.0f}x floor")
        if not transport.get("bit_exact", False):
            failures.append(
                "parallel_transport: shared-memory chunk is not "
                "bit-exact against the pickled chunk")
    return failures


def trajectory_entry(payload: dict, timestamp: str,
                     commit: str = "unknown") -> dict:
    """One ``BENCH_trajectory.json`` row distilled from a payload.

    The vectorized/cross-product fields are ``None`` for payloads
    produced without NumPy (or predating the vectorized backend), so
    the trajectory stays appendable across environments.  Likewise the
    ``obs_*``/``serve_*`` fields: ``bench_gate.py`` attaches the
    observability-overhead and serve-latency suite results under
    ``payload["obs"]``/``payload["serve"]`` when available, and rows
    predating those suites simply hold ``None``.
    """
    vectorized = payload.get("vectorized") or {}
    crossproduct = payload.get("crossproduct") or {}
    transport = payload.get("parallel_transport") or {}
    obs = payload.get("obs") or {}
    serve = payload.get("serve") or {}
    serve_warm = serve.get("warm") or {}
    serve_burst = serve.get("burst") or {}
    serve_multi = serve.get("multi_worker") or {}
    return {
        "timestamp": timestamp,
        "commit": commit,
        "n_mappings": payload["n_mappings"],
        "reference_mappings_per_s":
            payload["reference"]["mappings_per_s"],
        "fast_mappings_per_s": payload["fast"]["mappings_per_s"],
        "compiled_mappings_per_s":
            payload["compiled"]["mappings_per_s"],
        "compiled_build_seconds": payload["compiled"]["build_seconds"],
        "speedup": payload["speedup"],
        "compiled_speedup_vs_fast":
            payload["compiled_speedup_vs_fast"],
        "max_rel_error": payload["max_rel_error"],
        "vectorized_mappings_per_s":
            vectorized.get("mappings_per_s"),
        "vectorized_build_seconds": vectorized.get("build_seconds"),
        "vectorized_setup_seconds": vectorized.get("setup_seconds"),
        "vectorized_n_candidates": vectorized.get("n_candidates"),
        "vectorized_speedup_vs_compiled":
            payload.get("vectorized_speedup_vs_compiled"),
        "crossproduct_n_mappings": crossproduct.get("n_mappings"),
        "crossproduct_mappings_per_s":
            crossproduct.get("mappings_per_s"),
        "transport_warmup_speedup": transport.get("warmup_speedup"),
        "obs_enabled_overhead": obs.get("enabled_overhead"),
        "serve_warm_p50_s": serve_warm.get("p50_seconds"),
        "serve_warm_requests_per_s": serve_warm.get("requests_per_s"),
        "serve_burst_requests_per_s": serve_burst.get("requests_per_s"),
        "serve_multiworker_requests_per_s":
            serve_multi.get("requests_per_s"),
    }


def append_trajectory(entry: dict, path) -> Path:
    """Append ``entry`` to the JSON list at ``path`` (created when
    missing); returns the path."""
    target = Path(path)
    if target.exists():
        history = json.loads(target.read_text())
        if not isinstance(history, list):
            raise ValueError(
                f"{target} must hold a JSON list, got "
                f"{type(history).__name__}")
    else:
        history = []
    history.append(entry)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(history, indent=2) + "\n")
    return target
