"""Per-mapping tuning knobs: the microbatch count.

The paper tunes the number of microbatches per batch to the machine
("we tune the microbatch size according to the available memory",
§V-C; the validation runs pick ``N_ub = N_PP``).  The choice trades
pipeline-bubble share ``(N_PP - 1)/N_ub`` (favoring many microbatches)
against microbatch efficiency ``eff(b_replica / N_ub)`` (favoring few),
so the optimum depends on the efficiency fit and the mapping.
:func:`optimize_microbatches` searches the trade-off exhaustively over
a geometric candidate grid.
"""

from __future__ import annotations

import math
from dataclasses import replace
from functools import lru_cache
from typing import Iterable, List, Optional, Tuple

from repro.core.model import AMPeD
from repro.errors import MappingError, MemoryCapacityError, ReproError
from repro.parallelism.spec import ParallelismSpec


def microbatch_candidates(amped: AMPeD, global_batch: int) -> List[int]:
    """Candidate ``N_ub`` values for ``amped``'s mapping (see
    :func:`candidate_microbatch_counts`)."""
    return candidate_microbatch_counts(amped.parallelism, global_batch)


def candidate_microbatch_counts(spec: ParallelismSpec,
                                global_batch: int) -> List[int]:
    """Candidate ``N_ub`` values: powers of two from the pipeline degree
    up to the per-replica batch (an ``N_ub`` below ``N_PP`` starves the
    pipeline; above the replica batch it dices sequences).

    Depends only on ``(dp, pp)`` of the mapping, which is why the sweep
    compiler can call it without constructing an AMPeD candidate — and
    why the grid memoizes on ``(replica_batch, lowest)``: a sweep calls
    this once per mapping, but distinct mappings collapse onto a
    handful of grids."""
    replica_batch = max(1, global_batch // spec.dp)
    lowest = max(1, spec.pp)
    return list(_candidate_grid(replica_batch, lowest))


@lru_cache(maxsize=1024)
def _candidate_grid(replica_batch: int, lowest: int) -> Tuple[int, ...]:
    candidates = []
    value = 1
    while value <= replica_batch:
        if value >= lowest:
            candidates.append(value)
        value *= 2
    if not candidates:
        candidates = [lowest]
    return tuple(candidates)


def optimize_microbatches(amped: AMPeD, global_batch: int,
                          candidates: Optional[Iterable[int]] = None
                          ) -> Tuple[AMPeD, float]:
    """Pick the ``N_ub`` minimizing the per-batch time.

    Returns the re-tuned model and its per-batch time.  Candidates that
    produce an infeasible microbatch (below one sequence), that blow
    the memory budget (:class:`MemoryCapacityError`), or whose estimate
    comes back non-finite are skipped; if every candidate fails, the
    last failure is re-raised with the same type and the failing
    ``N_ub`` named in the message.
    """
    if candidates is None:
        candidates = microbatch_candidates(amped, global_batch)
    best: Optional[Tuple[AMPeD, float]] = None
    last_error: Optional[ReproError] = None
    last_n_ub: Optional[int] = None
    for n_ub in candidates:
        tuned = replace(
            amped, parallelism=amped.parallelism.with_microbatches(n_ub))
        try:
            batch_time = tuned.estimate_batch(global_batch).total
        except (MappingError, MemoryCapacityError) as error:
            last_error, last_n_ub = error, n_ub
            continue
        if not math.isfinite(batch_time):
            # A NaN would poison the < comparison below (every NaN
            # comparison is false) and silently win or lose at random;
            # treat non-finite estimates as infeasible candidates.
            last_error = MappingError(
                f"batch time is non-finite ({batch_time!r})")
            last_n_ub = n_ub
            continue
        if best is None or batch_time < best[1]:
            best = (tuned, batch_time)
    if best is None:
        if last_error is None:
            raise MappingError(
                f"no feasible microbatch count for batch {global_batch} "
                f"under {amped.parallelism.describe()}")
        raise _with_failing_n_ub(last_error, last_n_ub) from last_error
    return best


def _with_failing_n_ub(error: ReproError, n_ub: int) -> ReproError:
    """Rebuild ``error`` (same type) with the failing ``N_ub`` named,
    preserving :class:`MemoryCapacityError`'s size attributes."""
    message = f"{error} (failing N_ub={n_ub})"
    if isinstance(error, MemoryCapacityError):
        return MemoryCapacityError(
            message, required_bytes=error.required_bytes,
            available_bytes=error.available_bytes)
    return type(error)(message)
