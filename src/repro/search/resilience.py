"""Fault-tolerant sweep runtime: supervised workers + resumable journal.

:func:`repro.search.dse.explore` made large design-space sweeps fast;
this module makes them *survivable*.  A long exploration is the hot
path toward ranking millions of candidate mappings, and PR 1's
process-pool fan-out turned one hung worker, one crashed process, or
one ``Ctrl-C`` into hours of lost exact top-k work.  The paper already
applies reliability discipline to the *modeled* system (the Daly
checkpoint model in :mod:`repro.runtime.reliability`); this module
applies the same discipline to the sweeps themselves:

- **Supervised workers** — every batch of candidate evaluations gets a
  wall-clock ``timeout``; a timeout, a dead worker process, or an
  unexpected worker exception tears the pool down, retries with
  exponential backoff, and after ``retries`` consecutive failures
  degrades gracefully to serial evaluation with a logged reason.  A
  sweep never hangs silently and never dies with nothing to show.
- **Resumable journal** — with ``journal_path`` set, every candidate's
  fate (evaluated with its timings, or skipped with a truthful category
  from the :data:`~repro.search.dse.SKIP_CATEGORIES` vocabulary) is
  appended to a JSONL journal as soon as it is known.  ``resume=True``
  replays the journal, never re-evaluates a finished candidate, and
  continues deterministically: journal + fresh completion equals one
  uninterrupted run.
- **SIGINT-safe cancellation** — the first ``Ctrl-C`` stops the sweep
  at the next candidate boundary and still returns the exact top-k over
  everything evaluated so far, flagged ``partial=True`` (a second
  ``Ctrl-C`` hard-aborts).  Callers that prefer exceptions can ask for
  :class:`~repro.errors.SweepInterrupted`, which carries the journal
  path and the partial ranking.

Coverage accounting is surfaced as a
:class:`~repro.reporting.sweep.SweepReport`.  The same
supervise/journal/resume pattern is intended for every future
long-running workload (fitting, sensitivity, experiment grids); see
``docs/robustness.md`` for the state machine and the journal schema.
"""

from __future__ import annotations

import json
import logging
import math
import random
import signal
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field, replace
from functools import partial
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.breakdown import TrainingTimeBreakdown
from repro.core.model import AMPeD
from repro.errors import (
    ConfigurationError,
    MemoryCapacityError,
    ReproError,
    SweepInterrupted,
    WorkerError,
)
from repro.obs.metrics import get_metrics
from repro.obs.trace import span
from repro.parallelism.mapping import enumerate_mappings
from repro.parallelism.spec import ParallelismSpec
from repro.reporting.sweep import SweepReport
from repro.search.compiler import CompiledSweep, compile_sweep, warm_worker
from repro.search.shm import release_shipment, ship_compiled
from repro.search.dse import (
    SKIP_MAPPING_INFEASIBLE,
    SKIP_MEMORY_CAPACITY,
    SKIP_PRUNED,
    SKIP_WORKER_ERROR,
    CandidateOutcome,
    ExplorationResult,
    _BoundPruner,
    evaluate_candidate,
)
from repro.search.vectorized import (
    DEFAULT_CHUNK_CANDIDATES,
    bind_chunk,
    evaluate_prebound,
    require_numpy,
    resolve_evaluation_path,
)

_LOG = logging.getLogger("repro.search.resilience")

#: Version stamped into every journal header; bumped on schema changes.
JOURNAL_SCHEMA_VERSION = 1

#: Header fields that must match for a journal to be resumable against
#: a sweep (a journal written for a different workload must not
#: silently poison the ranking).
_HEADER_IDENTITY_FIELDS = ("model", "system", "global_batch",
                           "tune_microbatches", "enforce_memory",
                           "n_candidates")

#: Ceiling on one exponential-backoff pause, seconds.
_MAX_BACKOFF_S = 30.0


def spec_key(spec: ParallelismSpec) -> str:
    """Canonical journal key for a candidate, as submitted (pre-tuning)."""
    return json.dumps(asdict(spec), sort_keys=True,
                      separators=(",", ":"))


# ---------------------------------------------------------------------------
# Journal
# ---------------------------------------------------------------------------


class SweepJournal:
    """Append-only JSONL record of every candidate's fate.

    Line 1 is a versioned header identifying the sweep; each following
    line is one candidate record (``status`` ``"evaluated"`` with the
    numbers needed to reconstruct its :class:`ExplorationResult`, or
    ``"skipped"`` with a category and detail).  Records are flushed as
    written, so a crash loses at most the line being written — and the
    loader tolerates exactly that one torn trailing line.
    """

    def __init__(self, path: Path, header: dict,
                 done: Dict[str, dict], handle,
                 prior_metrics: Optional[dict] = None) -> None:
        self.path = path
        self.header = header
        self.done = done
        self._handle = handle
        #: Last ``kind: "metrics"`` record of the journal being
        #: resumed, or ``None`` — the base the next cumulative
        #: snapshot adds onto.
        self.prior_metrics = prior_metrics

    # -- construction -------------------------------------------------------

    @classmethod
    def open(cls, path, header: dict,
             resume: bool = False) -> "SweepJournal":
        """Create a fresh journal, or re-open one for resumption.

        With ``resume`` and an existing file, the header is checked
        against ``header`` (:class:`ConfigurationError` on mismatch)
        and previously journaled candidates are loaded into ``done``.
        Without ``resume`` an existing file is started over.
        """
        path = Path(path)
        if resume and path.exists():
            stored_header, done = cls.load(path)
            cls._check_identity(stored_header, header, path)
            handle = path.open("a", encoding="utf-8")
            return cls(path, stored_header, done, handle,
                       prior_metrics=cls.load_metrics(path))
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = path.open("w", encoding="utf-8")
        journal = cls(path, header, {}, handle)
        journal._write(header)
        return journal

    @classmethod
    def load(cls, path) -> Tuple[dict, Dict[str, dict]]:
        """Parse a journal into ``(header, done)`` without opening it
        for writing.  Raises :class:`ConfigurationError` on a missing
        or version-incompatible header; a torn final line (crash during
        a write) is dropped with a warning."""
        path = Path(path)
        header: Optional[dict] = None
        done: Dict[str, dict] = {}
        with path.open("r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if number == len(lines):
                    _LOG.warning(
                        "journal %s: dropping torn final line %d",
                        path, number)
                    continue
                raise ConfigurationError(
                    f"journal {path}: line {number} is not valid JSON")
            if header is None:
                if record.get("kind") != "header":
                    raise ConfigurationError(
                        f"journal {path}: first record must be a header, "
                        f"got {record.get('kind')!r}")
                version = record.get("schema_version")
                if version != JOURNAL_SCHEMA_VERSION:
                    raise ConfigurationError(
                        f"journal {path}: schema version {version!r} is "
                        f"not supported (expected "
                        f"{JOURNAL_SCHEMA_VERSION})")
                header = record
                continue
            if record.get("kind") == "candidate" and "key" in record:
                done[record["key"]] = record
        if header is None:
            raise ConfigurationError(
                f"journal {path} is empty — nothing to resume")
        return header, done

    @classmethod
    def load_metrics(cls, path) -> Optional[dict]:
        """The last cumulative ``kind: "metrics"`` record in a journal,
        or ``None``.  Unparseable lines are skipped (the candidate
        loader already warns about the only legitimate one, a torn
        final line)."""
        path = Path(path)
        latest: Optional[dict] = None
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if record.get("kind") == "metrics":
                    latest = record
        return latest

    @classmethod
    def _check_identity(cls, stored: dict, expected: dict,
                        path: Path) -> None:
        for name in _HEADER_IDENTITY_FIELDS:
            if stored.get(name) != expected.get(name):
                raise ConfigurationError(
                    f"journal {path} was written for a different sweep: "
                    f"{name} is {stored.get(name)!r}, this sweep has "
                    f"{expected.get(name)!r}")

    # -- writing ------------------------------------------------------------

    def record(self, key: str, outcome: CandidateOutcome) -> None:
        """Append one candidate's fate and remember it as done."""
        record = _record_for(key, outcome)
        self.done[key] = record
        self._write(record)

    def record_metrics(self, counters: Dict[str, float],
                       skipped: Dict[str, int]) -> None:
        """Append a cumulative metrics snapshot (``kind: "metrics"``).

        The candidate loader ignores non-candidate kinds, so journals
        carrying these records stay readable by older code."""
        self._write({"kind": "metrics", "counters": dict(counters),
                     "skipped": dict(skipped)})

    def _write(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _record_for(key: str, outcome: CandidateOutcome) -> dict:
    if outcome.evaluated:
        result = outcome.result
        return {
            "kind": "candidate",
            "key": key,
            "status": "evaluated",
            "parallelism": asdict(result.parallelism),
            "batch_time_s": result.batch_time_s,
            "microbatch_size": result.microbatch_size,
            "microbatch_efficiency": result.microbatch_efficiency,
            "breakdown": result.breakdown.as_dict(),
        }
    return {
        "kind": "candidate",
        "key": key,
        "status": "skipped",
        "category": outcome.skip_category,
        "detail": outcome.detail,
    }


def _result_from_record(record: dict,
                        global_batch: int) -> ExplorationResult:
    """Rebuild a full result from its journal record (bit-exact: JSON
    round-trips doubles exactly, so resumed rankings tie-break the same
    way the uninterrupted run did)."""
    return ExplorationResult(
        parallelism=ParallelismSpec(**record["parallelism"]),
        global_batch=global_batch,
        batch_time_s=record["batch_time_s"],
        breakdown=TrainingTimeBreakdown(**record["breakdown"]),
        microbatch_size=record["microbatch_size"],
        microbatch_efficiency=record["microbatch_efficiency"],
    )


# ---------------------------------------------------------------------------
# SIGINT trap
# ---------------------------------------------------------------------------


@contextmanager
def _sigint_trap():
    """Install a cooperative SIGINT handler for the sweep's duration.

    Yields a zero-argument callable that reports whether a SIGINT has
    arrived.  The first signal only sets the flag (the sweep stops at
    the next candidate boundary, keeping the journal consistent); a
    second signal raises :class:`KeyboardInterrupt` for a hard abort.
    Off the main thread, signal handlers cannot be installed and the
    flag simply stays false.
    """
    state = {"count": 0}

    def cancelled() -> bool:
        return state["count"] > 0

    if threading.current_thread() is not threading.main_thread():
        yield cancelled
        return

    def handler(signum, frame):
        state["count"] += 1
        if state["count"] > 1:
            raise KeyboardInterrupt

    previous = signal.signal(signal.SIGINT, handler)
    try:
        yield cancelled
    finally:
        signal.signal(signal.SIGINT, previous)


# ---------------------------------------------------------------------------
# Worker-pool supervisor
# ---------------------------------------------------------------------------


class _PoolSupervisor:
    """Owns the process pool and its retry/degrade state machine.

    States: ``pool`` (healthy fan-out) → ``retry`` (tear down, back
    off, rebuild — at most ``retries`` consecutive times) → ``serial``
    (permanent degradation; the caller evaluates in-process).  Any
    failure mode — a batch timeout, a dead worker process, or an
    unexpected exception from the evaluation function — takes the same
    path, so no failure can hang the sweep.
    """

    #: Suffix of ``degraded_reason`` naming where evaluation continues
    #: after permanent degradation (subclasses run a different tail).
    _degrade_note = "continuing serially"

    def __init__(self, workers: int, evaluate: Callable,
                 timeout: Optional[float], retries: int,
                 backoff_s: float,
                 template: Optional[AMPeD] = None,
                 global_batch: int = 0,
                 compiled: Optional[CompiledSweep] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.workers = workers
        self.evaluate = evaluate
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        #: Jitter source for retry backoff; injectable so tests can pin
        #: the draw.
        self.rng = rng if rng is not None else random.Random()
        #: Warm-up payload for new worker processes: the sweep template
        #: (primes the operation memo) and, for compiled sweeps, the
        #: parent's pre-filled term tables.  ``None`` template = no
        #: initializer (fault-injection tests with synthetic evaluate).
        self.template = template
        self.global_batch = global_batch
        self.compiled = compiled
        self.degraded = False
        self.degraded_reason = ""
        self.consecutive_failures = 0
        self.total_retries = 0
        self._pool = None

    # -- pool lifecycle -----------------------------------------------------

    def _ensure_pool(self) -> "ProcessPoolExecutor":
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor
            if self.template is not None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, initializer=warm_worker,
                    initargs=(self.template, self.global_batch,
                              self.compiled))
            else:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def shutdown(self) -> None:
        """Tear the pool down without ever waiting on a hung worker."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        # ProcessPoolExecutor has no public kill switch; a hung worker
        # would survive shutdown() and stall interpreter exit (the
        # executor manager thread joins on it).  Snapshot the process
        # handles *before* shutdown() — it nulls out ``_processes`` even
        # with ``wait=False`` — then terminate whatever is still alive.
        processes = dict(getattr(pool, "_processes", None) or {})
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        finally:
            for process in processes.values():
                if process.is_alive():
                    process.terminate()

    # -- supervised execution ----------------------------------------------

    def run_chunk(self, specs: List[ParallelismSpec],
                  cancelled: Callable[[], bool]
                  ) -> Tuple[List[CandidateOutcome],
                             List[ParallelismSpec]]:
        """Evaluate ``specs`` on the pool, supervising each batch.

        Returns ``(outcomes, leftover)``: outcomes are collected in
        submission order; ``leftover`` is whatever was abandoned to
        cancellation or permanent degradation (the caller evaluates it
        serially, or drops it on cancel).
        """
        remaining = list(specs)
        outcomes: List[CandidateOutcome] = []
        while remaining and not self.degraded and not cancelled():
            failure = None
            collected = 0
            try:
                pool = self._ensure_pool()
                # self.evaluate holds a module-level function or
                # functools.partial over one (the constructor contract),
                # not a bound method; it pickles cleanly.
                futures = [pool.submit(self.evaluate, spec)  # amplint: disable=AMP202 — attribute holds a picklable module-level callable
                           for spec in remaining]
            except Exception as error:  # noqa: BLE001 — supervised boundary: pool spawn/submit failures trigger retry-or-degrade
                self._note_failure(error)
                continue
            deadline = (None if self.timeout is None
                        else time.monotonic() + self.timeout)
            for future in futures:
                wait = (None if deadline is None
                        else max(0.0, deadline - time.monotonic()))
                try:
                    outcomes.append(future.result(timeout=wait))
                except Exception as error:  # noqa: BLE001 — supervised boundary: worker crash/timeout is recorded and retried
                    failure = error
                    break
                collected += 1
                if cancelled():
                    break
            remaining = remaining[collected:]
            if failure is None:
                if cancelled():
                    for future in futures:
                        future.cancel()
                    break
                self.consecutive_failures = 0
            else:
                self._note_failure(failure)
        return outcomes, remaining

    def _note_failure(self, error: BaseException) -> None:
        """One supervision event: tear down, then retry or degrade."""
        self.consecutive_failures += 1
        self.shutdown()
        if self.consecutive_failures > self.retries:
            self.degraded = True
            self.degraded_reason = (
                f"worker pool failed {self.consecutive_failures} "
                f"consecutive times (last: {error!r}); "
                f"{self._degrade_note}")
            get_metrics().gauge("sweep.degraded").set(1.0)
            _LOG.warning("sweep degraded: %s", self.degraded_reason)
            return
        self.total_retries += 1
        metrics = get_metrics()
        metrics.counter("sweep.retries").inc()
        cap = min(_MAX_BACKOFF_S,
                  self.backoff_s * 2 ** (self.consecutive_failures - 1))
        # Full jitter: a uniform draw over [0, cap] instead of the
        # deterministic cap, so sweeps that fail together (a shared
        # machine stall, a common poisoned input) do not retry in
        # lockstep and re-trigger the very overload that failed them.
        delay = self.rng.uniform(0.0, cap) if cap > 0 else 0.0
        metrics.histogram("sweep.retry_sleep_seconds").observe(delay)
        _LOG.warning(
            "sweep worker batch failed (%r); retry %d/%d after %.2fs "
            "(jittered, cap %.2fs)",
            error, self.consecutive_failures, self.retries, delay, cap)
        with span("dse.retry", category="search",
                  attrs={"attempt": self.consecutive_failures,
                         "retries": self.retries,
                         "cap_s": cap, "sleep_s": delay}):
            if delay > 0:
                time.sleep(delay)


def _evaluate_shipped(chunk, need_bounds: bool):
    """Pool-worker entry point: evaluate a shipped pre-bound chunk.

    The worker does no binding work at all — projection and batch fill
    already happened in the driver's process — and returns plain-list
    bounds plus outcome dataclasses, both cheap to pickle back.  A
    shared-memory-shipped chunk detaches its segment mapping before
    returning (the bounds/outcomes are plain Python values by then), so
    worker-side mappings never outlive the chunk they served.
    """
    try:
        return evaluate_prebound(chunk, need_bounds)
    finally:
        chunk.detach_shared()


class _VectorPoolDriver(_PoolSupervisor):
    """Ships pre-bound chunks to warm pool workers for vectorized sweeps.

    Reuses the scalar supervisor's pool lifecycle and retry/degrade
    state machine, but splits dispatch into :meth:`submit` /
    :meth:`resolve` so the driver's process can bind the next chunks
    while workers evaluate earlier ones.  Every failure falls back to
    evaluating the already-bound chunk *in process* — degradation costs
    parallelism, never the array path, and never a result.
    """

    _degrade_note = "continuing with in-process vectorized evaluation"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Bumped on every pool teardown so the stale futures of a
        #: collapsed pool count as one supervision event, not one each.
        self._epoch = 0

    def submit(self, chunk, need_bounds: bool):
        """Submit a pre-bound chunk; returns an opaque ticket for
        :meth:`resolve`, or ``None`` when the pool is degraded or the
        submission itself failed (the chunk then evaluates locally)."""
        if self.degraded:
            return None
        # Publish the chunk's dense arrays into shared memory first so
        # the pickle below carries a segment name, not the arrays; a
        # failed publish silently keeps the by-value pickle path.
        chunk.publish_shared()
        try:
            pool = self._ensure_pool()
            return (self._epoch,
                    pool.submit(_evaluate_shipped, chunk, need_bounds))
        except Exception as error:  # noqa: BLE001 — supervised boundary: pool spawn/submit failures trigger retry-or-degrade
            self._note_failure(error)
            return None

    def resolve(self, chunk, ticket, need_bounds: bool):
        """The ``(bounds, outcomes)`` of a submitted chunk.

        A worker failure (timeout, crash, unexpected exception) is
        recorded against the retry budget once per pool collapse, and
        the chunk is re-evaluated in process so the sweep's results
        are identical either way.  Either way the chunk's shared
        segment (if any) is released here — resolution is the single
        point where no consumer can still need it.
        """
        try:
            if ticket is not None:
                epoch, future = ticket
                try:
                    bounds, outcomes = future.result(timeout=self.timeout)
                    self.consecutive_failures = 0
                    return bounds, outcomes
                except Exception as error:  # noqa: BLE001 — supervised boundary: worker crash/timeout is recorded and retried
                    if epoch == self._epoch:
                        self._epoch += 1
                        self._note_failure(error)
            # The driver-side chunk keeps its own arrays (publishing
            # copies, never moves), so the local fallback is unaffected
            # by the release in the finally below.
            return evaluate_prebound(chunk, need_bounds)
        finally:
            chunk.release_shared()


# ---------------------------------------------------------------------------
# The resilient sweep
# ---------------------------------------------------------------------------


@dataclass
class SweepOutcome:
    """Ranked results plus the coverage ledger of one resilient sweep."""

    results: List[ExplorationResult] = field(default_factory=list)
    report: SweepReport = field(default_factory=SweepReport)
    #: Journal-cumulative operational counters (runs, evaluated,
    #: retried, worker_errors, interrupts) spanning every run that
    #: contributed to the journal; ``None`` when journaling is off.
    cumulative: Optional[dict] = None

    @property
    def partial(self) -> bool:
        """True when the sweep was cancelled before full coverage."""
        return self.report.partial

    @property
    def best(self) -> Optional[ExplorationResult]:
        """The fastest mapping seen, or ``None`` for an empty ranking."""
        return self.results[0] if self.results else None


def run_sweep(template: AMPeD, global_batch: int,
              mappings: Optional[List[ParallelismSpec]] = None,
              tune_microbatches: bool = True,
              enforce_memory: bool = False,
              max_results: Optional[int] = None,
              prune: bool = True,
              workers: Optional[int] = None,
              timeout: Optional[float] = None,
              retries: int = 2,
              backoff_s: float = 0.5,
              backoff_rng: Optional[random.Random] = None,
              journal_path=None,
              resume: bool = False,
              strict: bool = False,
              raise_on_interrupt: bool = False,
              evaluate: Optional[Callable] = None,
              evaluation_path: str = "compiled") -> SweepOutcome:
    """Explore the design space under supervision; never hang, never
    lose finished work.

    Ranking semantics match :func:`repro.search.dse.explore` exactly
    (same submission order, same branch-and-bound pruning, same
    fastest-first truncation to ``max_results``); the additional
    parameters control fault tolerance:

    Parameters
    ----------
    timeout:
        Wall-clock seconds allowed per submitted batch of worker
        results before the batch is considered hung (``None`` = wait
        forever, the pre-resilience behavior).
    retries:
        Consecutive batch failures (timeout, dead worker, unexpected
        exception) tolerated — each retried after a *full-jitter*
        exponential backoff, a uniform draw from
        ``[0, backoff_s * 2**n]`` (``backoff_rng`` injects the
        randomness source for deterministic tests) — before the sweep
        degrades for the remainder: to serial evaluation on the scalar
        path, to in-process vectorized evaluation on the array path.
    journal_path:
        Append-only JSONL journal destination; ``None`` disables
        persistence.
    resume:
        Replay ``journal_path`` first and evaluate only candidates it
        does not already cover.
    strict:
        Raise :class:`~repro.errors.WorkerError` when a candidate keeps
        failing with a non-``ReproError`` even serially, instead of
        journaling it as a ``worker_error`` skip and continuing.
    raise_on_interrupt:
        Raise :class:`~repro.errors.SweepInterrupted` (carrying the
        journal path and partial ranking) on SIGINT instead of
        returning a ``partial=True`` outcome.
    evaluate:
        Evaluation function ``spec -> CandidateOutcome`` (picklable for
        worker pools); defaults to the real
        :func:`~repro.search.dse.evaluate_candidate` over ``template``.
        Exposed for fault-injection tests.
    evaluation_path:
        How each candidate evaluates Eq. 1 (``"compiled"`` default;
        see :func:`repro.search.dse.explore`) — overrides the
        template's own setting.  ``"compiled"`` auto-upgrades to
        ``"vectorized"`` for large sweeps when NumPy is importable
        (unless a custom ``evaluate`` or ``enforce_memory`` forces
        per-candidate evaluation).  Recorded in the journal header for
        provenance but *not* part of the resume identity: every path
        produces the same ranking and skip categories, so a journal
        written under one path resumes deterministically under another.
    """
    if mappings is None:
        mappings = enumerate_mappings(template.system, template.model)
    custom_evaluate = evaluate is not None
    if custom_evaluate or enforce_memory:
        # Custom evaluators and memory enforcement are inherently
        # per-candidate; the batch backend cannot replay them, so an
        # explicit request still validates NumPy but the auto-upgrade
        # never fires.
        if evaluation_path == "vectorized":
            require_numpy()
    else:
        evaluation_path = resolve_evaluation_path(evaluation_path,
                                                  len(mappings))
    if evaluation_path != template.evaluation_path:
        template = replace(template, evaluation_path=evaluation_path)
    if evaluate is None:
        evaluate = partial(evaluate_candidate, template,
                           global_batch=global_batch,
                           tune_microbatches=tune_microbatches,
                           enforce_memory=enforce_memory)

    header = {
        "kind": "header",
        "schema_version": JOURNAL_SCHEMA_VERSION,
        "model": template.model.name,
        "system": template.system.describe(),
        "global_batch": global_batch,
        "tune_microbatches": tune_microbatches,
        "enforce_memory": enforce_memory,
        "n_candidates": len(mappings),
        "evaluation_path": template.evaluation_path,
    }
    journal: Optional[SweepJournal] = None
    if journal_path is not None:
        journal = SweepJournal.open(journal_path, header, resume=resume)

    report = SweepReport(
        n_candidates=len(mappings),
        journal_path=str(journal.path) if journal else None)
    results: List[ExplorationResult] = []
    # The compiled term tables back the pruner's compute+communication
    # lower bound on every evaluation path (keeping skip counters
    # path-independent) and are shipped to pool workers.
    compiled: Optional[CompiledSweep] = None
    if prune or template.evaluation_path in ("compiled", "vectorized"):
        compiled = compile_sweep(template, global_batch)
    pruner = (_BoundPruner(template, global_batch, tune_microbatches,
                           max_results, compiled=compiled)
              if prune else None)

    # Replay the journal: finished candidates are restored, never
    # re-evaluated, and feed the pruner's incumbents so the resumed
    # branch-and-bound stays exact.
    done = journal.done if journal else {}
    for record in done.values():
        if record["status"] == "evaluated":
            result = _result_from_record(record, global_batch)
            results.append(result)
            if pruner is not None:
                pruner.record(result)
            report.resumed += 1
        else:
            report.record_skip(record["category"])
    pending = [spec for spec in mappings if spec_key(spec) not in done]

    metrics = get_metrics()
    heartbeat = metrics.gauge("sweep.heartbeat_monotonic_s")

    def absorb(outcome: CandidateOutcome) -> None:
        heartbeat.set(time.monotonic())
        if journal is not None:
            journal.record(spec_key(outcome.spec), outcome)
        if outcome.evaluated:
            report.evaluated += 1
            metrics.counter("sweep.evaluated").inc()
            results.append(outcome.result)
            if pruner is not None:
                pruner.record(outcome.result)
        else:
            report.record_skip(outcome.skip_category)
            metrics.counter(
                f"sweep.skipped.{outcome.skip_category}").inc()

    def evaluate_serially(spec: ParallelismSpec) -> CandidateOutcome:
        started = time.perf_counter()
        try:
            return evaluate(spec)
        except MemoryCapacityError as error:
            return CandidateOutcome(spec=spec,
                                    skip_category=SKIP_MEMORY_CAPACITY,
                                    detail=str(error))
        except ReproError as error:
            return CandidateOutcome(
                spec=spec, skip_category=SKIP_MAPPING_INFEASIBLE,
                detail=str(error))
        except Exception as error:  # noqa: BLE001 — supervised boundary
            report.worker_errors += 1
            metrics.counter("sweep.worker_errors").inc()
            _LOG.warning("candidate %s failed even serially: %r",
                         spec.describe(), error)
            if strict:
                raise WorkerError(
                    f"candidate {spec.describe()} failed: {error!r}",
                    journal_path=report.journal_path) from error
            return CandidateOutcome(spec=spec,
                                    skip_category=SKIP_WORKER_ERROR,
                                    detail=repr(error))
        finally:
            metrics.histogram("sweep.candidate_seconds").observe(
                time.perf_counter() - started)

    # The vectorized path evaluates whole chunks as array programs on
    # this process; it supersedes the worker pool (array gathers beat
    # pickling candidates across process boundaries by orders of
    # magnitude).
    use_vectorized = (template.evaluation_path == "vectorized"
                      and not custom_evaluate and not enforce_memory)
    use_pool = (workers is not None and workers > 1
                and not use_vectorized)
    shipped = (compiled if compiled is not None
               and compiled.cache_key is not None else None)
    # Term tables ride to pool workers through shared memory when the
    # platform supports it: the warm-up initializer then attaches one
    # segment instead of unpickling every table per worker.  On
    # platforms without shared_memory/NumPy this is the identity and
    # the pickle path ships the tables by value, bit-exact either way.
    if shipped is not None and (use_pool or (use_vectorized
                                             and workers is not None
                                             and workers > 1)):
        shipped = ship_compiled(shipped)
    supervisor = (_PoolSupervisor(workers, evaluate, timeout, retries,
                                  backoff_s, template=template,
                                  global_batch=global_batch,
                                  compiled=shipped, rng=backoff_rng)
                  if use_pool else None)
    # Vectorized sweeps fan out too: chunks are bound (projected +
    # batch-filled) in this process and shipped to warm workers that
    # evaluate the arrays without re-binding — the driver keeps a small
    # prefetch window of in-flight chunks so binding overlaps
    # evaluation while absorption stays strictly serial-ordered.
    vector_driver = (_VectorPoolDriver(workers, evaluate, timeout,
                                       retries, backoff_s,
                                       template=template,
                                       global_batch=global_batch,
                                       compiled=shipped,
                                       rng=backoff_rng)
                     if use_vectorized and workers is not None
                     and workers > 1 else None)
    inflight: deque = deque()
    prefetch_pos = 0
    if use_vectorized:
        chunk_size = DEFAULT_CHUNK_CANDIDATES
    else:
        chunk_size = max(1, 4 * workers) if use_pool else 1
    interrupted = False
    cumulative: Optional[dict] = None

    with _sigint_trap() as cancelled, \
            span("sweep.run", category="search",
                 attrs={"n_candidates": len(mappings),
                        "n_pending": len(pending),
                        "workers": workers if use_pool else 1}):
        try:
            position = 0
            while position < len(pending):
                if cancelled():
                    interrupted = True
                    break
                if use_vectorized:
                    need_bounds = pruner is not None
                    if (vector_driver is not None
                            and not vector_driver.degraded):
                        # Top up the prefetch window: bind ahead and
                        # submit while workers chew on earlier chunks.
                        while (prefetch_pos < len(pending)
                               and len(inflight)
                               <= vector_driver.workers
                               and not vector_driver.degraded):
                            ahead = pending[prefetch_pos:
                                            prefetch_pos + chunk_size]
                            prebound = bind_chunk(
                                template, compiled, ahead,
                                global_batch, tune_microbatches)
                            ticket = vector_driver.submit(prebound,
                                                          need_bounds)
                            inflight.append((ahead, prebound, ticket))
                            prefetch_pos += len(ahead)
                    if inflight:
                        chunk, prebound, ticket = inflight.popleft()
                    else:
                        chunk = pending[position:position + chunk_size]
                        prebound = bind_chunk(template, compiled, chunk,
                                              global_batch,
                                              tune_microbatches)
                        ticket = None
                        prefetch_pos = position + len(chunk)
                    with span("dse.vectorized_eval", category="search",
                              attrs={"offset": position,
                                     "n_candidates": len(chunk),
                                     "shipped": ticket is not None,
                                     "tune_microbatches":
                                         tune_microbatches}) as live:
                        position += len(chunk)
                        if vector_driver is not None:
                            bounds, outcomes = vector_driver.resolve(
                                prebound, ticket, need_bounds)
                            if (vector_driver.degraded
                                    and not report.degraded):
                                report.degraded = True
                                report.degraded_reason = \
                                    vector_driver.degraded_reason
                            report.retried = \
                                vector_driver.total_retries
                        else:
                            bounds, outcomes = evaluate_prebound(
                                prebound, need_bounds)
                        fallbacks = 0
                        # Serial-order walk: the pruner threshold is
                        # re-read per candidate because absorb()
                        # tightens it, reproducing the serial path's
                        # incumbent dynamics (and hence its exact
                        # skip categories) on precomputed arrays.
                        for index, spec in enumerate(chunk):
                            if cancelled():
                                interrupted = True
                                break
                            threshold = (pruner.threshold
                                         if pruner is not None else None)
                            if threshold is not None:
                                bound = float(bounds[index])
                                if math.isnan(bound):
                                    absorb(CandidateOutcome(
                                        spec=spec,
                                        skip_category=(
                                            SKIP_MAPPING_INFEASIBLE),
                                        detail=("no feasible "
                                                "microbatch count")))
                                    continue
                                if bound > threshold:
                                    absorb(CandidateOutcome(
                                        spec=spec,
                                        skip_category=SKIP_PRUNED,
                                        detail=("lower bound exceeds "
                                                "the incumbent top-k")))
                                    continue
                            outcome = outcomes[index]
                            if outcome is None:
                                fallbacks += 1
                                outcome = evaluate_serially(spec)
                            absorb(outcome)
                        live.set_attrs(scalar_fallbacks=fallbacks)
                    if interrupted:
                        break
                    continue
                chunk = pending[position:position + chunk_size]
                with span("sweep.chunk", category="search",
                          attrs={"offset": position,
                                 "size": len(chunk)}):
                    position += len(chunk)
                    runnable = []
                    for spec in chunk:
                        category = (pruner.skip_category(spec)
                                    if pruner is not None else None)
                        if category is not None:
                            detail = ("lower bound exceeds the "
                                      "incumbent top-k"
                                      if category == SKIP_PRUNED else
                                      "no feasible microbatch count")
                            absorb(CandidateOutcome(
                                spec=spec, skip_category=category,
                                detail=detail))
                        else:
                            runnable.append(spec)
                    if supervisor is not None and not supervisor.degraded:
                        outcomes, runnable = supervisor.run_chunk(
                            runnable, cancelled)
                        for outcome in outcomes:
                            absorb(outcome)
                        if supervisor.degraded and not report.degraded:
                            report.degraded = True
                            report.degraded_reason = \
                                supervisor.degraded_reason
                        report.retried = supervisor.total_retries
                    for spec in runnable:
                        if cancelled():
                            interrupted = True
                            break
                        absorb(evaluate_serially(spec))
                if cancelled():
                    interrupted = True
                    break
        finally:
            if supervisor is not None:
                supervisor.shutdown()
            if vector_driver is not None:
                vector_driver.shutdown()
            # Segments published for chunks still in flight at an
            # interrupt/failure boundary, plus the shared term tables,
            # unlink here — a cancelled sweep leaks nothing.
            for _ahead, prebound, _ticket in inflight:
                prebound.release_shared()
            release_shipment(shipped)
            if journal is not None:
                cumulative = _cumulative_counters(
                    journal.prior_metrics, report, interrupted)
                journal.record_metrics(cumulative["counters"],
                                       cumulative["skipped"])
                journal.close()

    results.sort(key=lambda result: result.batch_time_s)
    if max_results is not None:
        results = results[:max_results]
    report.partial = interrupted
    if interrupted:
        _LOG.warning(
            "sweep interrupted: exact top-%s over %d evaluated "
            "candidates%s", max_results or "all",
            report.evaluated + report.resumed,
            f" (resume with the journal at {report.journal_path})"
            if report.journal_path else "")
        if raise_on_interrupt:
            raise SweepInterrupted(
                f"sweep cancelled after {report.covered} of "
                f"{report.n_candidates} candidates",
                journal_path=report.journal_path,
                partial_results=results)
    return SweepOutcome(results=results, report=report,
                        cumulative=cumulative)


def _cumulative_counters(prior: Optional[dict], report: SweepReport,
                         interrupted: bool) -> dict:
    """Journal-cumulative operational counters.

    Coverage numbers (``evaluated``, ``skipped``) are already
    journal-cumulative in the report — resumption replays every prior
    candidate into it — so they are taken as-is; run-scoped counters
    (``runs``, ``retried``, ``worker_errors``, ``interrupts``) add onto
    the previous metrics record of the journal being resumed.
    """
    base = (prior or {}).get("counters", {})

    def prior_count(name: str) -> int:
        value = base.get(name, 0)
        return int(value) if isinstance(value, (int, float)) else 0

    counters = {
        "runs": prior_count("runs") + 1,
        "evaluated": report.evaluated + report.resumed,
        "skipped": sum(report.skipped.values()),
        "retried": prior_count("retried") + report.retried,
        "worker_errors": (prior_count("worker_errors")
                          + report.worker_errors),
        "interrupts": prior_count("interrupts") + (1 if interrupted
                                                   else 0),
    }
    return {"counters": counters, "skipped": dict(report.skipped)}
