"""Term-table sweep compiler: sublinear candidate evaluation for DSE.

A design-space sweep holds the model, the system and the global batch
fixed and varies only the mapping, yet the collapsed fast path re-walks
all of Eq. 1 for every candidate.  Most terms depend on only a slice of
the mapping coordinates (the *minimal key*, see
:mod:`repro.collectives.keys`): compute terms see the mapping only
through the microbatch efficiency, each collective only through its
(ranks, shard, replica-batch) tuple, the bubble prefactor only through
``(N_PP, N_ub)``.  :class:`CompiledSweep` factors Eq. 1 along those
lines once per sweep and fills one lookup table per term on demand;
evaluating a candidate then costs a handful of key projections, table
lookups and additions (``BENCH_dse.json`` records the throughput).

**Bit-exactness contract.**  Table entries are produced by calling the
*same* estimator functions the collapsed path calls
(:func:`~repro.core.compute.forward_compute_time`,
:func:`~repro.core.communication.tp_comm_time`, ...), and the combiner
replays :meth:`repro.core.model.AMPeD.estimate_batch`'s arithmetic
operation for operation, in the same order.  Two candidates with equal
term keys receive bit-identical term values (the collective memo of
:mod:`repro.core.communication` is keyed on the same scalars), so
``evaluation_path="compiled"`` equals ``"collapsed"`` bit for bit and
``"per_layer"`` within floating-point associativity (``<= 1e-9``
relative, enforced by the property suite).

**Admissible lower bound.**  Every communication term of Eq. 1 is
independent of the microbatch count, and compute time is monotone
non-increasing in the microbatch efficiency, so

    compute(best reachable eff) / world + exact communication terms

is a lower bound on the candidate's achievable batch time that is
strictly tighter than the compute-only bound whenever the mapping
communicates at all, and still never prunes a true top-k member (the
bubble term, the only one omitted, is non-negative; the bound's
additions reuse the evaluation's own association order, and IEEE
rounding is monotone, so the inequality survives floating point).
:meth:`CompiledSweep.lower_bound` feeds this to the branch-and-bound
pruner.  ``docs/performance.md`` carries the full argument.
"""

from __future__ import annotations

import math
import os
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.core.breakdown import TrainingTimeBreakdown
from repro.core.bubbles import BUBBLE_MODELS
from repro.core.communication import (
    CommEnvironment,
    gradient_comm_components,
    moe_comm_time,
    pp_comm_time,
    tp_comm_time,
    zero_gather_time,
)
from repro.core.compute import (
    backward_compute_time,
    forward_compute_time,
    weight_update_time,
)
from repro.core.operations import build_operations
from repro.errors import ConfigurationError, MappingError
from repro.parallelism.microbatch import microbatch_size, replica_batch_size
from repro.parallelism.spec import ParallelismSpec
from repro.pipeline.schedule import bubble_prefactor
from repro.search.tuning import _with_failing_n_ub, candidate_microbatch_counts
from repro.units import Seconds

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids the cycle
    from repro.core.model import AMPeD

# amplint: disable-file=AMP204 — CompiledSweep is deliberately lock-free: an
# instance is confined to one evaluating thread (the serve dispatcher, or a
# pool worker's own unpickled copy), locks would break its picklability, and
# the _lookups/_misses counters are advisory hit-rate statistics.

#: Breakdown component names in :class:`TrainingTimeBreakdown` order.
COMPONENT_NAMES = (
    "compute_forward", "compute_backward", "compute_weight_update",
    "comm_tp_intra", "comm_tp_inter", "comm_pp", "comm_moe",
    "comm_gradient_intra", "comm_gradient_inter", "comm_zero", "bubble")

#: Compiled-sweep instances kept in the process-wide cache.
MAX_CACHED_SWEEPS = 8


class CompiledSweep:
    """Eq. 1 factored into per-term lookup tables for one sweep.

    One instance serves every candidate mapping of a (template, global
    batch) sweep.  Tables fill lazily — a miss calls the reference
    estimator functions once per distinct minimal key — and the object
    is picklable, so :func:`warm_worker` can ship pre-filled tables to
    pool workers instead of letting each worker re-derive the
    operation and collective memos from scratch.
    """

    def __init__(self, template: "AMPeD", global_batch: int) -> None:
        self.global_batch = int(global_batch)
        self.model = template.model
        self.system = template.system
        self.precision = template.precision
        self.efficiency = template.efficiency
        self.intra_topology = template.intra_topology
        self.inter_topology = template.inter_topology
        self.moe_topology = template.moe_topology
        self.accelerator = template.system.accelerator
        self.backward_compute_multiplier = \
            template.backward_compute_multiplier
        self.backward_comm_ratio = template.backward_comm_ratio
        self.optimizer_macs_per_parameter = \
            template.optimizer_macs_per_parameter
        self.moe_volume_multiplier = template.moe_volume_multiplier
        self.moe_tp_sharding = template.moe_tp_sharding
        self.include_embeddings = template.include_embeddings
        self.concurrent_stage_comm = template.concurrent_stage_comm
        self.bubble_model = template.bubble_model
        if self.bubble_model not in BUBBLE_MODELS:
            # The reference path surfaces this from bubble_time() on the
            # first transformer layer; the compiled path never calls it,
            # so raise the identical error at build time instead.
            raise ConfigurationError(
                f"bubble model must be one of {BUBBLE_MODELS}, got "
                f"{self.bubble_model!r}")
        self.exposed = 1.0 - template.comm_overlap_fraction
        self.explicit_zero = (template.zero_explicit_comm
                              and template.zero.shards_parameters)
        self.zero_forward_overhead = (
            0.0 if self.explicit_zero
            else template.zero.communication_overhead)
        self.forward_scale = 1.0 + self.zero_forward_overhead

        operations = build_operations(self.model, self.global_batch,
                                      self.include_embeddings)
        #: ``(representative, multiplicity, gradient-table, zero-table,
        #: compute-table)`` per structural layer class, in the collapsed
        #: path's class order (the combiner must add in the same order).
        self.classes: List[tuple] = [
            (cls.representative, float(cls.multiplicity), {}, {}, {})
            for cls in operations.layer_classes]

        # Term tables keyed by the minimal keys of collectives/keys.py.
        self._eff: Dict[tuple, float] = {}
        self._tp_intra: Dict[tuple, float] = {}
        self._tp_inter: Dict[tuple, float] = {}
        self._pp: Dict[tuple, float] = {}
        self._moe: Dict[tuple, float] = {}
        self._bubble_prefactor: Dict[tuple, float] = {}

        # Hit-rate accounting (cache.compiled.* gauges): lookups are
        # counted per combine in one add; misses at the fill sites.
        self._lookups = 0
        self._misses = 0
        #: Lookups per combine: eff + bubble prefactor + per class
        #: (compute, gradient[, zero]) + per transformer class
        #: (tp_intra, tp_inter, pp[, moe]).
        self._lookups_per_eval = 2 + len(self.classes) * (
            3 if self.explicit_zero else 2) + sum(
            3 + (1 if layer.is_moe else 0)
            for layer, *_ in self.classes if layer.index >= 0)
        #: Cache key under which this instance is (or would be)
        #: registered; ``None`` when the template is unhashable.
        self.cache_key: Optional[tuple] = None

    # -- misses: reference-function calls -------------------------------------

    def _environment(self, spec: ParallelismSpec) -> CommEnvironment:
        """The exact environment ``estimate_batch`` would build."""
        return CommEnvironment(
            system=self.system,
            parallelism=spec,
            precision=self.precision,
            intra_topology=self.intra_topology,
            inter_topology=self.inter_topology,
            moe_topology=self.moe_topology,
            zero_forward_overhead=self.zero_forward_overhead,
            moe_volume_multiplier=self.moe_volume_multiplier,
            moe_tp_sharding=self.moe_tp_sharding,
        )

    # -- the combiner ----------------------------------------------------------

    def _combine(self, spec: ParallelismSpec, eff: float,
                 include_bubble: bool = True) -> tuple:
        """Eq. 1's component totals for one candidate, from the tables.

        Replays ``estimate_batch``'s collapsed loop bit for bit: same
        class order, same per-term arithmetic, same accumulation
        association.  With ``include_bubble`` off the bubble total
        stays 0.0 (the lower bound charges no idle time).
        """
        tp_i = spec.tp_intra
        tp_x = spec.tp_inter
        dp_i = spec.dp_intra
        dp_x = spec.dp_inter
        ep = spec.expert_parallel
        tp = tp_i * tp_x
        pp = spec.pp_intra * spec.pp_inter
        dp = dp_i * dp_x
        workers = spec.world_size
        stage_share = pp if self.concurrent_stage_comm else 1
        exposed = self.exposed
        ratio = exposed / stage_share
        bcr = self.backward_comm_ratio
        scale = 1.0 + bcr
        fwd_scale = self.forward_scale
        env: Optional[CommEnvironment] = None
        replica_batch = 0.0

        if include_bubble:
            n_ub = spec.microbatches
            bubble_k = (pp, n_ub, spec.bubble_overlap_ratio)
            pref = self._bubble_prefactor.get(bubble_k)
            if pref is None:
                self._misses += 1
                pref = bubble_prefactor(pp, n_ub,
                                        spec.bubble_overlap_ratio)
                self._bubble_prefactor[bubble_k] = pref
        else:
            pref = 0.0
        eq8 = self.bubble_model == "eq8"
        n_layers = self.model.n_layers

        cf = cb = cw = 0.0
        c_tpi = c_tpx = c_pp = c_moe = 0.0
        g_intra = g_inter = c_zero = bub = 0.0

        for layer, weight, grad_table, zero_table, compute_table \
                in self.classes:
            triple = compute_table.get(eff)
            if triple is None:
                self._misses += 1
                triple = (
                    forward_compute_time(layer, self.accelerator,
                                         self.precision, eff),
                    backward_compute_time(
                        layer, self.accelerator, self.precision, eff,
                        self.backward_compute_multiplier),
                    weight_update_time(
                        layer, self.accelerator, self.precision, eff,
                        self.optimizer_macs_per_parameter))
                compute_table[eff] = triple
            u_f, u_b, u_w = triple
            cf += weight * u_f / workers
            cb += weight * u_b / workers
            cw += weight * u_w / workers

            grad_k = (tp, dp_i, dp_x, ep)
            grad = grad_table.get(grad_k)
            if grad is None:
                self._misses += 1
                if env is None:
                    env = self._environment(spec)
                components = gradient_comm_components(
                    env, layer.gradient_parameters(ep))
                grad = (components["intra"], components["inter"])
                grad_table[grad_k] = grad
            g_intra += weight * grad[0] / stage_share * exposed
            g_inter += weight * grad[1] / stage_share * exposed

            if self.explicit_zero:
                gather = zero_table.get(grad_k)
                if gather is None:
                    self._misses += 1
                    if env is None:
                        env = self._environment(spec)
                    gather = zero_gather_time(
                        env, layer.gradient_parameters(ep))
                    zero_table[grad_k] = gather
                c_zero += weight * 2.0 * gather / stage_share * exposed

            if layer.index < 0:
                continue  # embedding pseudo-layer: no TP/PP/MoE/bubble

            key = (tp_i, dp)
            v_tpi = self._tp_intra.get(key)
            if v_tpi is None:
                self._misses += 1
                if env is None:
                    env = self._environment(spec)
                if not replica_batch:
                    replica_batch = replica_batch_size(
                        self.global_batch, spec)
                v_tpi = fwd_scale * tp_comm_time(
                    env, self.model, replica_batch, "intra")
                self._tp_intra[key] = v_tpi

            key = (tp_i, tp_x, dp)
            v_tpx = self._tp_inter.get(key)
            if v_tpx is None:
                self._misses += 1
                if env is None:
                    env = self._environment(spec)
                if not replica_batch:
                    replica_batch = replica_batch_size(
                        self.global_batch, spec)
                v_tpx = fwd_scale * tp_comm_time(
                    env, self.model, replica_batch, "inter")
                self._tp_inter[key] = v_tpx

            key = (spec.pp_intra > 1, spec.pp_inter > 1, dp)
            v_pp = self._pp.get(key)
            if v_pp is None:
                self._misses += 1
                if env is None:
                    env = self._environment(spec)
                if not replica_batch:
                    replica_batch = replica_batch_size(
                        self.global_batch, spec)
                v_pp = fwd_scale * max(
                    pp_comm_time(env, self.model, replica_batch,
                                 "intra"),
                    pp_comm_time(env, self.model, replica_batch,
                                 "inter"))
                self._pp[key] = v_pp

            if layer.is_moe:
                key = (tp, dp, ep)
                v_moe = self._moe.get(key)
                if v_moe is None:
                    self._misses += 1
                    if env is None:
                        env = self._environment(spec)
                    if not replica_batch:
                        replica_batch = replica_batch_size(
                            self.global_batch, spec)
                    moe = (moe_comm_time(env, self.model, replica_batch)
                           if ep else 0.0)
                    v_moe = fwd_scale * moe
                    self._moe[key] = v_moe
            else:
                v_moe = 0.0

            # estimate_batch scales the component dict in place, then
            # sums it in insertion order — replayed exactly here.
            a = v_tpi * ratio
            b = v_tpx * ratio
            c = v_moe * ratio
            d = v_pp * exposed
            m_f = a + b + d + c
            m_b = m_f * bcr
            c_tpi += weight * a * scale
            c_tpx += weight * b * scale
            c_pp += weight * d * scale
            c_moe += weight * c * scale
            if pref and pp > 1:
                divisor = tp * dp * pp
                if eq8:
                    divisor *= n_layers
                step = (u_f + u_b) / divisor + m_b + m_f
                bub += weight * (pref * step)

        self._lookups += self._lookups_per_eval
        return (cf, cb, cw, c_tpi, c_tpx, c_pp, c_moe,
                g_intra, g_inter, c_zero, bub)

    # -- public evaluation API -------------------------------------------------

    def _efficiency_for(self, spec: ParallelismSpec) -> float:
        """``eff(ub)`` for the candidate (raises the same
        :class:`MappingError` the reference path would for ub < 1)."""
        key = (spec.dp, spec.microbatches)
        eff = self._eff.get(key)
        if eff is None:
            # Infeasible keys raise here (microbatch below one sequence)
            # and are never memoized, so a table hit is always feasible.
            self._misses += 1
            eff = self.efficiency(microbatch_size(self.global_batch,
                                                  spec))
            self._eff[key] = eff
        return eff

    def component_totals(self, spec: ParallelismSpec) -> dict:
        """Eq. 1's component totals, keyed like the breakdown fields."""
        totals = self._combine(spec, self._efficiency_for(spec))
        return dict(zip(COMPONENT_NAMES, totals))

    def breakdown(self, spec: ParallelismSpec) -> TrainingTimeBreakdown:
        """The candidate's breakdown — value- and error-identical to
        the collapsed ``estimate_batch``."""
        return TrainingTimeBreakdown(**self.component_totals(spec))

    def batch_time(self, spec: ParallelismSpec) -> Seconds:
        """The candidate's batch time, bit-identical to
        ``estimate_batch(global_batch).total`` on the collapsed path —
        including raising the same errors for infeasible microbatches
        and non-finite components."""
        totals = self._combine(spec, self._efficiency_for(spec))
        total = _total_of(totals)
        if not math.isfinite(total):
            # The reference path surfaces non-finite components as the
            # breakdown's ConfigurationError; replay it exactly (and
            # fall through when only the *sum* overflowed, which the
            # reference path returns as an inf total).
            TrainingTimeBreakdown(**dict(zip(COMPONENT_NAMES, totals)))
        return total

    def best_microbatch(self, spec: ParallelismSpec,
                        candidates: Optional[Iterable[int]] = None
                        ) -> Tuple[ParallelismSpec, float]:
        """Pick the ``N_ub`` minimizing batch time — selection,
        tie-breaking and failure semantics identical to
        :func:`repro.search.tuning.optimize_microbatches`."""
        if candidates is None:
            candidates = candidate_microbatch_counts(spec,
                                                     self.global_batch)
        best: Optional[Tuple[ParallelismSpec, float]] = None
        last_error = None
        last_n_ub: Optional[int] = None
        for n_ub in candidates:
            tuned = spec.with_microbatches(n_ub)
            try:
                batch_time = self.batch_time(tuned)
            except MappingError as error:
                last_error, last_n_ub = error, n_ub
                continue
            if not math.isfinite(batch_time):
                last_error = MappingError(
                    f"batch time is non-finite ({batch_time!r})")
                last_n_ub = n_ub
                continue
            if best is None or batch_time < best[1]:
                best = (tuned, batch_time)
        if best is None:
            if last_error is None:
                raise MappingError(
                    f"no feasible microbatch count for batch "
                    f"{self.global_batch} under {spec.describe()}")
            raise _with_failing_n_ub(last_error, last_n_ub) \
                from last_error
        return best

    def lower_bound(self, spec: ParallelismSpec,
                    tune_microbatches: bool = True) -> float:
        """Admissible compute + communication lower bound on the
        candidate's achievable batch time (no bubble charged).

        Raises :class:`MappingError` when no candidate microbatch
        count is feasible, exactly like
        :func:`repro.search.dse.compute_lower_bound`.
        """
        if tune_microbatches:
            n_ubs: Iterable[int] = candidate_microbatch_counts(
                spec, self.global_batch)
        else:
            n_ubs = (spec.microbatches,)
        best_eff = 0.0
        dp = spec.dp
        for n_ub in n_ubs:
            microbatch = self.global_batch / (dp * n_ub)
            if microbatch >= 1:
                key = (dp, n_ub)
                eff = self._eff.get(key)
                if eff is None:
                    self._misses += 1
                    eff = self.efficiency(microbatch)
                    self._eff[key] = eff
                best_eff = max(best_eff, eff)
        if best_eff <= 0.0:
            raise MappingError(
                f"no feasible microbatch count for batch "
                f"{self.global_batch} under {spec.describe()}: every "
                f"candidate N_ub dices the batch below one sequence")
        totals = self._combine(spec, best_eff, include_bubble=False)
        return _total_of(totals)

    def prefill(self, mappings: Iterable[ParallelismSpec],
                tune_microbatches: bool = True) -> int:
        """Fill the tables for a candidate set (infeasible candidates
        are skipped); returns the number of combines performed.
        Used before pickling the instance to pool workers."""
        combines = 0
        for spec in mappings:
            n_ubs = (candidate_microbatch_counts(spec, self.global_batch)
                     if tune_microbatches else [spec.microbatches])
            for n_ub in n_ubs:
                try:
                    self.batch_time(spec.with_microbatches(n_ub))
                except MappingError:
                    continue
                combines += 1
        return combines

    # -- batch-fill accessors (vectorized backend) -----------------------------
    #
    # The NumPy backend (:mod:`repro.search.vectorized`) projects a whole
    # candidate chunk to key indices and needs one value per *distinct*
    # key.  These accessors fill exactly the entry `_combine` would fill
    # — same key layout, same reference-function call, same stored value
    # — into the *same* dict tables, so the scalar and the vectorized
    # paths always read identical numbers.

    def efficiency_for(self, spec: ParallelismSpec) -> float:
        """Public face of the efficiency table: ``eff(ub)`` for the
        candidate, raising :class:`MappingError` for ub < 1."""
        return self._efficiency_for(spec)

    def bubble_prefactor_for(self, pp: int, n_ub: int,
                             overlap_ratio: float) -> float:
        """The bubble prefactor for key ``(pp, n_ub, overlap_ratio)``."""
        bubble_k = (pp, n_ub, overlap_ratio)
        pref = self._bubble_prefactor.get(bubble_k)
        if pref is None:
            self._misses += 1
            pref = bubble_prefactor(pp, n_ub, overlap_ratio)
            self._bubble_prefactor[bubble_k] = pref
        return pref

    def compute_triples_for(self, eff: float) -> List[tuple]:
        """Per-class ``(U_f, U_b, U_w)`` triples at efficiency ``eff``,
        in class order."""
        triples = []
        for layer, _, _, _, compute_table in self.classes:
            triple = compute_table.get(eff)
            if triple is None:
                self._misses += 1
                triple = (
                    forward_compute_time(layer, self.accelerator,
                                         self.precision, eff),
                    backward_compute_time(
                        layer, self.accelerator, self.precision, eff,
                        self.backward_compute_multiplier),
                    weight_update_time(
                        layer, self.accelerator, self.precision, eff,
                        self.optimizer_macs_per_parameter))
                compute_table[eff] = triple
            triples.append(triple)
        return triples

    def gradient_pairs_for(self, spec: ParallelismSpec) -> List[tuple]:
        """Per-class gradient ``(intra, inter)`` pairs for the
        candidate's gradient key, in class order."""
        grad_k = (spec.tp, spec.dp_intra, spec.dp_inter,
                  spec.expert_parallel)
        env: Optional[CommEnvironment] = None
        pairs = []
        for layer, _, grad_table, _, _ in self.classes:
            grad = grad_table.get(grad_k)
            if grad is None:
                self._misses += 1
                if env is None:
                    env = self._environment(spec)
                components = gradient_comm_components(
                    env, layer.gradient_parameters(spec.expert_parallel))
                grad = (components["intra"], components["inter"])
                grad_table[grad_k] = grad
            pairs.append(grad)
        return pairs

    def zero_gathers_for(self, spec: ParallelismSpec) -> List[float]:
        """Per-class explicit ZeRO-3 gather times for the candidate's
        gradient key (meaningful only when ``explicit_zero``)."""
        grad_k = (spec.tp, spec.dp_intra, spec.dp_inter,
                  spec.expert_parallel)
        env: Optional[CommEnvironment] = None
        gathers = []
        for layer, _, _, zero_table, _ in self.classes:
            gather = zero_table.get(grad_k)
            if gather is None:
                self._misses += 1
                if env is None:
                    env = self._environment(spec)
                gather = zero_gather_time(
                    env, layer.gradient_parameters(spec.expert_parallel))
                zero_table[grad_k] = gather
            gathers.append(gather)
        return gathers

    def tp_intra_for(self, spec: ParallelismSpec) -> float:
        """The scaled intra-node TP term for key ``(tp_intra, dp)``."""
        key = (spec.tp_intra, spec.dp)
        value = self._tp_intra.get(key)
        if value is None:
            self._misses += 1
            value = self.forward_scale * tp_comm_time(
                self._environment(spec), self.model,
                replica_batch_size(self.global_batch, spec), "intra")
            self._tp_intra[key] = value
        return value

    def tp_inter_for(self, spec: ParallelismSpec) -> float:
        """The scaled inter-node TP term for key
        ``(tp_intra, tp_inter, dp)``."""
        key = (spec.tp_intra, spec.tp_inter, spec.dp)
        value = self._tp_inter.get(key)
        if value is None:
            self._misses += 1
            value = self.forward_scale * tp_comm_time(
                self._environment(spec), self.model,
                replica_batch_size(self.global_batch, spec), "inter")
            self._tp_inter[key] = value
        return value

    def pp_for(self, spec: ParallelismSpec) -> float:
        """The scaled PP term for key ``(pp_intra>1, pp_inter>1, dp)``."""
        key = (spec.pp_intra > 1, spec.pp_inter > 1, spec.dp)
        value = self._pp.get(key)
        if value is None:
            self._misses += 1
            env = self._environment(spec)
            replica_batch = replica_batch_size(self.global_batch, spec)
            value = self.forward_scale * max(
                pp_comm_time(env, self.model, replica_batch, "intra"),
                pp_comm_time(env, self.model, replica_batch, "inter"))
            self._pp[key] = value
        return value

    def moe_for(self, spec: ParallelismSpec) -> float:
        """The scaled MoE term for key ``(tp, dp, expert_parallel)``."""
        key = (spec.tp, spec.dp, spec.expert_parallel)
        value = self._moe.get(key)
        if value is None:
            self._misses += 1
            env = self._environment(spec)
            replica_batch = replica_batch_size(self.global_batch, spec)
            moe = (moe_comm_time(env, self.model, replica_batch)
                   if spec.expert_parallel else 0.0)
            value = self.forward_scale * moe
            self._moe[key] = value
        return value

    # -- incremental sweep deltas (cache seeding) ------------------------------

    def seed_from(self, donor: "CompiledSweep") -> int:
        """Adopt provably bit-identical table entries from ``donor``.

        The incremental-delta path behind the serve daemon: when only
        the model (or only the system) changes between requests, many
        per-term tables of a previously compiled sweep remain valid
        for the new one, so a fresh build can start warm instead of
        cold.  Only entries whose producing inputs are *equal* are
        copied:

        - bubble prefactors always (a pure function of the key),
        - efficiency entries when the donor shares the global batch
          and the efficiency model (system changes keep these),
        - per-class compute triples when the donor shares the model,
          global batch, embedding handling, accelerator, precision
          and compute multipliers (system link/topology changes keep
          these).

        Communication tables are never seeded — their values depend on
        the full system + topology identity, which is exactly what a
        delta request changes.  Existing entries are never
        overwritten, and the adopted entries do not count as misses,
        so hit-rate gauges reflect the avoided reference calls.
        Returns the number of entries adopted.
        """
        adopted = 0
        for key, value in list(donor._bubble_prefactor.items()):
            if key not in self._bubble_prefactor:
                self._bubble_prefactor[key] = value
                adopted += 1
        if (donor.global_batch == self.global_batch
                and donor.efficiency == self.efficiency):
            for key, eff in list(donor._eff.items()):
                if key not in self._eff:
                    self._eff[key] = eff
                    adopted += 1
        if (donor.model == self.model
                and donor.global_batch == self.global_batch
                and donor.include_embeddings == self.include_embeddings
                and donor.accelerator == self.accelerator
                and donor.precision == self.precision
                and donor.backward_compute_multiplier
                == self.backward_compute_multiplier
                and donor.optimizer_macs_per_parameter
                == self.optimizer_macs_per_parameter
                and len(donor.classes) == len(self.classes)):
            for (_, _, _, _, mine), (_, _, _, _, theirs) in zip(
                    self.classes, donor.classes):
                for eff, triple in list(theirs.items()):
                    if eff not in mine:
                        mine[eff] = triple
                        adopted += 1
        return adopted

    def stats(self) -> Dict[str, int]:
        """Table sizes and hit-rate counters for ``cache.compiled.*``."""
        entries = (len(self._eff) + len(self._tp_intra)
                   + len(self._tp_inter) + len(self._pp) + len(self._moe)
                   + len(self._bubble_prefactor))
        for _, _, grad_table, zero_table, compute_table in self.classes:
            entries += (len(grad_table) + len(zero_table)
                        + len(compute_table))
        return {
            "lookups": self._lookups,
            "misses": self._misses,
            "hits": max(0, self._lookups - self._misses),
            "entries": entries,
        }


def _total_of(totals: tuple) -> float:
    """``TrainingTimeBreakdown.total`` replayed on a component tuple,
    association for association."""
    (cf, cb, cw, c_tpi, c_tpx, c_pp, c_moe,
     g_intra, g_inter, c_zero, bub) = totals
    compute_time = cf + cb + cw
    comm_time = ((c_tpi + c_tpx) + c_pp + c_moe
                 + (g_intra + g_inter) + c_zero)
    return compute_time + comm_time + bub


# ---------------------------------------------------------------------------
# Process-wide compiled-sweep cache
# ---------------------------------------------------------------------------

_CACHE_LOCK = threading.Lock()
_CACHE: "OrderedDict[tuple, CompiledSweep]" = OrderedDict()
_STATS = {"builds": 0, "hits": 0, "misses": 0, "uncached": 0,
          "installed": 0, "seeded_builds": 0, "seeded_entries": 0,
          "fetched_peer": 0}

#: Optional cross-process sweep exchange, installed by the multi-worker
#: serve daemon: ``fetch(cache_key)`` may return a peer worker's
#: already-built sweep (attached from its shared-memory segment), and
#: ``built(compiled)`` advertises a fresh local build to peers.  Both
#: are best-effort — any failure falls back to a local build.
_FETCH_HOOK: Optional[object] = None
_BUILT_HOOK: Optional[object] = None


def set_sweep_exchange_hooks(fetch: Optional[object] = None,
                             built: Optional[object] = None) -> None:
    """Install (or with no arguments, clear) the cross-process sweep
    exchange hooks consulted by :func:`compile_sweep` on cache misses."""
    global _FETCH_HOOK, _BUILT_HOOK
    _FETCH_HOOK = fetch
    _BUILT_HOOK = built


def _fetch_from_peer(key: tuple) -> "Optional[CompiledSweep]":
    fetch = _FETCH_HOOK
    if fetch is None:
        return None
    try:
        fetched = fetch(key)
    except Exception:  # noqa: BLE001 — fallback boundary: a vanished peer segment means build locally
        return None
    if fetched is None or fetched.cache_key != key:
        return None  # digest collision or stale advert: build locally
    return fetched


def _announce_built(compiled: "CompiledSweep") -> None:
    built = _BUILT_HOOK
    if built is None:
        return
    try:
        built(compiled)
    except Exception:  # noqa: BLE001 — fallback boundary: advertising is best-effort, the local build stands
        pass


def _reset_cache_lock_after_fork() -> None:
    """Rebind a fresh cache lock in forked children.

    A fork can land while another thread holds ``_CACHE_LOCK``; the
    child would then inherit a lock that is locked forever and deadlock
    on its first ``compile_sweep``/``install_compiled`` call.  The
    inherited cache contents themselves are safe (a warm copy)."""
    global _CACHE_LOCK
    _CACHE_LOCK = threading.Lock()


if hasattr(os, "register_at_fork"):  # absent on some platforms
    os.register_at_fork(after_in_child=_reset_cache_lock_after_fork)


def _seed_new_build(compiled: CompiledSweep) -> None:
    """Seed a freshly built sweep from the cached ones (incremental
    sweep deltas).  Most-recently-used donors are consulted first;
    because :meth:`CompiledSweep.seed_from` never overwrites, the
    freshest cached value wins for every shared key."""
    with _CACHE_LOCK:
        donors = [cached for cached in _CACHE.values()
                  if cached is not compiled]
    adopted = 0
    for donor in reversed(donors):
        adopted += compiled.seed_from(donor)
    if adopted:
        with _CACHE_LOCK:
            _STATS["seeded_builds"] += 1
            _STATS["seeded_entries"] += adopted


def compile_sweep(template: "AMPeD", global_batch: int) -> CompiledSweep:
    """The compiled sweep for ``(template, global_batch)``.

    Sweeps are identified by :meth:`repro.core.model.AMPeD.sweep_identity`
    (everything except the mapping), so every candidate evaluation of
    one sweep — across ``explore``, the pruner and microbatch tuning —
    shares one table set.  Unhashable templates (e.g. a closure-backed
    efficiency fit) fall back to an uncached build.
    """
    try:
        key = (template.sweep_identity(), int(global_batch))
        hash(key)
    except TypeError:
        with _CACHE_LOCK:
            _STATS["uncached"] += 1
            _STATS["builds"] += 1
        compiled = CompiledSweep(template, global_batch)
        _seed_new_build(compiled)
        return compiled
    with _CACHE_LOCK:
        cached = _CACHE.get(key)
        if cached is not None:
            _CACHE.move_to_end(key)
            _STATS["hits"] += 1
            return cached
        _STATS["misses"] += 1
    fetched = _fetch_from_peer(key)
    if fetched is not None:
        # A peer worker already paid for these tables; adopt its copy
        # (attached zero-copy from shared memory) instead of rebuilding.
        install_compiled(fetched)
        with _CACHE_LOCK:
            _STATS["fetched_peer"] += 1
        return fetched
    compiled = CompiledSweep(template, global_batch)
    compiled.cache_key = key
    _seed_new_build(compiled)
    with _CACHE_LOCK:
        _STATS["builds"] += 1
        _CACHE[key] = compiled
        while len(_CACHE) > MAX_CACHED_SWEEPS:
            _CACHE.popitem(last=False)
    _announce_built(compiled)
    return compiled


def install_compiled(compiled: CompiledSweep) -> None:
    """Register a (typically pre-filled, unpickled) instance in the
    process cache so subsequent :func:`compile_sweep` calls hit it —
    the worker-process half of the pool warm-up."""
    with _CACHE_LOCK:
        _STATS["installed"] += 1
        if compiled.cache_key is not None:
            _CACHE[compiled.cache_key] = compiled
            _CACHE.move_to_end(compiled.cache_key)
            while len(_CACHE) > MAX_CACHED_SWEEPS:
                _CACHE.popitem(last=False)


def cached_compiled(key: tuple) -> Optional[CompiledSweep]:
    """The cached instance registered under ``key``, if any — used by
    shipped :class:`repro.search.vectorized.PreboundChunk` payloads to
    reattach a warm worker's installed tables instead of carrying a
    copy per chunk."""
    with _CACHE_LOCK:
        return _CACHE.get(key)


def compiled_cache_stats() -> Dict[str, int]:
    """Build/hit counters of the compiled-sweep cache plus aggregate
    table statistics across cached instances (folded into
    ``cache.compiled.*`` gauges by
    :func:`repro.obs.metrics.collect_cache_metrics`)."""
    with _CACHE_LOCK:
        stats = dict(_STATS)
        instances = list(_CACHE.values())
    tables = {"lookups": 0, "misses": 0, "hits": 0, "entries": 0}
    for compiled in instances:
        for name, value in compiled.stats().items():
            tables[name] += value
    stats["cached_sweeps"] = len(instances)
    for name, value in tables.items():
        stats[f"table_{name}"] = value
    return stats


def clear_compiled_cache() -> None:
    """Drop every cached compiled sweep and reset the counters."""
    with _CACHE_LOCK:
        _CACHE.clear()
        for name in _STATS:
            _STATS[name] = 0


def warm_worker(template: "AMPeD", global_batch: int,
                compiled: Optional[object] = None) -> None:
    """Process-pool initializer body: warm every per-process memo once
    per worker instead of once per dispatched chunk.

    Primes the ``build_operations`` LRU for the sweep's model and, for
    compiled sweeps, installs the parent's pre-filled term tables
    (which also carry every collective time the sweep needs, so the
    collective memo never starts cold either).  ``compiled`` may be
    the :class:`CompiledSweep` itself (the pickle path) or a
    :class:`repro.search.shm.CompiledShipment` — a shared-memory
    handle the worker attaches by name, so the tables cross the
    process boundary once per sweep instead of once per worker.
    """
    build_operations(template.model, global_batch,
                     template.include_embeddings)
    if compiled is not None:
        attach = getattr(compiled, "attach_compiled", None)
        if attach is not None:
            try:
                compiled = attach()
            except Exception:  # noqa: BLE001 — fallback boundary: a
                # vanished segment (creator died mid-warm) must not
                # kill the worker; it rebuilds tables like a cold one.
                compiled = None
        if compiled is not None:
            install_compiled(compiled)
            return
    if template.evaluation_path == "compiled":
        compile_sweep(template, global_batch)
