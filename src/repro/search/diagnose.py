"""Mapping-feasibility diagnosis: *why* a configuration cannot run.

The explorer silently skips infeasible mappings; when a user asks for a
specific one, a bare ``MappingError`` is unhelpful.
:func:`diagnose_mapping` runs every feasibility check and returns all
failures at once (system tiling, model divisibility, microbatch
granularity, memory capacity), each with a concrete suggestion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.zero import NO_ZERO, ZeroConfig
from repro.errors import MappingError
from repro.hardware.precision import MIXED_FP16, PrecisionPolicy
from repro.hardware.system import SystemSpec
from repro.memory.constraints import (
    DEFAULT_USABLE_FRACTION,
    fits_in_memory,
    max_feasible_microbatch,
)
from repro.parallelism.spec import ParallelismSpec
from repro.transformer.config import TransformerConfig
from repro.units import format_bytes


@dataclass(frozen=True)
class FeasibilityIssue:
    """One reason a mapping cannot run, with a suggested fix."""

    check: str
    problem: str
    suggestion: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.problem} — {self.suggestion}"


@dataclass(frozen=True)
class MappingDiagnosis:
    """All feasibility findings for one (mapping, workload) pair."""

    parallelism: ParallelismSpec
    issues: Tuple[FeasibilityIssue, ...]

    @property
    def feasible(self) -> bool:
        """True when every check passed."""
        return not self.issues

    def explain(self) -> str:
        """A printable summary."""
        if self.feasible:
            return (f"{self.parallelism.describe()}: feasible "
                    f"(all checks passed)")
        lines = [f"{self.parallelism.describe()}: "
                 f"{len(self.issues)} issue(s)"]
        lines += [f"  - {issue}" for issue in self.issues]
        return "\n".join(lines)


def diagnose_mapping(spec: ParallelismSpec,
                     model: TransformerConfig,
                     system: SystemSpec,
                     global_batch: Optional[int] = None,
                     precision: PrecisionPolicy = MIXED_FP16,
                     zero: ZeroConfig = NO_ZERO,
                     usable_fraction: float = DEFAULT_USABLE_FRACTION
                     ) -> MappingDiagnosis:
    """Run every feasibility check and collect all failures."""
    issues: List[FeasibilityIssue] = []

    # 1. system tiling
    node_size = system.node.n_accelerators
    if spec.intra_degree != node_size:
        issues.append(FeasibilityIssue(
            "system",
            f"intra-node degrees multiply to {spec.intra_degree}, the "
            f"node has {node_size} accelerators",
            f"make tp_intra*pp_intra*dp_intra == {node_size}"))
    if spec.inter_degree != system.n_nodes:
        issues.append(FeasibilityIssue(
            "system",
            f"inter-node degrees multiply to {spec.inter_degree}, the "
            f"cluster has {system.n_nodes} nodes",
            f"make tp_inter*pp_inter*dp_inter == {system.n_nodes}"))

    # 2. model divisibility
    if spec.pp > model.n_layers:
        issues.append(FeasibilityIssue(
            "model",
            f"pipeline degree {spec.pp} exceeds the model's "
            f"{model.n_layers} layers",
            f"cap total PP at {model.n_layers}"))
    if spec.tp > 1 and model.n_heads % spec.tp != 0:
        issues.append(FeasibilityIssue(
            "model",
            f"TP degree {spec.tp} does not divide {model.n_heads} "
            f"attention heads",
            "pick a TP degree dividing the head count"))

    # 3. microbatch granularity
    if global_batch is not None:
        per_microbatch = global_batch / (spec.dp * spec.microbatches)
        if per_microbatch < 1.0:
            issues.append(FeasibilityIssue(
                "batch",
                f"batch {global_batch} over dp={spec.dp} x "
                f"N_ub={spec.microbatches} leaves "
                f"{per_microbatch:.3g} sequences per microbatch",
                f"raise the batch to at least "
                f"{spec.dp * spec.microbatches} or reduce N_ub/DP"))

    # 4. memory capacity
    if global_batch is not None:
        microbatch = max(1.0, global_batch / (spec.dp
                                              * spec.microbatches))
        if not fits_in_memory(model, spec, microbatch, precision,
                              system.accelerator, zero,
                              usable_fraction):
            best = max_feasible_microbatch(
                model, spec, precision, system.accelerator, zero,
                usable_fraction)
            if best is None:
                issues.append(FeasibilityIssue(
                    "memory",
                    f"model state alone overflows "
                    f"{format_bytes(system.accelerator.memory_bytes)} "
                    f"of HBM under this sharding",
                    "raise TP/PP degrees or enable ZeRO-3"))
            else:
                issues.append(FeasibilityIssue(
                    "memory",
                    f"microbatch {microbatch:g} does not fit; the "
                    f"largest feasible is {best}",
                    f"raise N_ub so the microbatch drops to <= {best}, "
                    f"or enable activation recomputation"))

    return MappingDiagnosis(parallelism=spec, issues=tuple(issues))


def require_feasible(spec: ParallelismSpec, model: TransformerConfig,
                     system: SystemSpec,
                     global_batch: Optional[int] = None,
                     **kwargs) -> None:
    """Raise a :class:`MappingError` carrying the *full* diagnosis."""
    diagnosis = diagnose_mapping(spec, model, system, global_batch,
                                 **kwargs)
    if not diagnosis.feasible:
        raise MappingError(diagnosis.explain())
