"""Design-space exploration: exhaustive sweeps, tuning, heuristics,
feasibility diagnosis, and the fault-tolerant sweep runtime."""

from repro.search.diagnose import (
    FeasibilityIssue,
    MappingDiagnosis,
    diagnose_mapping,
    require_feasible,
)
from repro.search.dse import (
    SKIP_CATEGORIES,
    CandidateOutcome,
    ExplorationResult,
    best_mapping,
    evaluate_candidate,
    explore,
    pareto_front,
)
from repro.search.heuristics import (
    LOW_BANDWIDTH_THRESHOLD_BITS_PER_S,
    MappingRecommendation,
    recommend_mapping,
)
from repro.search.resilience import (
    JOURNAL_SCHEMA_VERSION,
    SweepJournal,
    SweepOutcome,
    run_sweep,
    spec_key,
)
from repro.search.shm import (
    HAVE_SHM,
    SegmentHandle,
    active_segments,
    attach_compiled_segment,
    cleanup_all_segments,
    leaked_segment_names,
    publish_segment,
    release_segment,
    release_shipment,
    retain_segment,
    ship_compiled,
    shm_stats,
)
from repro.search.tuning import microbatch_candidates, optimize_microbatches

__all__ = [
    "explore",
    "best_mapping",
    "pareto_front",
    "ExplorationResult",
    "CandidateOutcome",
    "evaluate_candidate",
    "SKIP_CATEGORIES",
    "run_sweep",
    "spec_key",
    "SweepOutcome",
    "SweepJournal",
    "JOURNAL_SCHEMA_VERSION",
    "optimize_microbatches",
    "microbatch_candidates",
    "recommend_mapping",
    "MappingRecommendation",
    "LOW_BANDWIDTH_THRESHOLD_BITS_PER_S",
    "diagnose_mapping",
    "require_feasible",
    "MappingDiagnosis",
    "FeasibilityIssue",
    "HAVE_SHM",
    "SegmentHandle",
    "publish_segment",
    "retain_segment",
    "release_segment",
    "active_segments",
    "cleanup_all_segments",
    "leaked_segment_names",
    "ship_compiled",
    "release_shipment",
    "attach_compiled_segment",
    "shm_stats",
]
