"""Design-space exploration: exhaustive sweeps, tuning, heuristics,
feasibility diagnosis."""

from repro.search.diagnose import (
    FeasibilityIssue,
    MappingDiagnosis,
    diagnose_mapping,
    require_feasible,
)
from repro.search.dse import (
    ExplorationResult,
    best_mapping,
    explore,
    pareto_front,
)
from repro.search.heuristics import (
    LOW_BANDWIDTH_THRESHOLD_BITS_PER_S,
    MappingRecommendation,
    recommend_mapping,
)
from repro.search.tuning import microbatch_candidates, optimize_microbatches

__all__ = [
    "explore",
    "best_mapping",
    "pareto_front",
    "ExplorationResult",
    "optimize_microbatches",
    "microbatch_candidates",
    "recommend_mapping",
    "MappingRecommendation",
    "LOW_BANDWIDTH_THRESHOLD_BITS_PER_S",
    "diagnose_mapping",
    "require_feasible",
    "MappingDiagnosis",
    "FeasibilityIssue",
]
