"""Design-space exploration over parallelism mappings.

Case Study I's workflow: enumerate every legal (intra, inter)
parallelism factorization of a system, evaluate AMPeD for each, and
rank.  The explorer optionally tunes the microbatch count per mapping
and filters mappings whose footprint exceeds accelerator memory.

Two performance levers keep large spaces interactive (see
``docs/performance.md``):

- **Branch-and-bound pruning** (``prune=True``): a compute-only lower
  bound — the collapsed-layer-class compute time at the best achievable
  microbatch efficiency — is compared against the incumbent ``k``-th
  best batch time (``k = max_results``); mappings whose bound already
  exceeds it cannot enter the top-``k`` and are skipped without a full
  evaluation.  The returned (truncated) ranking is provably identical
  to the unpruned one, and pruning is a no-op when ``max_results`` is
  ``None``.
- **Process-pool fan-out** (``workers=N``): mappings are evaluated by
  ``N`` worker processes in submission order, preserving the exact
  result ordering of the serial path (surfaced as ``--jobs`` on the
  CLI ``sweep`` command).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, replace
from functools import partial
from typing import Callable, Iterable, List, Optional

from repro.core.breakdown import TrainingTimeBreakdown
from repro.core.compute import (
    backward_compute_time,
    forward_compute_time,
    weight_update_time,
)
from repro.core.model import AMPeD
from repro.core.operations import build_operations
from repro.errors import (
    MappingError,
    MemoryCapacityError,
    require_finite_fields,
)
from repro.memory.constraints import fits_in_memory
from repro.obs.trace import span
from repro.parallelism.mapping import enumerate_mappings
from repro.parallelism.spec import ParallelismSpec
from repro.search.tuning import microbatch_candidates, optimize_microbatches


#: Skip-category vocabulary shared by the explorer, the resilient sweep
#: runtime and its journal (``docs/robustness.md`` documents each).
SKIP_MAPPING_INFEASIBLE = "mapping_infeasible"
SKIP_MEMORY_CAPACITY = "memory_capacity"
SKIP_NON_FINITE = "non_finite_result"
SKIP_PRUNED = "pruned"
SKIP_WORKER_ERROR = "worker_error"

SKIP_CATEGORIES = (
    SKIP_MAPPING_INFEASIBLE,
    SKIP_MEMORY_CAPACITY,
    SKIP_NON_FINITE,
    SKIP_PRUNED,
    SKIP_WORKER_ERROR,
)


@dataclass(frozen=True)
class ExplorationResult:
    """One evaluated point of the design space."""

    parallelism: ParallelismSpec
    global_batch: int
    batch_time_s: float
    breakdown: TrainingTimeBreakdown
    microbatch_size: float
    microbatch_efficiency: float


    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def label(self) -> str:
        """Compact mapping descriptor for tables."""
        return self.parallelism.describe()


@dataclass(frozen=True)
class CandidateOutcome:
    """The categorized outcome of evaluating one candidate mapping.

    Exactly one of two shapes: ``result`` set and ``skip_category``
    ``None`` (evaluated), or ``result`` ``None`` and ``skip_category``
    naming *why* the candidate was discarded — the truthful record the
    sweep journal persists.
    """

    spec: ParallelismSpec
    result: Optional[ExplorationResult] = None
    skip_category: Optional[str] = None
    detail: str = ""

    @property
    def evaluated(self) -> bool:
        return self.result is not None


def explore(amped: AMPeD, global_batch: int,
            mappings: Optional[List[ParallelismSpec]] = None,
            tune_microbatches: bool = True,
            enforce_memory: bool = False,
            max_results: Optional[int] = None,
            prune: bool = True,
            workers: Optional[int] = None) -> List[ExplorationResult]:
    """Evaluate every mapping and return results sorted fastest-first.

    Parameters
    ----------
    amped:
        Template scenario; its parallelism field is replaced per mapping.
    global_batch:
        Batch size to evaluate at.
    mappings:
        Explicit mapping list, or every legal factorization by default.
    tune_microbatches:
        Re-tune ``N_ub`` per mapping (the paper's practice).
    enforce_memory:
        Drop mappings whose footprint exceeds the accelerator memory.
    max_results:
        Truncate the (sorted) result list.
    prune:
        Skip mappings whose compute-only lower bound exceeds the
        incumbent ``max_results``-th best time.  Exact: the truncated
        ranking is identical to the unpruned one.  No-op without
        ``max_results``.
    workers:
        Evaluate mappings with a pool of this many worker processes
        (``None``/``0``/``1`` = serial).  Submission order is
        preserved, so the ranked result list matches the serial path
        exactly.  Requires the template (including its efficiency fit)
        to be picklable.
    """
    if mappings is None:
        mappings = enumerate_mappings(amped.system, amped.model)
    evaluate = partial(_evaluate_spec, amped, global_batch=global_batch,
                       tune_microbatches=tune_microbatches,
                       enforce_memory=enforce_memory)
    pruner = None
    if prune:
        pruner = _BoundPruner(amped, global_batch, tune_microbatches,
                              max_results)
    with span("dse.explore", category="search") as live:
        if workers is not None and workers > 1:
            evaluated = _explore_parallel(evaluate, mappings, workers,
                                          pruner)
        else:
            evaluated = _explore_serial(evaluate, mappings, pruner)
        results = [result for result in evaluated if result is not None]
        results.sort(key=lambda result: result.batch_time_s)
        if max_results is not None:
            results = results[:max_results]
        live.set_attrs(n_mappings=len(mappings),
                       n_results=len(results),
                       workers=workers if workers else 1,
                       global_batch=global_batch)
        return results


def evaluate_candidate(template: AMPeD, spec: ParallelismSpec,
                       global_batch: int, tune_microbatches: bool = True,
                       enforce_memory: bool = False) -> CandidateOutcome:
    """Fully evaluate one mapping, categorizing any infeasibility.

    Never raises a :class:`~repro.errors.ReproError`: infeasible
    mappings come back as skipped outcomes whose category says why
    (mapping constraints vs memory capacity vs a non-finite batch time),
    which is what the sweep journal records.  Genuine programming errors
    still propagate.
    """
    candidate = replace(template, parallelism=spec)
    needs_memory_check = enforce_memory
    try:
        if tune_microbatches:
            candidates = None
            if enforce_memory:
                candidates = _memory_feasible_candidates(
                    candidate, global_batch)
                if not candidates:
                    return CandidateOutcome(
                        spec=spec, skip_category=SKIP_MEMORY_CAPACITY,
                        detail="no microbatch count fits in memory")
                # Every candidate already passed fits_in_memory, and the
                # tuned spec is one of them — no re-check needed.
                needs_memory_check = False
            candidate, _ = optimize_microbatches(
                candidate, global_batch, candidates=candidates)
        microbatch = candidate.microbatch(global_batch)
        if needs_memory_check and not fits_in_memory(
                candidate.model, candidate.parallelism, microbatch,
                candidate.precision, candidate.system.accelerator,
                candidate.zero):
            return CandidateOutcome(
                spec=spec, skip_category=SKIP_MEMORY_CAPACITY,
                detail=f"microbatch {microbatch:g} does not fit in HBM")
        breakdown = candidate.estimate_batch(global_batch)
    except MemoryCapacityError as error:
        return CandidateOutcome(spec=spec,
                                skip_category=SKIP_MEMORY_CAPACITY,
                                detail=str(error))
    except MappingError as error:
        return CandidateOutcome(spec=spec,
                                skip_category=SKIP_MAPPING_INFEASIBLE,
                                detail=str(error))
    if not math.isfinite(breakdown.total):
        return CandidateOutcome(
            spec=spec, skip_category=SKIP_NON_FINITE,
            detail=f"batch time is {breakdown.total!r}")
    return CandidateOutcome(spec=spec, result=ExplorationResult(
        parallelism=candidate.parallelism,
        global_batch=global_batch,
        batch_time_s=breakdown.total,
        breakdown=breakdown,
        microbatch_size=microbatch,
        microbatch_efficiency=candidate.microbatch_efficiency(global_batch),
    ))


def _evaluate_spec(template: AMPeD, spec: ParallelismSpec,
                   global_batch: int, tune_microbatches: bool,
                   enforce_memory: bool) -> Optional[ExplorationResult]:
    """Fully evaluate one mapping; ``None`` when it is infeasible."""
    return evaluate_candidate(template, spec, global_batch,
                              tune_microbatches, enforce_memory).result


def _explore_serial(evaluate: Callable, mappings: List[ParallelismSpec],
                    pruner: Optional["_BoundPruner"]) -> List:
    out = []
    for spec in mappings:
        if pruner is not None and pruner.should_skip(spec):
            continue
        result = evaluate(spec)
        if pruner is not None:
            pruner.record(result)
        out.append(result)
    return out


def _explore_parallel(evaluate: Callable, mappings: List[ParallelismSpec],
                      workers: int,
                      pruner: Optional["_BoundPruner"]) -> List:
    """Fan mappings out over a process pool, in submission order.

    Work is dispatched in chunks so the pruner's incumbent (updated as
    chunks complete) can skip later mappings, mirroring the serial
    branch-and-bound.
    """
    from concurrent.futures import ProcessPoolExecutor

    out = []
    chunk_size = max(1, 4 * workers)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for start in range(0, len(mappings), chunk_size):
            chunk = mappings[start:start + chunk_size]
            if pruner is not None:
                chunk = [spec for spec in chunk
                         if not pruner.should_skip(spec)]
            for result in pool.map(evaluate, chunk):
                if pruner is not None:
                    pruner.record(result)
                out.append(result)
    return out


def compute_lower_bound(amped: AMPeD, global_batch: int,
                        tune_microbatches: bool = True) -> float:
    """A compute-only lower bound on the mapping's achievable batch time.

    Evaluates the collapsed layer classes' forward + backward + weight
    update time at the *best* microbatch efficiency any candidate
    ``N_ub`` can reach (efficiency only derates compute, so the true
    compute time at the tuned ``N_ub`` is at least this), and charges
    zero communication and bubble time.  Raises :class:`MappingError`
    when no candidate yields a feasible microbatch — historically this
    returned a bare ``math.inf``, which conflated "provably infeasible"
    with "bound unknown" and made sweep-journal skip categories lie.
    """
    spec = amped.parallelism
    if tune_microbatches:
        n_ubs: Iterable[int] = microbatch_candidates(amped, global_batch)
    else:
        n_ubs = (spec.microbatches,)
    best_eff = 0.0
    for n_ub in n_ubs:
        microbatch = global_batch / (spec.dp * n_ub)
        if microbatch >= 1:
            best_eff = max(best_eff, amped.efficiency(microbatch))
    if best_eff <= 0.0:
        raise MappingError(
            f"no feasible microbatch count for batch {global_batch} "
            f"under {spec.describe()}: every candidate N_ub dices the "
            f"batch below one sequence")
    operations = build_operations(amped.model, global_batch,
                                  amped.include_embeddings)
    accelerator = amped.system.accelerator
    total = 0.0
    for cls in operations.layer_classes:
        layer = cls.representative
        total += cls.multiplicity * (
            forward_compute_time(layer, accelerator, amped.precision,
                                 best_eff)
            + backward_compute_time(layer, accelerator, amped.precision,
                                    best_eff,
                                    amped.backward_compute_multiplier)
            + weight_update_time(layer, accelerator, amped.precision,
                                 best_eff,
                                 amped.optimizer_macs_per_parameter))
    return total / spec.world_size


class _BoundPruner:
    """Branch-and-bound state shared across one :func:`explore` call.

    Tracks the ``keep`` smallest batch times seen so far; a mapping is
    skipped when its compute-only lower bound strictly exceeds the
    incumbent ``keep``-th best, which proves it cannot appear in the
    final truncated ranking.  Without a ``keep`` (``max_results is
    None``) the threshold stays infinite and nothing is pruned.
    """

    def __init__(self, template: AMPeD, global_batch: int,
                 tune_microbatches: bool,
                 keep: Optional[int]) -> None:
        self.template = template
        self.global_batch = global_batch
        self.tune_microbatches = tune_microbatches
        self.keep = keep
        self._best_times: List[float] = []

    @property
    def threshold(self) -> Optional[float]:
        """The incumbent ``keep``-th best time, or ``None`` while the
        incumbent list is not full yet (distinct from an *infinite*
        bound, which would mean a provably infeasible candidate)."""
        if self.keep is None or len(self._best_times) < self.keep:
            return None
        return self._best_times[self.keep - 1]

    def skip_category(self, spec: ParallelismSpec) -> Optional[str]:
        """``SKIP_PRUNED``/``SKIP_MAPPING_INFEASIBLE`` when the mapping
        can be discarded without a full evaluation, else ``None``.

        Without an incumbent threshold no bound is computed (same work
        profile as plain exploration); infeasibility then surfaces
        through :func:`evaluate_candidate` with the same category.
        """
        threshold = self.threshold
        if threshold is None:
            return None
        candidate = replace(self.template, parallelism=spec)
        try:
            bound = compute_lower_bound(candidate, self.global_batch,
                                        self.tune_microbatches)
        except MappingError:
            return SKIP_MAPPING_INFEASIBLE
        return SKIP_PRUNED if bound > threshold else None

    def should_skip(self, spec: ParallelismSpec) -> bool:
        return self.skip_category(spec) is not None

    def record(self, result: Optional[ExplorationResult]) -> None:
        if result is None:
            return
        bisect.insort(self._best_times, result.batch_time_s)
        if self.keep is not None:
            del self._best_times[self.keep:]


def _memory_feasible_candidates(candidate: AMPeD,
                                global_batch: int) -> list:
    """Microbatch counts whose resulting microbatch size fits in HBM."""
    feasible = []
    for n_ub in microbatch_candidates(candidate, global_batch):
        spec = candidate.parallelism.with_microbatches(n_ub)
        microbatch = global_batch / (spec.dp * n_ub)
        if microbatch < 1:
            continue
        if fits_in_memory(candidate.model, spec, microbatch,
                          candidate.precision,
                          candidate.system.accelerator, candidate.zero):
            feasible.append(n_ub)
    return feasible


def best_mapping(amped: AMPeD, global_batch: int,
                 **explore_kwargs) -> ExplorationResult:
    """The fastest mapping for the scenario (raises
    :class:`MappingError` if the space is empty)."""
    explore_kwargs.setdefault("max_results", 1)
    results = explore(amped, global_batch, **explore_kwargs)
    if not results:
        raise MappingError(
            f"no feasible parallelism mapping for {amped.model.name} on "
            f"{amped.system.describe()}")
    return results[0]


def pareto_front(results: List[ExplorationResult],
                 secondary=lambda result: result.breakdown.bubble
                 ) -> List[ExplorationResult]:
    """Mappings not dominated on (batch time, ``secondary``).

    Default secondary objective is bubble time (an energy proxy per
    Case Study II); any callable on :class:`ExplorationResult` works.
    """
    front = []
    for candidate in results:
        dominated = any(
            other.batch_time_s <= candidate.batch_time_s
            and secondary(other) <= secondary(candidate)
            and (other.batch_time_s < candidate.batch_time_s
                 or secondary(other) < secondary(candidate))
            for other in results)
        if not dominated:
            front.append(candidate)
    front.sort(key=lambda result: result.batch_time_s)
    return front
