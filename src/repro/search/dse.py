"""Design-space exploration over parallelism mappings.

Case Study I's workflow: enumerate every legal (intra, inter)
parallelism factorization of a system, evaluate AMPeD for each, and
rank.  The explorer optionally tunes the microbatch count per mapping
and filters mappings whose footprint exceeds accelerator memory.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.core.breakdown import TrainingTimeBreakdown
from repro.core.model import AMPeD
from repro.errors import MappingError, MemoryCapacityError
from repro.memory.constraints import fits_in_memory
from repro.parallelism.mapping import enumerate_mappings
from repro.parallelism.spec import ParallelismSpec
from repro.search.tuning import microbatch_candidates, optimize_microbatches


@dataclass(frozen=True)
class ExplorationResult:
    """One evaluated point of the design space."""

    parallelism: ParallelismSpec
    global_batch: int
    batch_time_s: float
    breakdown: TrainingTimeBreakdown
    microbatch_size: float
    microbatch_efficiency: float

    @property
    def label(self) -> str:
        """Compact mapping descriptor for tables."""
        return self.parallelism.describe()


def explore(amped: AMPeD, global_batch: int,
            mappings: Optional[List[ParallelismSpec]] = None,
            tune_microbatches: bool = True,
            enforce_memory: bool = False,
            max_results: Optional[int] = None) -> List[ExplorationResult]:
    """Evaluate every mapping and return results sorted fastest-first.

    Parameters
    ----------
    amped:
        Template scenario; its parallelism field is replaced per mapping.
    global_batch:
        Batch size to evaluate at.
    mappings:
        Explicit mapping list, or every legal factorization by default.
    tune_microbatches:
        Re-tune ``N_ub`` per mapping (the paper's practice).
    enforce_memory:
        Drop mappings whose footprint exceeds the accelerator memory.
    max_results:
        Truncate the (sorted) result list.
    """
    if mappings is None:
        mappings = enumerate_mappings(amped.system, amped.model)
    results = []
    for spec in mappings:
        candidate = replace(amped, parallelism=spec)
        try:
            if tune_microbatches:
                candidates = None
                if enforce_memory:
                    candidates = _memory_feasible_candidates(
                        candidate, global_batch)
                    if not candidates:
                        continue
                candidate, _ = optimize_microbatches(
                    candidate, global_batch, candidates=candidates)
            microbatch = candidate.microbatch(global_batch)
            if enforce_memory and not fits_in_memory(
                    candidate.model, candidate.parallelism, microbatch,
                    candidate.precision, candidate.system.accelerator,
                    candidate.zero):
                continue
            breakdown = candidate.estimate_batch(global_batch)
        except (MappingError, MemoryCapacityError):
            continue
        results.append(ExplorationResult(
            parallelism=candidate.parallelism,
            global_batch=global_batch,
            batch_time_s=breakdown.total,
            breakdown=breakdown,
            microbatch_size=microbatch,
            microbatch_efficiency=candidate.microbatch_efficiency(
                global_batch),
        ))
    results.sort(key=lambda result: result.batch_time_s)
    if max_results is not None:
        results = results[:max_results]
    return results


def _memory_feasible_candidates(candidate: AMPeD,
                                global_batch: int) -> list:
    """Microbatch counts whose resulting microbatch size fits in HBM."""
    feasible = []
    for n_ub in microbatch_candidates(candidate, global_batch):
        spec = candidate.parallelism.with_microbatches(n_ub)
        microbatch = global_batch / (spec.dp * n_ub)
        if microbatch < 1:
            continue
        if fits_in_memory(candidate.model, spec, microbatch,
                          candidate.precision,
                          candidate.system.accelerator, candidate.zero):
            feasible.append(n_ub)
    return feasible


def best_mapping(amped: AMPeD, global_batch: int,
                 **explore_kwargs) -> ExplorationResult:
    """The fastest mapping for the scenario (raises
    :class:`MappingError` if the space is empty)."""
    results = explore(amped, global_batch, **explore_kwargs)
    if not results:
        raise MappingError(
            f"no feasible parallelism mapping for {amped.model.name} on "
            f"{amped.system.describe()}")
    return results[0]


def pareto_front(results: List[ExplorationResult],
                 secondary=lambda result: result.breakdown.bubble
                 ) -> List[ExplorationResult]:
    """Mappings not dominated on (batch time, ``secondary``).

    Default secondary objective is bubble time (an energy proxy per
    Case Study II); any callable on :class:`ExplorationResult` works.
    """
    front = []
    for candidate in results:
        dominated = any(
            other.batch_time_s <= candidate.batch_time_s
            and secondary(other) <= secondary(candidate)
            and (other.batch_time_s < candidate.batch_time_s
                 or secondary(other) < secondary(candidate))
            for other in results)
        if not dominated:
            front.append(candidate)
    front.sort(key=lambda result: result.batch_time_s)
    return front
